# Empty dependencies file for fig2_hol_blocking.
# This may be replaced when dependencies are built.
