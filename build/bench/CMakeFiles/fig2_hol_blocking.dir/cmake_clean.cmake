file(REMOVE_RECURSE
  "CMakeFiles/fig2_hol_blocking.dir/fig2_hol_blocking.cpp.o"
  "CMakeFiles/fig2_hol_blocking.dir/fig2_hol_blocking.cpp.o.d"
  "fig2_hol_blocking"
  "fig2_hol_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hol_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
