# Empty dependencies file for fig5_overhead_breakdown.
# This may be replaced when dependencies are built.
