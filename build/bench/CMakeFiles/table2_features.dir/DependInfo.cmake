
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_features.cpp" "bench/CMakeFiles/table2_features.dir/table2_features.cpp.o" "gcc" "bench/CMakeFiles/table2_features.dir/table2_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/tlssim/CMakeFiles/dohperf_tlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/http1/CMakeFiles/dohperf_http1.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/dohperf_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dohperf_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dohperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dohperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/dohperf_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/dohperf_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/quicsim/CMakeFiles/dohperf_quicsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
