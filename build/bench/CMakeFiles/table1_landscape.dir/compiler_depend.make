# Empty compiler generated dependencies file for table1_landscape.
# This may be replaced when dependencies are built.
