file(REMOVE_RECURSE
  "CMakeFiles/table1_landscape.dir/table1_landscape.cpp.o"
  "CMakeFiles/table1_landscape.dir/table1_landscape.cpp.o.d"
  "table1_landscape"
  "table1_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
