# Empty dependencies file for ablation_client_policies.
# This may be replaced when dependencies are built.
