file(REMOVE_RECURSE
  "CMakeFiles/ablation_client_policies.dir/ablation_client_policies.cpp.o"
  "CMakeFiles/ablation_client_policies.dir/ablation_client_policies.cpp.o.d"
  "ablation_client_policies"
  "ablation_client_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_client_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
