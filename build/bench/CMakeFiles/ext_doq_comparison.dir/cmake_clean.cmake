file(REMOVE_RECURSE
  "CMakeFiles/ext_doq_comparison.dir/ext_doq_comparison.cpp.o"
  "CMakeFiles/ext_doq_comparison.dir/ext_doq_comparison.cpp.o.d"
  "ext_doq_comparison"
  "ext_doq_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_doq_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
