# Empty dependencies file for ext_doq_comparison.
# This may be replaced when dependencies are built.
