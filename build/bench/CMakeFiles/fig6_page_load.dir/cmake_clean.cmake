file(REMOVE_RECURSE
  "CMakeFiles/fig6_page_load.dir/fig6_page_load.cpp.o"
  "CMakeFiles/fig6_page_load.dir/fig6_page_load.cpp.o.d"
  "fig6_page_load"
  "fig6_page_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_page_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
