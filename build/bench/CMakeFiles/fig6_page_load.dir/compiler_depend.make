# Empty compiler generated dependencies file for fig6_page_load.
# This may be replaced when dependencies are built.
