# Empty dependencies file for fig1_queries_per_page.
# This may be replaced when dependencies are built.
