file(REMOVE_RECURSE
  "CMakeFiles/fig1_queries_per_page.dir/fig1_queries_per_page.cpp.o"
  "CMakeFiles/fig1_queries_per_page.dir/fig1_queries_per_page.cpp.o.d"
  "fig1_queries_per_page"
  "fig1_queries_per_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_queries_per_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
