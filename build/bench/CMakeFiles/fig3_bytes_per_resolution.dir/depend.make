# Empty dependencies file for fig3_bytes_per_resolution.
# This may be replaced when dependencies are built.
