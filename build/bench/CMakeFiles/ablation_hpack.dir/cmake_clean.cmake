file(REMOVE_RECURSE
  "CMakeFiles/ablation_hpack.dir/ablation_hpack.cpp.o"
  "CMakeFiles/ablation_hpack.dir/ablation_hpack.cpp.o.d"
  "ablation_hpack"
  "ablation_hpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
