# Empty compiler generated dependencies file for ablation_hpack.
# This may be replaced when dependencies are built.
