# Empty compiler generated dependencies file for fig4_packets_per_resolution.
# This may be replaced when dependencies are built.
