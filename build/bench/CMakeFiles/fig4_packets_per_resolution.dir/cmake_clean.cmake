file(REMOVE_RECURSE
  "CMakeFiles/fig4_packets_per_resolution.dir/fig4_packets_per_resolution.cpp.o"
  "CMakeFiles/fig4_packets_per_resolution.dir/fig4_packets_per_resolution.cpp.o.d"
  "fig4_packets_per_resolution"
  "fig4_packets_per_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_packets_per_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
