# Empty dependencies file for ablation_tls.
# This may be replaced when dependencies are built.
