file(REMOVE_RECURSE
  "CMakeFiles/ablation_tls.dir/ablation_tls.cpp.o"
  "CMakeFiles/ablation_tls.dir/ablation_tls.cpp.o.d"
  "ablation_tls"
  "ablation_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
