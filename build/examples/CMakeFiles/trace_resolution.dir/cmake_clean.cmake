file(REMOVE_RECURSE
  "CMakeFiles/trace_resolution.dir/trace_resolution.cpp.o"
  "CMakeFiles/trace_resolution.dir/trace_resolution.cpp.o.d"
  "trace_resolution"
  "trace_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
