# Empty compiler generated dependencies file for trace_resolution.
# This may be replaced when dependencies are built.
