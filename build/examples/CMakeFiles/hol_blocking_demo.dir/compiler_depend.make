# Empty compiler generated dependencies file for hol_blocking_demo.
# This may be replaced when dependencies are built.
