file(REMOVE_RECURSE
  "CMakeFiles/hol_blocking_demo.dir/hol_blocking_demo.cpp.o"
  "CMakeFiles/hol_blocking_demo.dir/hol_blocking_demo.cpp.o.d"
  "hol_blocking_demo"
  "hol_blocking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hol_blocking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
