file(REMOVE_RECURSE
  "CMakeFiles/page_load_study.dir/page_load_study.cpp.o"
  "CMakeFiles/page_load_study.dir/page_load_study.cpp.o.d"
  "page_load_study"
  "page_load_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_load_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
