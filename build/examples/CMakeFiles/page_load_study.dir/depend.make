# Empty dependencies file for page_load_study.
# This may be replaced when dependencies are built.
