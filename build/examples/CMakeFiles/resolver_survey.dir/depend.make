# Empty dependencies file for resolver_survey.
# This may be replaced when dependencies are built.
