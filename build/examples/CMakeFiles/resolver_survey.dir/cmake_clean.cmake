file(REMOVE_RECURSE
  "CMakeFiles/resolver_survey.dir/resolver_survey.cpp.o"
  "CMakeFiles/resolver_survey.dir/resolver_survey.cpp.o.d"
  "resolver_survey"
  "resolver_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
