# Empty compiler generated dependencies file for doq_quickstart.
# This may be replaced when dependencies are built.
