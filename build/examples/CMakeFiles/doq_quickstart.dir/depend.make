# Empty dependencies file for doq_quickstart.
# This may be replaced when dependencies are built.
