file(REMOVE_RECURSE
  "CMakeFiles/doq_quickstart.dir/doq_quickstart.cpp.o"
  "CMakeFiles/doq_quickstart.dir/doq_quickstart.cpp.o.d"
  "doq_quickstart"
  "doq_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doq_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
