# Empty dependencies file for dohdig.
# This may be replaced when dependencies are built.
