file(REMOVE_RECURSE
  "CMakeFiles/dohdig.dir/dohdig.cpp.o"
  "CMakeFiles/dohdig.dir/dohdig.cpp.o.d"
  "dohdig"
  "dohdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
