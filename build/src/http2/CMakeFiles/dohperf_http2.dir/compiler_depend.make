# Empty compiler generated dependencies file for dohperf_http2.
# This may be replaced when dependencies are built.
