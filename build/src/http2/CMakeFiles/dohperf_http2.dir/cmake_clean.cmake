file(REMOVE_RECURSE
  "CMakeFiles/dohperf_http2.dir/connection.cpp.o"
  "CMakeFiles/dohperf_http2.dir/connection.cpp.o.d"
  "CMakeFiles/dohperf_http2.dir/frame.cpp.o"
  "CMakeFiles/dohperf_http2.dir/frame.cpp.o.d"
  "CMakeFiles/dohperf_http2.dir/hpack.cpp.o"
  "CMakeFiles/dohperf_http2.dir/hpack.cpp.o.d"
  "libdohperf_http2.a"
  "libdohperf_http2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
