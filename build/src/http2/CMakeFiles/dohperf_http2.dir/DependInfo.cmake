
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http2/connection.cpp" "src/http2/CMakeFiles/dohperf_http2.dir/connection.cpp.o" "gcc" "src/http2/CMakeFiles/dohperf_http2.dir/connection.cpp.o.d"
  "/root/repo/src/http2/frame.cpp" "src/http2/CMakeFiles/dohperf_http2.dir/frame.cpp.o" "gcc" "src/http2/CMakeFiles/dohperf_http2.dir/frame.cpp.o.d"
  "/root/repo/src/http2/hpack.cpp" "src/http2/CMakeFiles/dohperf_http2.dir/hpack.cpp.o" "gcc" "src/http2/CMakeFiles/dohperf_http2.dir/hpack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
