file(REMOVE_RECURSE
  "libdohperf_http2.a"
)
