# Empty dependencies file for dohperf_core.
# This may be replaced when dependencies are built.
