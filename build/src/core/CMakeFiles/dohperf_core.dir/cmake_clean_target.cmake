file(REMOVE_RECURSE
  "libdohperf_core.a"
)
