
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/caching_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/caching_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/caching_client.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/dohperf_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/doh_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/doh_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/doh_client.cpp.o.d"
  "/root/repo/src/core/doq_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/doq_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/doq_client.cpp.o.d"
  "/root/repo/src/core/dot_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/dot_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/dot_client.cpp.o.d"
  "/root/repo/src/core/fallback_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/fallback_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/fallback_client.cpp.o.d"
  "/root/repo/src/core/tcp_dns_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/tcp_dns_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/tcp_dns_client.cpp.o.d"
  "/root/repo/src/core/udp_client.cpp" "src/core/CMakeFiles/dohperf_core.dir/udp_client.cpp.o" "gcc" "src/core/CMakeFiles/dohperf_core.dir/udp_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/tlssim/CMakeFiles/dohperf_tlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/http1/CMakeFiles/dohperf_http1.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/dohperf_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/quicsim/CMakeFiles/dohperf_quicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
