file(REMOVE_RECURSE
  "CMakeFiles/dohperf_core.dir/caching_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/caching_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/cost.cpp.o"
  "CMakeFiles/dohperf_core.dir/cost.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/doh_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/doh_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/doq_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/doq_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/dot_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/dot_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/fallback_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/fallback_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/tcp_dns_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/tcp_dns_client.cpp.o.d"
  "CMakeFiles/dohperf_core.dir/udp_client.cpp.o"
  "CMakeFiles/dohperf_core.dir/udp_client.cpp.o.d"
  "libdohperf_core.a"
  "libdohperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
