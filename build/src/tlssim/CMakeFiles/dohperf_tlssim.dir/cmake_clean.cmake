file(REMOVE_RECURSE
  "CMakeFiles/dohperf_tlssim.dir/connection.cpp.o"
  "CMakeFiles/dohperf_tlssim.dir/connection.cpp.o.d"
  "CMakeFiles/dohperf_tlssim.dir/context.cpp.o"
  "CMakeFiles/dohperf_tlssim.dir/context.cpp.o.d"
  "CMakeFiles/dohperf_tlssim.dir/handshake.cpp.o"
  "CMakeFiles/dohperf_tlssim.dir/handshake.cpp.o.d"
  "CMakeFiles/dohperf_tlssim.dir/types.cpp.o"
  "CMakeFiles/dohperf_tlssim.dir/types.cpp.o.d"
  "libdohperf_tlssim.a"
  "libdohperf_tlssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_tlssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
