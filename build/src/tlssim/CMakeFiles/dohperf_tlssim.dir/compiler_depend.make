# Empty compiler generated dependencies file for dohperf_tlssim.
# This may be replaced when dependencies are built.
