file(REMOVE_RECURSE
  "libdohperf_tlssim.a"
)
