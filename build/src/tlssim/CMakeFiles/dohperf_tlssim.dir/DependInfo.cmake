
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlssim/connection.cpp" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/connection.cpp.o" "gcc" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/connection.cpp.o.d"
  "/root/repo/src/tlssim/context.cpp" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/context.cpp.o" "gcc" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/context.cpp.o.d"
  "/root/repo/src/tlssim/handshake.cpp" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/handshake.cpp.o" "gcc" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/handshake.cpp.o.d"
  "/root/repo/src/tlssim/types.cpp" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/types.cpp.o" "gcc" "src/tlssim/CMakeFiles/dohperf_tlssim.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
