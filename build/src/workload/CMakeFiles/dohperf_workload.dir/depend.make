# Empty dependencies file for dohperf_workload.
# This may be replaced when dependencies are built.
