file(REMOVE_RECURSE
  "CMakeFiles/dohperf_workload.dir/alexa.cpp.o"
  "CMakeFiles/dohperf_workload.dir/alexa.cpp.o.d"
  "CMakeFiles/dohperf_workload.dir/names.cpp.o"
  "CMakeFiles/dohperf_workload.dir/names.cpp.o.d"
  "libdohperf_workload.a"
  "libdohperf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
