file(REMOVE_RECURSE
  "libdohperf_workload.a"
)
