
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/alexa.cpp" "src/workload/CMakeFiles/dohperf_workload.dir/alexa.cpp.o" "gcc" "src/workload/CMakeFiles/dohperf_workload.dir/alexa.cpp.o.d"
  "/root/repo/src/workload/names.cpp" "src/workload/CMakeFiles/dohperf_workload.dir/names.cpp.o" "gcc" "src/workload/CMakeFiles/dohperf_workload.dir/names.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
