file(REMOVE_RECURSE
  "CMakeFiles/dohperf_simnet.dir/event_loop.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/event_loop.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/host.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/host.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/network.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/network.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/packet.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/packet.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/stream.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/stream.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/tcp.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/tcp.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/trace.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/trace.cpp.o.d"
  "CMakeFiles/dohperf_simnet.dir/udp.cpp.o"
  "CMakeFiles/dohperf_simnet.dir/udp.cpp.o.d"
  "libdohperf_simnet.a"
  "libdohperf_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
