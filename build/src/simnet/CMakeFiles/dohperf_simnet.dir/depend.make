# Empty dependencies file for dohperf_simnet.
# This may be replaced when dependencies are built.
