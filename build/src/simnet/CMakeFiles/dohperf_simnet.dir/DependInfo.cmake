
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/event_loop.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/event_loop.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/event_loop.cpp.o.d"
  "/root/repo/src/simnet/host.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/host.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/host.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/network.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/network.cpp.o.d"
  "/root/repo/src/simnet/packet.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/packet.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/packet.cpp.o.d"
  "/root/repo/src/simnet/stream.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/stream.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/stream.cpp.o.d"
  "/root/repo/src/simnet/tcp.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/tcp.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/tcp.cpp.o.d"
  "/root/repo/src/simnet/trace.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/trace.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/trace.cpp.o.d"
  "/root/repo/src/simnet/udp.cpp" "src/simnet/CMakeFiles/dohperf_simnet.dir/udp.cpp.o" "gcc" "src/simnet/CMakeFiles/dohperf_simnet.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
