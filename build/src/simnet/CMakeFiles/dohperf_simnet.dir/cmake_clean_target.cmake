file(REMOVE_RECURSE
  "libdohperf_simnet.a"
)
