file(REMOVE_RECURSE
  "libdohperf_quicsim.a"
)
