file(REMOVE_RECURSE
  "CMakeFiles/dohperf_quicsim.dir/connection.cpp.o"
  "CMakeFiles/dohperf_quicsim.dir/connection.cpp.o.d"
  "CMakeFiles/dohperf_quicsim.dir/endpoint.cpp.o"
  "CMakeFiles/dohperf_quicsim.dir/endpoint.cpp.o.d"
  "CMakeFiles/dohperf_quicsim.dir/packet.cpp.o"
  "CMakeFiles/dohperf_quicsim.dir/packet.cpp.o.d"
  "libdohperf_quicsim.a"
  "libdohperf_quicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_quicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
