# Empty compiler generated dependencies file for dohperf_quicsim.
# This may be replaced when dependencies are built.
