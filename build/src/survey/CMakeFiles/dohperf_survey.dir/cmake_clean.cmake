file(REMOVE_RECURSE
  "CMakeFiles/dohperf_survey.dir/deployment.cpp.o"
  "CMakeFiles/dohperf_survey.dir/deployment.cpp.o.d"
  "CMakeFiles/dohperf_survey.dir/prober.cpp.o"
  "CMakeFiles/dohperf_survey.dir/prober.cpp.o.d"
  "CMakeFiles/dohperf_survey.dir/providers.cpp.o"
  "CMakeFiles/dohperf_survey.dir/providers.cpp.o.d"
  "CMakeFiles/dohperf_survey.dir/report.cpp.o"
  "CMakeFiles/dohperf_survey.dir/report.cpp.o.d"
  "libdohperf_survey.a"
  "libdohperf_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
