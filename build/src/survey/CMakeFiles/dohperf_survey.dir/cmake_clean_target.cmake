file(REMOVE_RECURSE
  "libdohperf_survey.a"
)
