# Empty compiler generated dependencies file for dohperf_survey.
# This may be replaced when dependencies are built.
