file(REMOVE_RECURSE
  "CMakeFiles/dohperf_browser.dir/page_load.cpp.o"
  "CMakeFiles/dohperf_browser.dir/page_load.cpp.o.d"
  "CMakeFiles/dohperf_browser.dir/vantage.cpp.o"
  "CMakeFiles/dohperf_browser.dir/vantage.cpp.o.d"
  "CMakeFiles/dohperf_browser.dir/web_farm.cpp.o"
  "CMakeFiles/dohperf_browser.dir/web_farm.cpp.o.d"
  "libdohperf_browser.a"
  "libdohperf_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
