
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/page_load.cpp" "src/browser/CMakeFiles/dohperf_browser.dir/page_load.cpp.o" "gcc" "src/browser/CMakeFiles/dohperf_browser.dir/page_load.cpp.o.d"
  "/root/repo/src/browser/vantage.cpp" "src/browser/CMakeFiles/dohperf_browser.dir/vantage.cpp.o" "gcc" "src/browser/CMakeFiles/dohperf_browser.dir/vantage.cpp.o.d"
  "/root/repo/src/browser/web_farm.cpp" "src/browser/CMakeFiles/dohperf_browser.dir/web_farm.cpp.o" "gcc" "src/browser/CMakeFiles/dohperf_browser.dir/web_farm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/tlssim/CMakeFiles/dohperf_tlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/http1/CMakeFiles/dohperf_http1.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dohperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dohperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dohperf_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/dohperf_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/quicsim/CMakeFiles/dohperf_quicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
