# Empty dependencies file for dohperf_browser.
# This may be replaced when dependencies are built.
