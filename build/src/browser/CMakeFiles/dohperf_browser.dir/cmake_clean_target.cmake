file(REMOVE_RECURSE
  "libdohperf_browser.a"
)
