
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/base64url.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/base64url.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/base64url.cpp.o.d"
  "/root/repo/src/dns/json.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/json.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/json.cpp.o.d"
  "/root/repo/src/dns/json_value.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/json_value.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/json_value.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/record.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/record.cpp.o.d"
  "/root/repo/src/dns/wire.cpp" "src/dns/CMakeFiles/dohperf_dns.dir/wire.cpp.o" "gcc" "src/dns/CMakeFiles/dohperf_dns.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
