file(REMOVE_RECURSE
  "CMakeFiles/dohperf_dns.dir/base64url.cpp.o"
  "CMakeFiles/dohperf_dns.dir/base64url.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/json.cpp.o"
  "CMakeFiles/dohperf_dns.dir/json.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/json_value.cpp.o"
  "CMakeFiles/dohperf_dns.dir/json_value.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/message.cpp.o"
  "CMakeFiles/dohperf_dns.dir/message.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/name.cpp.o"
  "CMakeFiles/dohperf_dns.dir/name.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/record.cpp.o"
  "CMakeFiles/dohperf_dns.dir/record.cpp.o.d"
  "CMakeFiles/dohperf_dns.dir/wire.cpp.o"
  "CMakeFiles/dohperf_dns.dir/wire.cpp.o.d"
  "libdohperf_dns.a"
  "libdohperf_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
