# Empty dependencies file for dohperf_dns.
# This may be replaced when dependencies are built.
