file(REMOVE_RECURSE
  "CMakeFiles/dohperf_stats.dir/cdf.cpp.o"
  "CMakeFiles/dohperf_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/dohperf_stats.dir/rng.cpp.o"
  "CMakeFiles/dohperf_stats.dir/rng.cpp.o.d"
  "CMakeFiles/dohperf_stats.dir/summary.cpp.o"
  "CMakeFiles/dohperf_stats.dir/summary.cpp.o.d"
  "CMakeFiles/dohperf_stats.dir/table.cpp.o"
  "CMakeFiles/dohperf_stats.dir/table.cpp.o.d"
  "libdohperf_stats.a"
  "libdohperf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
