# Empty compiler generated dependencies file for dohperf_stats.
# This may be replaced when dependencies are built.
