file(REMOVE_RECURSE
  "libdohperf_resolver.a"
)
