
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/doh_server.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/doh_server.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/doh_server.cpp.o.d"
  "/root/repo/src/resolver/doq_server.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/doq_server.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/doq_server.cpp.o.d"
  "/root/repo/src/resolver/dot_server.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/dot_server.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/dot_server.cpp.o.d"
  "/root/repo/src/resolver/engine.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/engine.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/engine.cpp.o.d"
  "/root/repo/src/resolver/tcp_dns_server.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/tcp_dns_server.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/tcp_dns_server.cpp.o.d"
  "/root/repo/src/resolver/udp_server.cpp" "src/resolver/CMakeFiles/dohperf_resolver.dir/udp_server.cpp.o" "gcc" "src/resolver/CMakeFiles/dohperf_resolver.dir/udp_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/dohperf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dohperf_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/tlssim/CMakeFiles/dohperf_tlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/http1/CMakeFiles/dohperf_http1.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/dohperf_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/quicsim/CMakeFiles/dohperf_quicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dohperf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
