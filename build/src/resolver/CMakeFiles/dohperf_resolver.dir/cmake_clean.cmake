file(REMOVE_RECURSE
  "CMakeFiles/dohperf_resolver.dir/doh_server.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/doh_server.cpp.o.d"
  "CMakeFiles/dohperf_resolver.dir/doq_server.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/doq_server.cpp.o.d"
  "CMakeFiles/dohperf_resolver.dir/dot_server.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/dot_server.cpp.o.d"
  "CMakeFiles/dohperf_resolver.dir/engine.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/engine.cpp.o.d"
  "CMakeFiles/dohperf_resolver.dir/tcp_dns_server.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/tcp_dns_server.cpp.o.d"
  "CMakeFiles/dohperf_resolver.dir/udp_server.cpp.o"
  "CMakeFiles/dohperf_resolver.dir/udp_server.cpp.o.d"
  "libdohperf_resolver.a"
  "libdohperf_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
