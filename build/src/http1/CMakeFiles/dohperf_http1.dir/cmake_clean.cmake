file(REMOVE_RECURSE
  "CMakeFiles/dohperf_http1.dir/client.cpp.o"
  "CMakeFiles/dohperf_http1.dir/client.cpp.o.d"
  "CMakeFiles/dohperf_http1.dir/message.cpp.o"
  "CMakeFiles/dohperf_http1.dir/message.cpp.o.d"
  "CMakeFiles/dohperf_http1.dir/server.cpp.o"
  "CMakeFiles/dohperf_http1.dir/server.cpp.o.d"
  "libdohperf_http1.a"
  "libdohperf_http1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dohperf_http1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
