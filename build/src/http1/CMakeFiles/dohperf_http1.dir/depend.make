# Empty dependencies file for dohperf_http1.
# This may be replaced when dependencies are built.
