file(REMOVE_RECURSE
  "libdohperf_http1.a"
)
