# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_tls[1]_include.cmake")
include("/root/repo/build/tests/test_http1[1]_include.cmake")
include("/root/repo/build/tests/test_hpack[1]_include.cmake")
include("/root/repo/build/tests/test_http2[1]_include.cmake")
include("/root/repo/build/tests/test_resolve_integration[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_browser[1]_include.cmake")
include("/root/repo/build/tests/test_survey[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_transport_properties[1]_include.cmake")
include("/root/repo/build/tests/test_quic[1]_include.cmake")
include("/root/repo/build/tests/test_chunked[1]_include.cmake")
include("/root/repo/build/tests/test_client_policies[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_gaps[1]_include.cmake")
