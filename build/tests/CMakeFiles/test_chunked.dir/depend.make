# Empty dependencies file for test_chunked.
# This may be replaced when dependencies are built.
