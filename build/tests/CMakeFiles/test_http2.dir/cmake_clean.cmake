file(REMOVE_RECURSE
  "CMakeFiles/test_http2.dir/test_http2.cpp.o"
  "CMakeFiles/test_http2.dir/test_http2.cpp.o.d"
  "test_http2"
  "test_http2.pdb"
  "test_http2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
