# Empty compiler generated dependencies file for test_http2.
# This may be replaced when dependencies are built.
