file(REMOVE_RECURSE
  "CMakeFiles/test_hpack.dir/test_hpack.cpp.o"
  "CMakeFiles/test_hpack.dir/test_hpack.cpp.o.d"
  "test_hpack"
  "test_hpack.pdb"
  "test_hpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
