# Empty dependencies file for test_hpack.
# This may be replaced when dependencies are built.
