# Empty compiler generated dependencies file for test_http1.
# This may be replaced when dependencies are built.
