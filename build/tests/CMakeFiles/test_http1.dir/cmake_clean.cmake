file(REMOVE_RECURSE
  "CMakeFiles/test_http1.dir/test_http1.cpp.o"
  "CMakeFiles/test_http1.dir/test_http1.cpp.o.d"
  "test_http1"
  "test_http1.pdb"
  "test_http1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
