# Empty dependencies file for test_client_policies.
# This may be replaced when dependencies are built.
