file(REMOVE_RECURSE
  "CMakeFiles/test_transport_properties.dir/test_transport_properties.cpp.o"
  "CMakeFiles/test_transport_properties.dir/test_transport_properties.cpp.o.d"
  "test_transport_properties"
  "test_transport_properties.pdb"
  "test_transport_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
