# Empty dependencies file for test_transport_properties.
# This may be replaced when dependencies are built.
