# Empty compiler generated dependencies file for test_resolve_integration.
# This may be replaced when dependencies are built.
