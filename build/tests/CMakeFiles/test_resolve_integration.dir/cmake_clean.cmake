file(REMOVE_RECURSE
  "CMakeFiles/test_resolve_integration.dir/test_resolve_integration.cpp.o"
  "CMakeFiles/test_resolve_integration.dir/test_resolve_integration.cpp.o.d"
  "test_resolve_integration"
  "test_resolve_integration.pdb"
  "test_resolve_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolve_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
