// Head-of-line-blocking demo (the paper's §3 in miniature).
//
// Sends five queries over DNS-over-TLS and over DoH/HTTP-2 while the
// resolver delays the second query by one second, and prints when each
// answer arrives. Watch the DoT answers queue up behind the delayed one
// while HTTP/2's streams deliver out of order.
//
//   $ ./hol_blocking_demo
#include <cstdio>
#include <string>

#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"

namespace {

using namespace dohperf;

void run(const std::string& transport) {
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client.id(), server.id(), link);

  resolver::EngineConfig engine_config;
  engine_config.delay_policy.every_n = 2;  // delay query #2 (and #4...)
  engine_config.delay_policy.delay = simnet::ms(1000);
  resolver::Engine engine(loop, engine_config);

  resolver::DotServer dot(server, engine, {}, 853);
  resolver::DohServerConfig doh_config;
  resolver::DohServer doh(server, engine, doh_config, 443);

  std::unique_ptr<core::ResolverClient> resolver_client;
  if (transport == "DoT") {
    resolver_client = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853});
  } else {
    resolver_client = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443});
  }

  std::printf("--- %s (query 2 delayed 1000ms at the server) ---\n",
              transport.c_str());
  for (int i = 1; i <= 5; ++i) {
    const auto name =
        dns::Name::parse("q" + std::to_string(i) + ".example.com");
    resolver_client->resolve(
        name, dns::RType::kA, [i, &loop](const core::ResolutionResult& r) {
          std::printf("  query %d answered at t=%7.1f ms (took %7.1f ms)\n",
                      i, simnet::to_ms(loop.now()),
                      simnet::to_ms(r.resolution_time()));
        });
  }
  loop.run();
  std::printf("\n");
}

}  // namespace

int main() {
  run("DoT");   // in-order: queries 3-5 blocked behind query 2
  run("DoH/2"); // multiplexed: only query 2 is slow
  std::printf("DoT serializes responses (RFC-permitted out-of-order replies\n"
              "were rare in 2019 deployments), so one slow query delays all\n"
              "that follow; HTTP/2 streams are independent.\n");
  return 0;
}
