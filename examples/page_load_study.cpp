// Load one synthetic Alexa-style page twice — once resolving over classic
// UDP DNS, once over DoH — and compare the timings (the §5 experiment for
// a single page).
//
//   $ ./page_load_study            # page rank 1
//   $ ./page_load_study 42         # page rank 42
#include <cstdio>
#include <cstdlib>

#include "browser/page_load.hpp"
#include "browser/vantage.hpp"
#include "browser/web_farm.hpp"
#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"

namespace {

using namespace dohperf;

browser::PageLoadResult load_once(const workload::Page& page, bool use_doh) {
  const auto vantage = browser::Vantage::university();

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host browser_host(net, "browser");
  simnet::Host resolver_host(net, "resolver");
  simnet::LinkConfig link;
  link.latency = vantage.cloudflare_latency;
  net.connect(browser_host.id(), resolver_host.id(), link);

  resolver::EngineConfig engine_config;
  engine_config.upstream = vantage.cloud_resolver;
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp(resolver_host, engine, 53);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
  doh_config.frontend_delay = simnet::ms(4);
  resolver::DohServer doh(resolver_host, engine, doh_config, 443);

  std::unique_ptr<core::ResolverClient> resolver_client;
  if (use_doh) {
    core::DohClientConfig config;
    config.server_name = "cloudflare-dns.com";
    resolver_client = std::make_unique<core::DohClient>(
        browser_host, simnet::Address{resolver_host.id(), 443}, config);
  } else {
    resolver_client = std::make_unique<core::UdpResolverClient>(
        browser_host, simnet::Address{resolver_host.id(), 53});
  }

  browser::WebFarmConfig farm_config;
  farm_config.base_latency = vantage.origin_base_latency;
  farm_config.latency_jitter = vantage.origin_latency_jitter;
  browser::WebFarm farm(net, browser_host, farm_config);

  browser::PageLoader loader(browser_host, farm, *resolver_client);
  browser::PageLoadResult result;
  loader.load(page, [&](const browser::PageLoadResult& r) { result = r; });
  loop.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dohperf;
  const std::size_t rank =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  workload::AlexaPageModel model;
  const auto page = model.page(rank);
  std::printf("page rank %zu: %s — %zu objects across %zu domains\n\n",
              rank, page.primary.to_string().c_str(), page.objects.size(),
              page.unique_domains().size());

  for (const bool use_doh : {false, true}) {
    const auto r = load_once(page, use_doh);
    std::printf("%-18s onload=%8.1f ms  cumulative DNS=%8.1f ms  "
                "queries=%zu  objects=%zu\n",
                use_doh ? "DoH (Cloudflare):" : "UDP (Cloudflare):",
                simnet::to_ms(r.onload_time()),
                simnet::to_ms(r.cumulative_dns), r.dns_queries,
                r.objects_fetched);
  }
  std::printf("\nDoH costs extra resolution time, but the browser overlaps "
              "DNS with\nfetches, so onload barely moves — the paper's "
              "headline result.\n");
  return 0;
}
