// Print the full packet-level trace of one DoH resolution — the simulated
// equivalent of running tcpdump next to the stub resolver, which is how the
// paper produced its byte accounting (Figs 3-5).
//
//   $ ./trace_resolution
#include <cstdio>

#include "core/doh_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "simnet/trace.hpp"

int main() {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  simnet::RecordingTap tap;
  net.add_tap(&tap);

  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.persistent = false;  // include teardown in the trace
  core::DohClient resolver_client(client, {server.id(), 443}, config);

  const auto id = resolver_client.resolve(
      dns::Name::parse("www.example.com"), dns::RType::kA, {});
  loop.run();
  net.remove_tap(&tap);

  std::printf("packet trace of one fresh-connection DoH resolution:\n\n%s",
              tap.render(net).c_str());
  std::printf("\n%zu packets, %llu bytes on the wire\n", tap.size(),
              static_cast<unsigned long long>(tap.total_bytes()));
  std::printf("client-side accounting (cost window may differ by a boundary ACK):\n  %s\n",
              resolver_client.result(id).cost.to_string().c_str());
  return 0;
}
