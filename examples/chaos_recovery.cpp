// Chaos recovery demo: crash the DoH resolver mid-workload and watch the
// reconnecting client ride it out.
//
// A DoH (HTTP/2) client issues one query every 250ms for 8 seconds. At
// t=2s the resolver restarts — every live connection is reset and the
// listener is gone for 2s. The client's retry policy (exponential backoff,
// per-query budget) re-issues the stranded queries on fresh connections, so
// every query is eventually answered; the timeline printed per query shows
// which ones paid the outage and what the recovery cost in reconnects.
//
//   $ ./chaos_recovery
#include <cstdio>
#include <vector>

#include "core/doh_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "simnet/event_loop.hpp"
#include "simnet/host.hpp"

int main() {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop, /*seed=*/11);
  simnet::Host client(net, "laptop");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  core::DohClientConfig client_config;
  client_config.server_name = "cloudflare-dns.com";
  client_config.retry.max_retries = 8;
  client_config.retry.backoff_initial = simnet::ms(100);
  client_config.retry.backoff_max = simnet::seconds(1);
  client_config.retry.query_timeout = simnet::seconds(3);
  core::DohClient stub(client, {server.id(), 443}, client_config);

  std::printf("t=2.0s: resolver crashes (connections reset), back at 4.0s\n");
  loop.schedule_at(simnet::seconds(2),
                   [&]() { doh.restart(simnet::seconds(2)); });

  const int n = 32;
  std::vector<std::uint64_t> ids(n);
  for (int i = 0; i < n; ++i) {
    loop.schedule_at(simnet::ms(250) * i, [&, i]() {
      ids[i] = stub.resolve(
          dns::Name::parse("q" + std::to_string(i) + ".example.com"),
          dns::RType::kA, {});
    });
  }
  loop.run();

  int ok = 0;
  for (int i = 0; i < n; ++i) {
    const auto& r = stub.result(ids[i]);
    if (r.success) ++ok;
    const double sent_s = simnet::to_sec(r.sent_at);
    const double took_ms = simnet::to_ms(r.resolution_time());
    std::printf("  query %2d  sent %4.2fs  %s in %8.1f ms%s\n", i, sent_s,
                r.success ? "answered" : "FAILED  ", took_ms,
                took_ms > 100.0 ? "   <- paid the outage" : "");
  }

  const auto& rs = stub.retry_stats();
  std::printf("\n%d/%d answered; %llu re-issued queries over %llu "
              "reconnects, %llu budgets exhausted\n",
              ok, n, static_cast<unsigned long long>(rs.retried_queries),
              static_cast<unsigned long long>(rs.reconnects),
              static_cast<unsigned long long>(rs.budget_exhausted));
  return 0;
}
