// DNS-over-QUIC quickstart (extension): resolve one name over DoQ and
// compare its cold-start cost with DoT on the same link — QUIC's combined
// transport+crypto handshake saves a full round trip.
//
//   $ ./doq_quickstart
#include <cstdio>

#include "core/doq_client.hpp"
#include "core/dot_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doq_server.hpp"
#include "resolver/dot_server.hpp"

int main() {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "laptop");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(15);  // a 30ms RTT path
  net.connect(client.id(), server.id(), link);

  resolver::Engine engine(loop, {});
  const auto chain = tlssim::CertificateChain::generic("dns.example");

  resolver::DoqServerConfig doq_config;
  doq_config.tls.chain = chain;
  resolver::DoqServer doq_server(server, engine, doq_config, 8853);

  resolver::DotServerConfig dot_config;
  dot_config.tls.chain = chain;
  resolver::DotServer dot_server(server, engine, dot_config, 853);

  const auto name = dns::Name::parse("www.example.com");

  core::DoqClient doq(client, {server.id(), 8853});
  doq.resolve(name, dns::RType::kA, [&](const core::ResolutionResult& r) {
    std::printf("DoQ (RFC 9250): %5.1f ms cold  -> %s\n",
                simnet::to_ms(r.resolution_time()),
                std::get<dns::ARdata>(r.response.answers.at(0).rdata)
                    .to_string()
                    .c_str());
  });
  loop.run();

  core::DotClient dot(client, {server.id(), 853});
  dot.resolve(name, dns::RType::kA, [&](const core::ResolutionResult& r) {
    std::printf("DoT (RFC 7858): %5.1f ms cold  -> %s\n",
                simnet::to_ms(r.resolution_time()),
                std::get<dns::ARdata>(r.response.answers.at(0).rdata)
                    .to_string()
                    .c_str());
  });
  loop.run();

  std::printf("\nDoQ folds the crypto handshake into the transport "
              "handshake:\none round trip before the query instead of "
              "two.\n");
  return 0;
}
