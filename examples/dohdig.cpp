// dohdig — a dig-style command line over the simulated stack: resolve any
// name through a chosen transport and provider profile, printing the
// answer, timing and per-layer wire cost.
//
//   $ ./dohdig example.com
//   $ ./dohdig www.example.com --transport doh --provider GO --fresh
//   $ ./dohdig x.example --transport dot
//   $ ./dohdig x.example --transport doq --rtt 40
//   $ ./dohdig x.example --transport udp --trace
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/doh_client.hpp"
#include "core/doq_client.hpp"
#include "core/dot_client.hpp"
#include "core/tcp_dns_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/doq_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/tcp_dns_server.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/trace.hpp"

namespace {

using namespace dohperf;

struct Options {
  std::string name = "example.com";
  std::string transport = "doh";  // udp | tcp | dot | doh | doh1 | doq
  std::string provider = "CF";    // CF | GO
  bool fresh = false;             // non-persistent DoH connection
  bool trace = false;
  long rtt_ms = 20;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--transport") opt.transport = next();
    else if (arg == "--provider") opt.provider = next();
    else if (arg == "--fresh") opt.fresh = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--rtt") opt.rtt_ms = std::strtol(next().c_str(), nullptr, 10);
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: dohdig [name] [--transport udp|tcp|dot|doh|doh1|doq]\n"
                  "              [--provider CF|GO] [--fresh] [--trace] [--rtt MS]\n");
      std::exit(0);
    } else if (!arg.empty() && arg[0] != '-') {
      opt.name = arg;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "dohdig");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(opt.rtt_ms / 2);
  net.connect(client.id(), server.id(), link);

  simnet::RecordingTap tap;
  if (opt.trace) net.add_tap(&tap);

  const bool google = opt.provider == "GO";
  resolver::EngineConfig engine_config;
  if (google) {
    engine_config.answer_count = 4;
    engine_config.ecs_option = true;
  }
  resolver::Engine engine(loop, engine_config);
  const auto chain = google ? tlssim::CertificateChain::google()
                            : tlssim::CertificateChain::cloudflare();
  const std::string hostname =
      google ? "dns.google.com" : "cloudflare-dns.com";

  resolver::UdpServer udp_server(server, engine, 53);
  resolver::TcpDnsServer tcp_server(server, engine, {}, 53);
  resolver::DotServerConfig dot_config;
  dot_config.tls.chain = chain;
  resolver::DotServer dot_server(server, engine, dot_config, 853);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = chain;
  resolver::DohServer doh_server(server, engine, doh_config, 443);
  resolver::DoqServerConfig doq_config;
  doq_config.tls.chain = chain;
  resolver::DoqServer doq_server(server, engine, doq_config, 8853);

  std::unique_ptr<core::ResolverClient> resolver_client;
  if (opt.transport == "udp") {
    resolver_client = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
  } else if (opt.transport == "tcp") {
    resolver_client = std::make_unique<core::TcpDnsClient>(
        client, simnet::Address{server.id(), 53});
  } else if (opt.transport == "dot") {
    core::DotClientConfig config;
    config.server_name = hostname;
    resolver_client = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853}, config);
  } else if (opt.transport == "doq") {
    core::DoqClientConfig config;
    config.server_name = hostname;
    resolver_client = std::make_unique<core::DoqClient>(
        client, simnet::Address{server.id(), 8853}, config);
  } else {
    core::DohClientConfig config;
    config.server_name = hostname;
    config.persistent = !opt.fresh;
    if (opt.transport == "doh1") {
      config.http_version = core::HttpVersion::kHttp1;
    }
    resolver_client = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443}, config);
  }

  dns::Name qname;
  try {
    qname = dns::Name::parse(opt.name);
  } catch (const dns::WireError& e) {
    std::fprintf(stderr, "invalid name '%s': %s\n", opt.name.c_str(),
                 e.what());
    return 1;
  }

  std::printf(";; dohdig %s @%s via %s (RTT %ld ms%s)\n\n", opt.name.c_str(),
              hostname.c_str(), opt.transport.c_str(), opt.rtt_ms,
              opt.fresh ? ", fresh connection" : "");
  const auto id = resolver_client->resolve(
      qname, dns::RType::kA, [&](const core::ResolutionResult& r) {
        if (!r.success) {
          std::printf(";; resolution FAILED\n");
          return;
        }
        std::printf("%s", r.response.to_string().c_str());
        std::printf("\n;; Query time: %.1f ms\n",
                    simnet::to_ms(r.resolution_time()));
      });
  loop.run();

  const auto& result = resolver_client->result(id);
  if (result.cost.wire_bytes > 0) {
    std::printf(";; Wire cost: %s\n", result.cost.to_string().c_str());
  }
  if (opt.trace) {
    net.remove_tap(&tap);
    std::printf("\n;; packet trace:\n%s", tap.render(net).c_str());
  }
  return result.success ? 0 : 1;
}
