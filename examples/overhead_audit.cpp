// Audit where the bytes of a DoH resolution go, layer by layer — a single-
// resolution view of Figure 5. Runs the same query over a fresh connection
// and over a warmed-up persistent connection and prints both breakdowns.
//
//   $ ./overhead_audit
#include <cstdio>

#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"

namespace {

using namespace dohperf;

void print_report(const char* label, const core::CostReport& c) {
  std::printf("%-28s\n", label);
  std::printf("  total wire bytes : %6llu  (%llu packets)\n",
              static_cast<unsigned long long>(c.wire_bytes),
              static_cast<unsigned long long>(c.packets));
  std::printf("  DNS messages     : %6llu\n",
              static_cast<unsigned long long>(c.dns_message_bytes));
  std::printf("  HTTP headers     : %6llu\n",
              static_cast<unsigned long long>(c.http_header_bytes));
  std::printf("  HTTP/2 mgmt      : %6llu\n",
              static_cast<unsigned long long>(c.http_mgmt_bytes));
  std::printf("  TLS layer        : %6llu\n",
              static_cast<unsigned long long>(c.tls_overhead_bytes));
  std::printf("  TCP/IP layer     : %6llu\n\n",
              static_cast<unsigned long long>(c.tcp_overhead_bytes));
}

}  // namespace

int main() {
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client.id(), server.id(), link);

  resolver::Engine engine(loop, {});
  resolver::UdpServer udp(server, engine, 53);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, doh_config, 443);

  const auto name = dns::Name::parse("www.example.com");

  // Baseline: plain UDP.
  core::UdpResolverClient udp_client(client, {server.id(), 53});
  const auto udp_id = udp_client.resolve(name, dns::RType::kA, {});
  loop.run();
  print_report("UDP DNS", udp_client.result(udp_id).cost);

  // Fresh DoH connection: the handshake dominates.
  core::DohClientConfig fresh_config;
  fresh_config.server_name = "cloudflare-dns.com";
  fresh_config.persistent = false;
  core::DohClient fresh(client, {server.id(), 443}, fresh_config);
  const auto fresh_id = fresh.resolve(name, dns::RType::kA, {});
  loop.run();
  print_report("DoH/2, fresh connection", fresh.result(fresh_id).cost);

  // Persistent connection, warmed up: only the steady-state cost remains.
  core::DohClientConfig persistent_config;
  persistent_config.server_name = "cloudflare-dns.com";
  core::DohClient persistent(client, {server.id(), 443}, persistent_config);
  persistent.resolve(name, dns::RType::kA, {});  // warm-up query
  loop.run();
  const auto warm_id = persistent.resolve(name, dns::RType::kA, {});
  loop.run();
  print_report("DoH/2, persistent (warm)", persistent.result(warm_id).cost);

  std::printf("Even warm, the TLS and TCP layers each cost about as much as "
              "the DNS\npayload itself (§4) — small messages make "
              "encapsulation overhead loom large.\n");
  return 0;
}
