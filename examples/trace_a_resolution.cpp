// Trace one DoH resolution with the observability layer: attach a Tracer
// and a metrics Registry via SpanContext, resolve a name, and print the
// span timeline (resolution → connect → tcp/tls handshake → request →
// response) plus the metrics snapshot. Optionally write a Chrome
// trace_event file to browse in chrome://tracing or ui.perfetto.dev.
//
//   $ ./trace_a_resolution [trace.json]
//
// Companion to trace_resolution (the packet-level tcpdump view): same
// scenario, but seen as the hierarchical span tree the benches export
// with --trace.
#include <cstdio>
#include <fstream>

#include "core/doh_client.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  // The whole observability hookup: one tracer, one registry, one context.
  obs::Tracer tracer(loop);
  obs::Registry registry;
  const obs::SpanContext obs_ctx{&tracer, 0, &registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs_ctx;  // engine-side counters (engine.queries, ...)
  resolver::Engine engine(loop, engine_config);
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.obs = obs_ctx;  // client-side spans + client.doh_h2.* metrics
  core::DohClient resolver_client(client, {server.id(), 443}, config);

  // Two queries: the first pays the TCP+TLS handshake, the second reuses
  // the connection — compare their `resolution` spans in the timeline.
  const auto first = resolver_client.resolve(
      dns::Name::parse("www.example.com"), dns::RType::kA, {});
  loop.run();
  const auto second = resolver_client.resolve(
      dns::Name::parse("cdn.example.com"), dns::RType::kA, {});
  loop.run();
  // result() finalizes the lazily computed per-layer costs onto the spans.
  (void)resolver_client.result(first);
  (void)resolver_client.result(second);

  std::printf("span timeline of two DoH resolutions (cold, then warm):\n\n%s",
              obs::render_timeline(tracer).c_str());
  std::printf("\nmetrics snapshot:\n%s", registry.render().c_str());

  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary);
    out << obs::chrome_trace_json(tracer) << '\n';
    std::printf("\nwrote %s — open it in chrome://tracing or "
                "https://ui.perfetto.dev\n", argv[1]);
  }
  return 0;
}
