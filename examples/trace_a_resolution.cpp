// Trace one DoH resolution with the observability layer: attach a Tracer
// and a metrics Registry via SpanContext, resolve a name, and print the
// span timeline (resolution → connect → tcp/tls handshake → request →
// response) plus the metrics snapshot. Optionally write a Chrome
// trace_event file to browse in chrome://tracing or ui.perfetto.dev.
//
//   $ ./trace_a_resolution [trace.json]
//
// Act two shows the production-rate hookup: a SamplingTracer keeps 1-in-N
// roots (deterministically, by query ordinal) so a warm batch of queries
// records only a sampled subset at full fidelity while metrics — and the
// obs.spans_sampled / obs.spans_dropped self-tallies — flow for every
// query. The pooled-storage counters (span slots, attribute arena,
// interned names) are printed at the end; bench/obs_overhead measures
// what this path costs per query.
//
// Companion to trace_resolution (the packet-level tcpdump view): same
// scenario, but seen as the hierarchical span tree the benches export
// with --trace.
#include <cstdio>
#include <fstream>

#include "core/doh_client.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/sampling.hpp"
#include "obs/span.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  // The whole observability hookup: one tracer, one registry, one context.
  obs::Tracer tracer(loop);
  obs::Registry registry;
  const obs::SpanContext obs_ctx{&tracer, 0, &registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs_ctx;  // engine-side counters (engine.queries, ...)
  resolver::Engine engine(loop, engine_config);
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.obs = obs_ctx;  // client-side spans + client.doh_h2.* metrics
  core::DohClient resolver_client(client, {server.id(), 443}, config);

  // Two queries: the first pays the TCP+TLS handshake, the second reuses
  // the connection — compare their `resolution` spans in the timeline.
  const auto first = resolver_client.resolve(
      dns::Name::parse("www.example.com"), dns::RType::kA, {});
  loop.run();
  const auto second = resolver_client.resolve(
      dns::Name::parse("cdn.example.com"), dns::RType::kA, {});
  loop.run();
  // result() finalizes the lazily computed per-layer costs onto the spans.
  (void)resolver_client.result(first);
  (void)resolver_client.result(second);

  std::printf("span timeline of two DoH resolutions (cold, then warm):\n\n%s",
              obs::render_timeline(tracer).c_str());
  std::printf("\nmetrics snapshot:\n%s", registry.render().c_str());

  // Act two: the same client at production rate. A SamplingTracer fronts a
  // fresh tracer and keeps 1-in-4 roots here (1-in-64+ in production); the
  // keep/drop decision hashes the query ordinal, so the kept subset is the
  // same on every run. Dropped queries pay only the null-check fast path.
  obs::Tracer sampled_tracer(loop);
  obs::Registry prod_registry;
  obs::SamplingTracer sampler(sampled_tracer, &prod_registry,
                              {/*period=*/4, /*seed=*/7});
  const int batch = 12;
  for (int i = 0; i < batch; ++i) {
    resolver_client.set_obs(sampler.root_context(std::uint64_t(i)));
    char host[32];
    std::snprintf(host, sizeof host, "s%d.example.com", i);
    const auto id = resolver_client.resolve(dns::Name::parse(host),
                                            dns::RType::kA, {});
    loop.run();
    (void)resolver_client.result(id);
  }

  std::printf("\nsampled timeline — %d of %d warm queries kept "
              "(period 4, seed 7):\n\n%s",
              int(prod_registry.counter("obs.spans_sampled")), batch,
              obs::render_timeline(sampled_tracer).c_str());
  std::printf("\nsampling self-metrics:\n  obs.spans_sampled %llu\n"
              "  obs.spans_dropped %llu\n",
              static_cast<unsigned long long>(
                  prod_registry.counter("obs.spans_sampled")),
              static_cast<unsigned long long>(
                  prod_registry.counter("obs.spans_dropped")));
  const obs::PoolStats pool = sampled_tracer.pool_stats();
  std::printf("pooled span storage:\n"
              "  spans %zu (capacity %zu)\n"
              "  attr slots %zu live / %zu allocated (%zu wasted)\n"
              "  interned names %zu\n",
              pool.spans, pool.span_capacity, pool.attr_entries,
              pool.attr_capacity, pool.attr_wasted, pool.interned_names);

  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary);
    out << obs::chrome_trace_json(tracer) << '\n';
    std::printf("\nwrote %s — open it in chrome://tracing or "
                "https://ui.perfetto.dev\n", argv[1]);
  }
  return 0;
}
