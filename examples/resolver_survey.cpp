// Survey a single (simulated) DoH provider the way §2 does: probe its
// content types, walk TLS versions, inspect its certificate, look up CAA,
// test QUIC and DoT — then print a one-provider feature card.
//
//   $ ./resolver_survey            # surveys Cloudflare
//   $ ./resolver_survey G1         # surveys Google's /resolve service
#include <cstdio>
#include <string>

#include "survey/deployment.hpp"
#include "survey/prober.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;
  const std::string marker = argc > 1 ? argv[1] : "CF";

  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host prober_host(net, "prober");
  survey::ProviderDeployment deployment(net, prober_host,
                                        survey::paper_providers());
  survey::Prober prober(prober_host, deployment);

  const survey::ProviderSpec* spec = nullptr;
  for (const auto& p : survey::paper_providers()) {
    if (p.marker == marker) spec = &p;
  }
  if (spec == nullptr) {
    std::printf("unknown marker '%s' — use one of: ", marker.c_str());
    for (const auto& p : survey::paper_providers()) {
      std::printf("%s ", p.marker.c_str());
    }
    std::printf("\n");
    return 1;
  }

  prober.probe(*spec);
  loop.run();

  const auto& r = prober.result(marker);
  const auto flag = [](bool b) { return b ? "yes" : "no"; };
  std::printf("=== %s (%s) ===\n", spec->name.c_str(), spec->hostname.c_str());
  std::printf("endpoints probed:\n");
  for (const auto& e : spec->endpoints) {
    std::printf("  https://%s%s\n", spec->hostname.c_str(),
                e.url_path.c_str());
  }
  std::printf("application/dns-message : %s\n", flag(r.dns_message));
  std::printf("application/dns-json    : %s\n", flag(r.dns_json));
  for (const auto& [version, ok] : r.tls) {
    std::printf("%-23s : %s\n", tlssim::to_string(version).c_str(), flag(ok));
  }
  std::printf("certificate transparency: %s\n",
              flag(r.certificate_transparency));
  std::printf("OCSP must-staple        : %s\n", flag(r.ocsp_must_staple));
  std::printf("DNS CAA record          : %s\n", flag(r.dns_caa));
  std::printf("QUIC on UDP 443         : %s\n", flag(r.quic));
  std::printf("DNS-over-TLS (853)      : %s\n", flag(r.dns_over_tls));
  return 0;
}
