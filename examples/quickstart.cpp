// Quickstart: the smallest complete dohperf program.
//
// Builds a two-host simulated network, runs a DoH (HTTP/2) resolver on one
// host, resolves a name from the other, and prints the answer along with
// what the resolution cost on the wire.
//
//   $ ./quickstart
#include <cstdio>

#include "core/doh_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "simnet/event_loop.hpp"
#include "simnet/host.hpp"

int main() {
  using namespace dohperf;

  // 1. A virtual network: client and resolver, 10ms apart.
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "laptop");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  // 2. A DoH resolver: RFC 8484 over HTTP/2 over (simulated) TLS 1.3.
  resolver::EngineConfig engine_config;
  engine_config.fixed_address = "192.0.2.53";
  resolver::Engine engine(loop, engine_config);
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  // 3. A DoH client, and one resolution.
  core::DohClientConfig client_config;
  client_config.server_name = "cloudflare-dns.com";
  core::DohClient resolver_client(client, {server.id(), 443}, client_config);

  const auto id = resolver_client.resolve(
      dns::Name::parse("www.example.com"), dns::RType::kA,
      [&](const core::ResolutionResult& result) {
        std::printf("resolved in %.1f ms:\n%s\n",
                    simnet::to_ms(result.resolution_time()),
                    result.response.to_string().c_str());
      });

  // 4. Run the virtual clock until everything settles.
  loop.run();

  // 5. Inspect the cost: how many bytes/packets did that one query take?
  const auto& result = resolver_client.result(id);
  std::printf("cost on the wire: %s\n", result.cost.to_string().c_str());
  std::printf("(a classic UDP exchange would have been ~176 bytes in 2 "
              "packets)\n");
  return 0;
}
