// Microbenchmark for the simulation core itself: raw event-loop
// schedule/fire and schedule/cancel throughput, bytes/sec through a full
// tcp -> tls -> h2 echo path, and fig6-style page-load shard throughput at
// several --jobs values.
//
// Unlike the figure harnesses, the numbers here are wall-clock derived and
// therefore machine-dependent: micro_simcore (like micro_codecs) is exempt
// from the byte-identical-JSON rule. The shard scenarios additionally emit
// a virtual-time digest of the merged results, which MUST be identical
// across --jobs values — the runner merges by shard index, so parallelism
// may never change results, only wall-clock.
//
// This file seeds the BENCH_*.json perf trajectory: run with
//   micro_simcore --json=BENCH_simcore.json
// and diff two snapshots with tools/perf_compare.
#include <algorithm>
#include <chrono>  // detlint: allow(DET001) wall-clock timing is the measurement here
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "browser/page_load.hpp"
#include "obs/bridge.hpp"
#include "browser/vantage.hpp"
#include "browser/web_farm.hpp"
#include "core/udp_client.hpp"
#include "http2/connection.hpp"
#include "resolver/engine.hpp"
#include "resolver/udp_server.hpp"
#include "shard_runner.hpp"
#include "simnet/event_loop.hpp"
#include "simnet/host.hpp"
#include "simnet/network.hpp"
#include "stats/rng.hpp"
#include "tlssim/connection.hpp"
#include "workload/alexa.hpp"

namespace {

using namespace dohperf;

/// Seconds of real time since an arbitrary epoch.
double now_sec() {
  // detlint: allow(DET001) microbenchmark measures real elapsed time
  using clock = std::chrono::steady_clock;
  // detlint: allow(DET001) microbenchmark measures real elapsed time
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// --- event-loop schedule/fire -----------------------------------------------

/// A self-rescheduling timer chain, the shape of RTO/delayed-ack timers and
/// packet-delivery events that dominate real simulations.
struct TimerChain {
  simnet::EventLoop* loop;
  stats::SplitMix64* rng;
  std::uint64_t remaining;

  void fire() {
    if (remaining == 0) return;
    --remaining;
    loop->schedule_in(1 + (rng->next() % 997), [this]() { fire(); });
  }
};

double bench_schedule_fire(std::uint64_t events) {
  simnet::EventLoop loop;
  stats::SplitMix64 rng(42);
  constexpr std::size_t kChains = 64;  // events interleave across timers
  std::vector<TimerChain> chains;
  chains.reserve(kChains);
  for (std::size_t i = 0; i < kChains; ++i) {
    chains.push_back(TimerChain{&loop, &rng, events / kChains});
  }
  const double t0 = now_sec();
  for (auto& c : chains) c.fire();
  loop.run();
  const double elapsed = now_sec() - t0;
  const auto fired = static_cast<double>(loop.executed());
  return fired / elapsed;
}

/// Schedule two, cancel one — the arm/disarm churn of RTO and delayed-ACK
/// timers. Throughput counts scheduled events (fired + cancelled).
double bench_schedule_cancel(std::uint64_t events) {
  simnet::EventLoop loop;
  stats::SplitMix64 rng(43);
  std::uint64_t scheduled = 0;
  struct Churn {
    simnet::EventLoop* loop;
    stats::SplitMix64* rng;
    std::uint64_t* scheduled;
    std::uint64_t remaining;
    simnet::EventId shadow;

    void fire() {
      loop->cancel(shadow);
      if (remaining == 0) return;
      --remaining;
      *scheduled += 2;
      loop->schedule_in(1 + (rng->next() % 499), [this]() { fire(); });
      // The shadow timer never fires: it is re-cancelled on the next tick,
      // like an RTO disarmed by an ACK.
      shadow = loop->schedule_in(100000 + (rng->next() % 499),
                                 []() {});
    }
  };
  constexpr std::size_t kChains = 64;
  std::vector<Churn> chains;
  chains.reserve(kChains);
  for (std::size_t i = 0; i < kChains; ++i) {
    chains.push_back(Churn{&loop, &rng, &scheduled, events / kChains / 2,
                           simnet::EventId{}});
  }
  const double t0 = now_sec();
  for (auto& c : chains) c.fire();
  loop.run();
  const double elapsed = now_sec() - t0;
  return static_cast<double>(scheduled) / elapsed;
}

// --- tcp -> tls -> h2 echo path ---------------------------------------------

struct EchoResult {
  std::uint64_t app_bytes = 0;
  double wall_sec = 0.0;
};

/// Sequential POSTs over one h2-over-TLS-over-TCP connection; the server
/// answers each with `body_bytes` of payload. Exercises the whole layered
/// send/receive path the figures depend on.
EchoResult bench_echo_path(std::size_t requests, std::size_t body_bytes) {
  simnet::EventLoop loop;
  simnet::Network net(loop, 7);
  simnet::Host client(net, "client");
  simnet::Host server(net, "server");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client.id(), server.id(), link);

  tlssim::ServerConfig tls_server_config;
  tls_server_config.alpn_preference = {"h2"};

  std::unique_ptr<http2::Http2Connection> server_conn;
  server.tcp_listen(443, [&](std::shared_ptr<simnet::TcpConnection> c) {
    auto tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(std::move(c)),
        &tls_server_config);
    server_conn = std::make_unique<http2::Http2Connection>(
        std::move(tls), http2::Http2Connection::Role::kServer);
    server_conn->set_request_handler(
        [body_bytes](const http2::H2Message&,
                     http2::Http2Connection::Responder respond) {
          http2::H2Message response;
          response.headers.push_back({":status", "200"});
          response.body = dns::Bytes(body_bytes, 0x5a);
          respond(std::move(response));
        });
  });

  tlssim::ClientConfig tls_client_config;
  tls_client_config.sni = "echo.example";
  tls_client_config.alpn = {"h2"};
  auto client_conn = std::make_unique<http2::Http2Connection>(
      std::make_unique<tlssim::TlsConnection>(
          std::make_unique<simnet::TcpByteStream>(
              client.tcp_connect({server.id(), 443})),
          tls_client_config),
      http2::Http2Connection::Role::kClient);

  EchoResult result;
  std::size_t outstanding = requests;
  std::function<void()> issue = [&]() {
    http2::H2Message request;
    request.headers = {{":method", "POST"},
                       {":scheme", "https"},
                       {":authority", "echo.example"},
                       {":path", "/echo"}};
    request.body = dns::Bytes(100, 0x42);
    client_conn->request(std::move(request),
                         [&](const http2::H2Message& response) {
                           result.app_bytes += response.body.size();
                           if (--outstanding > 0) issue();
                         });
  };

  const double t0 = now_sec();
  issue();
  loop.run();
  result.wall_sec = now_sec() - t0;
  return result;
}

// --- fig6-style page-load shards --------------------------------------------

// detlint: hot-slot
struct alignas(64) ShardOutput {
  std::int64_t digest_us = 0;  ///< virtual-time digest; --jobs invariant
  std::uint64_t loads = 0;
};

/// One shard: a fig6-style UDP-resolver page-load run from one PlanetLab
/// vantage, self-contained and seeded by shard index alone.
ShardOutput run_page_shard(std::size_t shard_index, std::size_t pages) {
  const auto vantage =
      browser::Vantage::planetlab(static_cast<int>(shard_index));
  const std::uint64_t seed = 9000 + shard_index;

  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host browser_host(net, "browser");
  simnet::Host resolver_host(net, "resolver");
  simnet::LinkConfig resolver_link;
  resolver_link.latency = vantage.cloudflare_latency;
  net.connect(browser_host.id(), resolver_host.id(), resolver_link);

  resolver::EngineConfig engine_config;
  engine_config.upstream = vantage.cloud_resolver;
  engine_config.seed = seed ^ 0xabcd;
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(resolver_host, engine, 53);

  core::UdpClientConfig client_config;
  core::UdpResolverClient resolver_client(
      browser_host, simnet::Address{resolver_host.id(), 53}, client_config);

  browser::WebFarmConfig farm_config;
  farm_config.base_latency = vantage.origin_base_latency;
  farm_config.latency_jitter = vantage.origin_latency_jitter;
  farm_config.bandwidth_bps = vantage.access_bandwidth_bps;
  farm_config.seed = seed;
  browser::WebFarm farm(net, browser_host, farm_config);

  workload::AlexaPageModel model;
  ShardOutput out;
  for (std::size_t rank = 1; rank <= pages; ++rank) {
    const auto page = model.page(rank);
    browser::PageLoader loader(browser_host, farm, resolver_client, {});
    bool finished = false;
    browser::PageLoadResult page_result;
    loader.load(page, [&](const browser::PageLoadResult& r) {
      page_result = r;
      finished = true;
    });
    loop.run();
    if (finished && page_result.success) {
      out.digest_us += static_cast<std::int64_t>(page_result.cumulative_dns) +
                       static_cast<std::int64_t>(page_result.onload_time());
      ++out.loads;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t events = bench::flag(argc, argv, "events", 2000000);
  const std::size_t echo_requests =
      bench::flag(argc, argv, "echo-requests", 50);
  const std::size_t echo_bytes =
      bench::flag(argc, argv, "echo-bytes", 262144);
  const std::size_t shards = bench::flag(argc, argv, "shards", 12);
  const std::size_t shard_pages = bench::flag(argc, argv, "shard-pages", 3);

  std::printf("=== micro_simcore: simulation-core throughput ===\n\n");

  bench::BenchReport report("micro_simcore");
  report.params["events"] = static_cast<std::int64_t>(events);
  report.params["echo_requests"] = static_cast<std::int64_t>(echo_requests);
  report.params["echo_bytes"] = static_cast<std::int64_t>(echo_bytes);
  report.params["shards"] = static_cast<std::int64_t>(shards);
  report.params["shard_pages"] = static_cast<std::int64_t>(shard_pages);

  const double fire_rate = bench_schedule_fire(events);
  std::printf("event_loop schedule/fire   : %12.0f events/sec\n", fire_rate);
  report.set("event_loop", "schedule_fire_events_per_sec", fire_rate);

  const double cancel_rate = bench_schedule_cancel(events);
  std::printf("event_loop schedule/cancel : %12.0f events/sec\n",
              cancel_rate);
  report.set("event_loop", "schedule_cancel_events_per_sec", cancel_rate);

  const EchoResult echo = bench_echo_path(echo_requests, echo_bytes);
  const double echo_rate =
      static_cast<double>(echo.app_bytes) / echo.wall_sec;
  std::printf("tcp->tls->h2 echo path     : %12.0f bytes/sec "
              "(%llu app bytes)\n",
              echo_rate, static_cast<unsigned long long>(echo.app_bytes));
  report.set("byte_path", "echo_bytes_per_sec", echo_rate);
  report.set("byte_path", "app_bytes",
             static_cast<std::int64_t>(echo.app_bytes));

  // Shard throughput at several --jobs values. The digest is derived from
  // virtual time only and must be identical at every jobs value. Arena
  // accounting from the last (jobs=8) run lands in the mem.* gauges: the
  // hot path served zero global-heap allocations when mem.global_allocs
  // stays near the per-worker warm-up chunk count.
  std::int64_t reference_digest = 0;
  double serial_rate = 0.0;
  obs::Registry registry;
  simnet::ShardMemoryStats mem_stats;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    mem_stats = simnet::ShardMemoryStats{};
    const double t0 = now_sec();
    const auto outputs = bench::run_sharded<ShardOutput>(
        shards, jobs,
        [shard_pages](std::size_t i) { return run_page_shard(i, shard_pages); },
        &mem_stats);
    const double elapsed = now_sec() - t0;
    std::int64_t digest = 0;
    std::uint64_t loads = 0;
    for (const auto& o : outputs) {
      digest += o.digest_us;
      loads += o.loads;
    }
    if (jobs == 1) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      std::fprintf(stderr,
                   "FATAL: shard digest changed at --jobs %zu "
                   "(%lld != %lld): parallelism leaked into results\n",
                   jobs, static_cast<long long>(digest),
                   static_cast<long long>(reference_digest));
      return 1;
    }
    const double rate = static_cast<double>(shards) / elapsed;
    std::printf("page-load shards (jobs=%zu) : %12.2f shards/sec "
                "(%llu loads, digest %lld us)\n",
                jobs, rate, static_cast<unsigned long long>(loads),
                static_cast<long long>(digest));
    const std::string scenario = "shards/jobs" + std::to_string(jobs);
    report.set(scenario, "shards_per_sec", rate);
    report.set(scenario, "digest_us", digest);
    // Jobs-scaling speedups vs the serial run, for the CI scaling gates
    // (absolute thresholds live in .github/workflows/ci.yml).
    // efficiency_jobsN = speedup / min(N, hardware threads): 1.0 is perfect
    // scaling on this machine, and on 8-way hardware the paper-scale target
    // "jobs8 >= 6x jobs1" is efficiency_jobs8 >= 0.75. Normalising by the
    // thread count keeps the gate meaningful on small CI runners, where a
    // raw 6x is physically impossible.
    if (jobs == 1) {
      serial_rate = rate;
    } else if (serial_rate > 0.0) {
      const double speedup = rate / serial_rate;
      const double capacity = static_cast<double>(
          std::min(jobs, bench::default_jobs()));
      report.set("shards/scaling", "speedup_jobs" + std::to_string(jobs),
                 speedup);
      report.set("shards/scaling", "efficiency_jobs" + std::to_string(jobs),
                 speedup / capacity);
    }
  }

  // Arena accounting for the jobs=8 run (8 workers, one arena each).
  std::printf("\narena: %llu allocs (%llu recycled), %llu chunks / "
              "%llu bytes, %llu huge, %llu global heap hits\n",
              static_cast<unsigned long long>(mem_stats.arena_allocs),
              static_cast<unsigned long long>(mem_stats.freelist_hits),
              static_cast<unsigned long long>(mem_stats.arena_chunks),
              static_cast<unsigned long long>(mem_stats.arena_bytes),
              static_cast<unsigned long long>(mem_stats.huge_allocs),
              static_cast<unsigned long long>(mem_stats.global_allocs));
  obs::publish_arena_stats(registry, mem_stats);
  // Mirror the counters into a scenario so CI's perf_compare can gate on
  // them with dot-paths (gauge names themselves contain dots). All values
  // are allocation counts — deterministic for a given flag set, so gates
  // on them are exact, not statistical.
  report.set("shards/mem", "arena_allocs",
             static_cast<std::int64_t>(mem_stats.arena_allocs));
  report.set("shards/mem", "arena_chunks",
             static_cast<std::int64_t>(mem_stats.arena_chunks));
  report.set("shards/mem", "arena_bytes",
             static_cast<std::int64_t>(mem_stats.arena_bytes));
  report.set("shards/mem", "freelist_hits",
             static_cast<std::int64_t>(mem_stats.freelist_hits));
  report.set("shards/mem", "huge_allocs",
             static_cast<std::int64_t>(mem_stats.huge_allocs));
  report.set("shards/mem", "global_allocs",
             static_cast<std::int64_t>(mem_stats.global_allocs));

  std::printf("\nshard digests identical across jobs values: OK\n");
  report.params["hw_threads"] =
      static_cast<std::int64_t>(bench::default_jobs());
  bench::finish(argc, argv, report, nullptr, &registry);
  return 0;
}
