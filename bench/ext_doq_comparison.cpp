// EXTENSION bench: DNS-over-QUIC (RFC 9250) against the paper's transports.
//
// The paper ends at 2019, probing which providers answer QUIC on UDP 443
// (only Google did). This bench asks the question the paper sets up: what
// does QUIC buy secure DNS? Three comparisons:
//
//  1. Connection-setup latency: QUIC's combined transport+crypto handshake
//     is one RTT vs TCP+TLS1.3's two (and TCP+TLS1.2's three).
//  2. Bytes/packets per resolution, fresh and warm, vs DoT and DoH/2.
//  3. Head-of-line blocking *under packet loss*: with a delayed-query
//     workload all multiplexed transports look alike, but with loss the
//     TCP-based ones serialize recovery across all streams while QUIC
//     retransmits per packet and delivers unaffected streams immediately.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/doh_client.hpp"
#include "core/doq_client.hpp"
#include "core/dot_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/doq_server.hpp"
#include "resolver/dot_server.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct Rig {
  simnet::EventLoop loop;
  simnet::Network net{loop, 11};
  simnet::Host client{net, "client"};
  simnet::Host server{net, "resolver"};
  resolver::Engine engine{loop, {}};
  std::unique_ptr<resolver::DotServer> dot;
  std::unique_ptr<resolver::DohServer> doh;
  std::unique_ptr<resolver::DoqServer> doq;

  explicit Rig(simnet::TimeUs latency, double loss = 0.0,
               resolver::EngineConfig engine_config = {})
      : engine(loop, engine_config) {
    simnet::LinkConfig link;
    link.latency = latency;
    link.loss_rate = loss;
    net.connect(client.id(), server.id(), link);
    const auto chain = tlssim::CertificateChain::cloudflare();
    resolver::DotServerConfig dot_config;
    dot_config.tls.chain = chain;
    dot = std::make_unique<resolver::DotServer>(server, engine, dot_config,
                                                853);
    resolver::DohServerConfig doh_config;
    doh_config.tls.chain = chain;
    doh = std::make_unique<resolver::DohServer>(server, engine, doh_config,
                                                443);
    resolver::DoqServerConfig doq_config;
    doq_config.tls.chain = chain;
    doq = std::make_unique<resolver::DoqServer>(server, engine, doq_config,
                                                8853);
  }

  std::unique_ptr<core::ResolverClient> make_client(
      const std::string& transport) {
    if (transport == "DoT") {
      core::DotClientConfig c;
      c.server_name = "cloudflare-dns.com";
      return std::make_unique<core::DotClient>(
          client, simnet::Address{server.id(), 853}, c);
    }
    if (transport == "DoH/2") {
      core::DohClientConfig c;
      c.server_name = "cloudflare-dns.com";
      return std::make_unique<core::DohClient>(
          client, simnet::Address{server.id(), 443}, c);
    }
    core::DoqClientConfig c;
    c.server_name = "cloudflare-dns.com";
    return std::make_unique<core::DoqClient>(
        client, simnet::Address{server.id(), 8853}, c);
  }
};

void setup_latency(bench::BenchReport& report) {
  std::printf("--- 1. cold-start resolution time (20ms RTT link) ---\n");
  for (const char* transport : {"DoT", "DoH/2", "DoQ"}) {
    Rig rig(simnet::ms(10));
    auto client = rig.make_client(transport);
    simnet::TimeUs cold = 0, warm = 0;
    client->resolve(dns::Name::parse("cold.example.com"), dns::RType::kA,
                    [&](const core::ResolutionResult& r) {
                      cold = r.resolution_time();
                    });
    rig.loop.run();
    client->resolve(dns::Name::parse("warm.example.com"), dns::RType::kA,
                    [&](const core::ResolutionResult& r) {
                      warm = r.resolution_time();
                    });
    rig.loop.run();
    std::printf("%-8s cold=%6.1fms (%d RTTs)   warm=%6.1fms\n", transport,
                simnet::to_ms(cold),
                static_cast<int>(simnet::to_ms(cold) / 20.0 + 0.5),
                simnet::to_ms(warm));
    report.set(transport, "cold_ms", simnet::to_ms(cold));
    report.set(transport, "warm_ms", simnet::to_ms(warm));
  }
}

void per_resolution_cost(std::size_t queries, bench::BenchReport& report) {
  std::printf("\n--- 2. wire cost per warm resolution (%zu queries) ---\n",
              queries);
  workload::UniqueNameGenerator names("example.com", 3);
  const auto name_list = names.generate(queries);

  // DoQ: counters from the QUIC connection.
  {
    Rig rig(simnet::ms(10));
    auto client = rig.make_client("DoQ");
    auto* doq = dynamic_cast<core::DoqClient*>(client.get());
    client->resolve(dns::Name::parse("warmup.example.com"), dns::RType::kA,
                    {});
    rig.loop.run();
    const auto start = *doq->quic_counters();
    for (const auto& n : name_list) {
      client->resolve(n, dns::RType::kA, {});
      rig.loop.run();
    }
    const auto end = *doq->quic_counters();
    const double bytes_per_query =
        static_cast<double>(end.total_wire_bytes() -
                            start.total_wire_bytes()) /
        static_cast<double>(queries);
    const double packets_per_query =
        static_cast<double>(end.total_packets() - start.total_packets()) /
        static_cast<double>(queries);
    std::printf("DoQ      %6.0f B, %4.1f packets per query\n",
                bytes_per_query, packets_per_query);
    report.set("DoQ", "warm_bytes_per_query", bytes_per_query);
    report.set("DoQ", "warm_packets_per_query", packets_per_query);
  }
  // DoH/2 persistent for comparison.
  {
    Rig rig(simnet::ms(10));
    core::DohClientConfig c;
    c.server_name = "cloudflare-dns.com";
    core::DohClient client(rig.client, {rig.server.id(), 443}, c);
    client.resolve(dns::Name::parse("warmup.example.com"), dns::RType::kA,
                   {});
    rig.loop.run();
    std::uint64_t bytes = 0, packets = 0;
    for (const auto& n : name_list) {
      const auto id = client.resolve(n, dns::RType::kA, {});
      rig.loop.run();
      bytes += client.result(id).cost.wire_bytes;
      packets += client.result(id).cost.packets;
    }
    const double bytes_per_query =
        static_cast<double>(bytes) / static_cast<double>(queries);
    const double packets_per_query =
        static_cast<double>(packets) / static_cast<double>(queries);
    std::printf("DoH/2    %6.0f B, %4.1f packets per query\n",
                bytes_per_query, packets_per_query);
    report.set("DoH/2", "warm_bytes_per_query", bytes_per_query);
    report.set("DoH/2", "warm_packets_per_query", packets_per_query);
  }
}

void hol_under_loss(double loss, std::size_t queries,
                    bench::BenchReport& report) {
  std::printf("\n--- 3. resolution times under %.0f%% packet loss "
              "(%zu queries, 20 q/s) ---\n", loss * 100.0, queries);
  for (const char* transport : {"DoT", "DoH/2", "DoQ"}) {
    resolver::EngineConfig engine_config;
    engine_config.upstream.processing = simnet::us(100);
    Rig rig(simnet::ms(10), loss, engine_config);
    auto client = rig.make_client(transport);
    stats::PoissonArrivals arrivals(20.0, 31);
    const auto times = arrivals.arrival_times(queries);
    std::vector<double> res_ms;
    res_ms.resize(queries, -1.0);
    workload::UniqueNameGenerator names("example.com", 5);
    for (std::size_t i = 0; i < queries; ++i) {
      rig.loop.schedule_at(
          simnet::from_sec(times[i]), [&, i, name = names.next()]() {
            client->resolve(name, dns::RType::kA,
                            [&, i](const core::ResolutionResult& r) {
                              if (r.success) {
                                res_ms[i] = simnet::to_ms(r.resolution_time());
                              }
                            });
          });
    }
    rig.loop.run();
    std::vector<double> ok;
    for (const double v : res_ms) {
      if (v >= 0) ok.push_back(v);
    }
    std::printf("%-8s answered=%3zu/%zu med=%7.1fms p90=%8.1fms "
                "p99=%8.1fms\n",
                transport, ok.size(), queries, stats::percentile(ok, 50),
                stats::percentile(ok, 90), stats::percentile(ok, 99));
    report.set(transport, "lossy_answered",
               static_cast<std::int64_t>(ok.size()));
    report.set(transport, "lossy_resolution_ms", bench::box_json(ok));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 200);
  std::printf("=== Extension: DNS-over-QUIC vs the paper's transports ===\n\n");
  bench::BenchReport report("ext_doq_comparison");
  report.params["queries"] = static_cast<std::int64_t>(queries);
  setup_latency(report);
  per_resolution_cost(queries, report);
  hol_under_loss(0.05, queries, report);
  std::printf(
      "\nDoQ completes its handshake a full RTT before DoT/DoH (combined\n"
      "transport+crypto), matches DoH/2's immunity to slow queries, and\n"
      "under loss avoids TCP's cross-stream retransmission stalls — the\n"
      "transport-level head-of-line blocking HTTP/2 cannot escape.\n");
  bench::finish(argc, argv, report);
  return 0;
}
