// Ablation: TLS design choices and connection-setup cost.
//   * TLS 1.2 vs TLS 1.3 (round trips + handshake bytes)
//   * session resumption on/off
//   * certificate size (Cloudflare vs Google chains)
//   * EDNS0 padding (RFC 7830/8467) on message sizes
#include <cstdio>

#include "bench_common.hpp"
#include "core/doh_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct SetupCost {
  double time_ms;
  double wire_bytes;
};

SetupCost fresh_resolution(tlssim::TlsVersion version, bool resume,
                           const tlssim::CertificateChain& chain) {
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(10);
  net.connect(client.id(), server.id(), link);

  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.versions = {tlssim::TlsVersion::kTls12,
                                tlssim::TlsVersion::kTls13};
  server_config.tls.chain = chain;
  resolver::DohServer doh(server, engine, server_config, 443);

  tlssim::SessionCache cache;
  core::DohClientConfig config;
  config.server_name = chain.subject;
  config.persistent = false;
  config.max_tls = version;
  config.session_cache = resume ? &cache : nullptr;

  core::DohClient resolver(client, {server.id(), 443}, config);
  if (resume) {
    // Prime the session cache with one throwaway connection.
    resolver.resolve(dns::Name::parse("warmup.example.com"),
                     dns::RType::kA, {});
    loop.run();
  }
  const auto id = resolver.resolve(dns::Name::parse("query.example.com"),
                                   dns::RType::kA, {});
  loop.run();
  const auto& result = resolver.result(id);
  return {simnet::to_ms(result.resolution_time()),
          static_cast<double>(result.cost.wire_bytes)};
}

}  // namespace

int main(int argc, char** argv) {
  using tlssim::TlsVersion;
  std::printf("=== Ablation: TLS version / resumption / certificate size "
              "===\n");
  std::printf("(fresh DoH connection per query, 10ms one-way link)\n\n");
  std::printf("%-34s %10s %12s\n", "configuration", "time", "wire bytes");

  bench::BenchReport report("ablation_tls");

  const auto cf = tlssim::CertificateChain::cloudflare();
  const auto go = tlssim::CertificateChain::google();
  const auto row = [&report](const char* label, SetupCost c) {
    std::printf("%-34s %8.1fms %10.0f B\n", label, c.time_ms, c.wire_bytes);
    report.set(label, "time_ms", c.time_ms);
    report.set(label, "wire_bytes", c.wire_bytes);
  };
  row("TLS 1.2, full, CF cert",
      fresh_resolution(TlsVersion::kTls12, false, cf));
  row("TLS 1.3, full, CF cert",
      fresh_resolution(TlsVersion::kTls13, false, cf));
  row("TLS 1.2, resumed, CF cert",
      fresh_resolution(TlsVersion::kTls12, true, cf));
  row("TLS 1.3, resumed (PSK), CF cert",
      fresh_resolution(TlsVersion::kTls13, true, cf));
  row("TLS 1.3, full, GO cert",
      fresh_resolution(TlsVersion::kTls13, false, go));
  row("TLS 1.3, resumed (PSK), GO cert",
      fresh_resolution(TlsVersion::kTls13, true, go));

  // --- EDNS0 padding (RFC 7830; RFC 8467 recommends 128-byte blocks for
  // queries). Padding trades bytes for uniformity: all queries look alike.
  std::printf("\n=== Ablation: EDNS0 padding of DoH queries (RFC 8467) "
              "===\n\n");
  // Mixed-length names, like a real browsing corpus (the size side channel
  // only matters when sizes vary).
  std::vector<workload::UniqueNameGenerator> generators;
  for (std::size_t len = 3; len <= 22; ++len) {
    generators.emplace_back("example.com", 9 + len, len);
  }
  std::vector<double> unpadded;
  std::vector<double> padded;
  std::set<std::size_t> unpadded_sizes;
  std::set<std::size_t> padded_sizes;
  for (int i = 0; i < 500; ++i) {
    auto query = dns::Message::make_query(
        0, generators[static_cast<std::size_t>(i) % generators.size()].next());
    unpadded.push_back(static_cast<double>(query.encode().size()));
    unpadded_sizes.insert(query.encode().size());
    query.pad_to_multiple(128);
    padded.push_back(static_cast<double>(query.encode().size()));
    padded_sizes.insert(query.encode().size());
  }
  dohperf::bench::print_box("query size, no padding", unpadded, "B");
  dohperf::bench::print_box("query size, 128B blocks", padded, "B");
  std::printf("\ndistinct sizes observable on the wire: %zu -> %zu "
              "(padding collapses the size side channel)\n",
              unpadded_sizes.size(), padded_sizes.size());
  report.set("padding", "unpadded_bytes", bench::box_json(unpadded));
  report.set("padding", "padded_bytes", bench::box_json(padded));
  report.set("padding", "unpadded_distinct_sizes",
             static_cast<std::int64_t>(unpadded_sizes.size()));
  report.set("padding", "padded_distinct_sizes",
             static_cast<std::int64_t>(padded_sizes.size()));
  bench::finish(argc, argv, report);
  return 0;
}
