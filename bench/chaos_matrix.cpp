// Chaos matrix: the §3 workload (unique names, Poisson arrivals, local
// resolver) replayed under a grid of fault scenarios × transports, reporting
// eventual success rate, resolution-time percentiles and the recovery
// machinery's counters (re-issued queries, reconnects, exhausted budgets).
//
// Scenarios:
//   baseline       unimpaired link and resolver
//   bursty-loss    Gilbert–Elliott loss (mean burst ~3 packets, 50% in-burst)
//   link-outage    the link black-holes every packet for 2s mid-run
//   restart-2s     the resolver crashes (RST on every connection) for 2s
//   stall-10       resolver accepts but never answers 10% of queries
//   servfail-10    resolver answers SERVFAIL for 10% of queries
//   lat-spike      +300ms one-way latency for 2s mid-run
//   throttle       link throttled to 64 kbit/s for 3s mid-run
//   link-flap      client interface hard-down for 2s mid-run, back up with
//                  a new address (old 5-tuples black-holed)
//   retry-storm    resolver stalls 25% of queries behind a RecursiveTier
//                  whose server-side retry budget (10% of fresh traffic)
//                  detects the resulting client retransmissions/re-issues
//                  and sheds the excess REFUSED before it snowballs
//
// Every random draw (arrivals, names, loss, faults, backoff jitter) comes
// from seeded generators over virtual time, so the whole table is a pure
// function of --seed: the harness runs the grid twice and verifies the two
// renderings are byte-identical before printing.
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/recursive_tier.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/fault.hpp"
#include "simnet/netchange.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct Scenario {
  std::string name;
  resolver::FaultPolicy engine_faults{};
  simnet::GilbertElliott gilbert_elliott{};
  simnet::FaultSchedule link_faults{};
  simnet::TimeUs restart_at = 0;  ///< 0 = no server restart
  simnet::TimeUs restart_downtime = 0;
  simnet::TimeUs flap_at = 0;  ///< 0 = no client interface flap
  simnet::TimeUs flap_down = 0;
  /// Put a RecursiveTier (with a server-side retry budget) between the
  /// front-ends and the engine — the retry-storm scenario.
  bool tier_storm = false;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;

  all.push_back({.name = "baseline"});

  Scenario bursty{.name = "bursty-loss"};
  bursty.gilbert_elliott.enabled = true;
  bursty.gilbert_elliott.p_good_to_bad = 0.02;
  bursty.gilbert_elliott.p_bad_to_good = 0.3;
  bursty.gilbert_elliott.loss_good = 0.0;
  bursty.gilbert_elliott.loss_bad = 0.5;
  all.push_back(std::move(bursty));

  Scenario outage{.name = "link-outage"};
  outage.link_faults.add_outage(simnet::seconds(4), simnet::seconds(2));
  all.push_back(std::move(outage));

  Scenario restart{.name = "restart-2s"};
  restart.restart_at = simnet::seconds(4);
  restart.restart_downtime = simnet::seconds(2);
  all.push_back(std::move(restart));

  Scenario stall{.name = "stall-10"};
  stall.engine_faults.stall_rate = 0.10;
  all.push_back(std::move(stall));

  Scenario servfail{.name = "servfail-10"};
  servfail.engine_faults.servfail_rate = 0.10;
  all.push_back(std::move(servfail));

  Scenario spike{.name = "lat-spike"};
  spike.link_faults.add_latency_spike(simnet::seconds(4), simnet::seconds(2),
                                      simnet::ms(300));
  all.push_back(std::move(spike));

  Scenario throttle{.name = "throttle"};
  throttle.link_faults.add_throttle(simnet::seconds(4), simnet::seconds(3),
                                    /*bps=*/64'000.0);
  all.push_back(std::move(throttle));

  Scenario flap{.name = "link-flap"};
  flap.flap_at = simnet::seconds(4);
  flap.flap_down = simnet::seconds(2);
  all.push_back(std::move(flap));

  Scenario storm{.name = "retry-storm"};
  storm.engine_faults.stall_rate = 0.25;
  storm.tier_storm = true;
  all.push_back(std::move(storm));

  return all;
}

struct RunMetrics {
  std::size_t queries = 0;
  std::size_t ok = 0;          ///< success with NOERROR
  std::size_t rcode_fail = 0;  ///< answered, but SERVFAIL/REFUSED
  std::vector<double> resolution_ms;
  core::RetryStats retry;
  std::uint64_t udp_final_timeouts = 0;
  // Tier-side retry-budget accounting (retry-storm cells only).
  std::uint64_t tier_retries_detected = 0;
  std::uint64_t tier_shed_retry_budget = 0;
  std::uint64_t tier_upstream_timeouts = 0;
};

/// One cell of the matrix: `transport` in {udp, dot, h1, h2}.
RunMetrics run(const Scenario& scenario, const std::string& transport,
               std::uint64_t seed, std::size_t queries, double rate_qps,
               obs::Registry* registry = nullptr) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");

  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  link.gilbert_elliott = scenario.gilbert_elliott;
  net.connect(client.id(), server.id(), link);
  if (!scenario.link_faults.empty()) {
    net.inject_faults(client.id(), server.id(), scenario.link_faults);
  }
  if (scenario.flap_at > 0) {
    // Interface hard-down, then back up with a new address. The rebind is
    // added first so at the up instant the host is already re-addressed
    // (every pre-flap 5-tuple stays black-holed).
    simnet::NetworkChangeSchedule schedule;
    schedule.add_rebind(scenario.flap_at + scenario.flap_down,
                        /*rst_old_flows=*/false);
    schedule.add_flap(scenario.flap_at, scenario.flap_down);
    simnet::apply_network_changes(client, server.id(), schedule);
  }

  const obs::SpanContext obs{nullptr, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  engine_config.upstream.processing = simnet::us(50);
  engine_config.faults = scenario.engine_faults;
  engine_config.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  resolver::Engine engine(loop, engine_config);

  // The retry-storm cells interpose the shared tier: a stalled back-end
  // slot is reclaimed (SERVFAIL) after 3s — past every client timeout, so
  // clients retransmit/re-issue first and the tier's budget must account
  // for those retries server-side. Fresh traffic at 10 q/s deposits ~1
  // retry/s of budget; 25% stalls demand several times that, so the budget
  // drains and the excess is shed REFUSED (terminal for every client).
  std::unique_ptr<resolver::RecursiveTier> tier;
  resolver::QueryHandler* handler = &engine;
  if (scenario.tier_storm) {
    resolver::TierConfig tier_config;
    tier_config.obs = obs;
    tier_config.workers = 16;  // stalled slots park for 3s; keep headroom
    tier_config.service_timeout = simnet::seconds(3);
    tier_config.retry_budget_enabled = true;
    tier_config.retry_ratio_permille = 100;
    tier_config.retry_reserve_milli = 3000;
    tier_config.retry_cap_milli = 50000;
    tier_config.retry_window = simnet::seconds(4);
    tier = std::make_unique<resolver::RecursiveTier>(loop, engine,
                                                     tier_config);
    handler = tier.get();
  }

  resolver::UdpServer udp_server(server, *handler, 53);
  resolver::DotServer dot_server(server, *handler, {}, 853);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::generic("local.resolver");
  resolver::DohServer doh_server(server, *handler, doh_config, 443);

  if (scenario.restart_at > 0) {
    loop.schedule_at(scenario.restart_at, [&]() {
      udp_server.restart(scenario.restart_downtime);
      dot_server.restart(scenario.restart_downtime);
      doh_server.restart(scenario.restart_downtime);
    });
  }

  // The recovery knobs under test: an 8-retry budget with 100ms..1s
  // exponential backoff spans >5s of cumulative waiting — comfortably past
  // the 2s outages — and a 2s per-query timeout rescues stalled exchanges.
  core::RetryPolicy retry;
  retry.max_retries = 8;
  retry.backoff_initial = simnet::ms(100);
  retry.backoff_max = simnet::seconds(1);
  retry.query_timeout = simnet::seconds(2);
  retry.seed = seed ^ 0xbf58476d1ce4e5b9ULL;

  std::unique_ptr<core::ResolverClient> stub;
  core::DohClient* doh = nullptr;
  core::DotClient* dot = nullptr;
  core::UdpResolverClient* udp = nullptr;
  if (transport == "udp") {
    core::UdpClientConfig config;
    config.obs = obs;
    config.timeout = simnet::seconds(1);
    config.max_retries = 8;
    auto c = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 53}, config);
    udp = c.get();
    stub = std::move(c);
  } else if (transport == "dot") {
    core::DotClientConfig config;
    config.obs = obs;
    config.server_name = "local.resolver";
    config.retry = retry;
    auto c = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853}, config);
    dot = c.get();
    stub = std::move(c);
  } else {
    core::DohClientConfig config;
    config.obs = obs;
    config.server_name = "local.resolver";
    config.http_version = transport == "h1" ? core::HttpVersion::kHttp1
                                            : core::HttpVersion::kHttp2;
    config.h1_pipelining = true;
    config.retry = retry;
    auto c = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443}, config);
    doh = c.get();
    stub = std::move(c);
  }

  workload::UniqueNameGenerator names("example.com", seed ^ 77);
  stats::PoissonArrivals arrivals(rate_qps, seed ^ 13);
  const auto times = arrivals.arrival_times(queries);

  std::vector<std::uint64_t> ids(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const dns::Name name = names.next();
    loop.schedule_at(simnet::from_sec(times[i]), [&, i, name]() {
      ids[i] = stub->resolve(name, dns::RType::kA, {});
    });
  }
  loop.run();

  RunMetrics m;
  m.queries = queries;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto& r = stub->result(ids[i]);
    const bool noerror =
        r.success && r.response.flags.rcode == dns::Rcode::kNoError;
    if (noerror) {
      ++m.ok;
      m.resolution_ms.push_back(
          static_cast<double>(r.resolution_time()) / 1e3);
    } else if (r.success) {
      ++m.rcode_fail;
    }
  }
  if (doh != nullptr) m.retry = doh->retry_stats();
  if (dot != nullptr) m.retry = dot->retry_stats();
  if (udp != nullptr) m.udp_final_timeouts = udp->timeouts();
  if (tier != nullptr) {
    m.tier_retries_detected = tier->stats().retries_detected;
    m.tier_shed_retry_budget = tier->stats().shed_retry_budget;
    m.tier_upstream_timeouts = tier->stats().upstream_timeouts;
  }
  return m;
}

constexpr std::array<const char*, 4> kTransports = {"udp", "dot", "h1", "h2"};

/// One cell of the grid plus its private metrics registry (merged into the
/// global registry in cell order, so the merged result is --jobs-invariant).
// detlint: hot-slot
struct alignas(64) Cell {
  RunMetrics metrics;
  obs::Registry registry;
};

/// Run the full scenario x transport grid, one shard per cell. Every cell
/// builds an isolated simulation seeded only by (seed, scenario, transport),
/// so cells parallelize without sharing any mutable state.
std::vector<Cell> run_grid(std::uint64_t seed, std::size_t queries,
                           double rate_qps, std::size_t jobs,
                           bool with_registry) {
  const auto grid = scenarios();
  return bench::run_sharded<Cell>(
      grid.size() * kTransports.size(), jobs, [&](std::size_t i) {
        Cell cell;
        cell.metrics = run(grid[i / kTransports.size()],
                           kTransports[i % kTransports.size()], seed, queries,
                           rate_qps, with_registry ? &cell.registry : nullptr);
        return cell;
      });
}

std::string render_matrix(const std::vector<Cell>& cells,
                          bench::BenchReport* json_report = nullptr) {
  stats::TextTable table;
  table.add_row({"scenario", "transport", "ok", "rcode-fail", "success%",
                 "med(ms)", "p95(ms)", "max(ms)", "retries", "reconnects",
                 "timeouts", "exhausted"});
  std::size_t cell_index = 0;
  for (const auto& scenario : scenarios()) {
    for (const char* transport : kTransports) {
      const RunMetrics& m = cells[cell_index++].metrics;
      const double pct =
          m.queries == 0 ? 0.0
                         : 100.0 * static_cast<double>(m.ok) /
                               static_cast<double>(m.queries);
      const std::uint64_t timeouts =
          m.udp_final_timeouts + m.retry.query_timeouts;
      // percentile() requires a non-empty sample; a cell with zero
      // successful resolutions (e.g. --queries=0) has no latencies.
      const auto pctl = [&](double p) {
        return m.resolution_ms.empty()
                   ? std::string("-")
                   : stats::format_double(stats::percentile(m.resolution_ms, p),
                                          1);
      };
      table.add_row(
          {scenario.name, transport, std::to_string(m.ok),
           std::to_string(m.rcode_fail), stats::format_double(pct, 1),
           pctl(50), pctl(95), pctl(100),
           std::to_string(m.retry.retried_queries),
           std::to_string(m.retry.reconnects), std::to_string(timeouts),
           std::to_string(m.retry.budget_exhausted)});
      if (json_report != nullptr) {
        const std::string key = scenario.name + "/" + transport;
        json_report->set(key, "ok", static_cast<std::int64_t>(m.ok));
        json_report->set(key, "rcode_fail",
                         static_cast<std::int64_t>(m.rcode_fail));
        json_report->set(key, "success_pct", pct);
        json_report->set(key, "resolution_ms",
                         bench::box_json(m.resolution_ms));
        json_report->set(key, "retries", static_cast<std::int64_t>(
                                             m.retry.retried_queries));
        json_report->set(key, "reconnects",
                         static_cast<std::int64_t>(m.retry.reconnects));
        json_report->set(key, "timeouts",
                         static_cast<std::int64_t>(timeouts));
        json_report->set(key, "budget_exhausted",
                         static_cast<std::int64_t>(m.retry.budget_exhausted));
        json_report->set(key, "tier_retries_detected",
                         static_cast<std::int64_t>(m.tier_retries_detected));
        json_report->set(key, "tier_shed_retry_budget",
                         static_cast<std::int64_t>(m.tier_shed_retry_budget));
        json_report->set(key, "tier_upstream_timeouts",
                         static_cast<std::int64_t>(m.tier_upstream_timeouts));
      }
    }
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 100);
  const std::uint64_t seed = bench::flag(argc, argv, "seed", 5);
  const std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());
  const double rate_qps = 10.0;

  std::printf("=== Chaos matrix: fault scenarios x DNS transports ===\n");
  std::printf("(%zu unique names, Poisson %.0f q/s, seed %llu; impairments "
              "strike 4s into the run)\n\n",
              queries, rate_qps,
              static_cast<unsigned long long>(seed));

  obs::Registry registry;
  bench::BenchReport json_report("chaos_matrix");
  json_report.params["queries"] = static_cast<std::int64_t>(queries);
  json_report.params["seed"] = static_cast<std::int64_t>(seed);

  const auto cells = run_grid(seed, queries, rate_qps, jobs, true);
  for (const auto& cell : cells) registry.merge_from(cell.registry);
  const std::string first = render_matrix(cells, &json_report);
  // Second full grid run for the determinism check (no registry: metric
  // collection must not influence results).
  const std::string second =
      render_matrix(run_grid(seed, queries, rate_qps, jobs, false));
  std::fputs(first.c_str(), stdout);
  std::printf("\ndeterminism check (two full grid runs, same seed): %s\n",
              first == second ? "PASS - byte-identical" : "FAIL");

  // The headline robustness claim: through a 2s resolver outage — or a 2s
  // interface flap that comes back on a new address — the reconnecting
  // connection-oriented clients still answer everything eventually, without
  // blowing any per-query retry budget. The grid cells already hold these
  // runs; index back into them.
  bool recovered = true;
  const auto grid = scenarios();
  for (std::size_t s = 0; s < grid.size(); ++s) {
    const auto& scenario = grid[s];
    if (scenario.restart_at == 0 && scenario.flap_at == 0) continue;
    for (const char* transport : {"dot", "h1", "h2"}) {
      const std::size_t t = static_cast<std::size_t>(
          std::find(kTransports.begin(), kTransports.end(),
                    std::string_view(transport)) -
          kTransports.begin());
      const RunMetrics& m = cells[s * kTransports.size() + t].metrics;
      const double pct =
          m.queries == 0 ? 100.0
                         : 100.0 * static_cast<double>(m.ok) /
                               static_cast<double>(m.queries);
      if (pct < 99.0 || m.retry.budget_exhausted != 0) {
        std::printf("recovery check FAIL: %s/%s success=%.1f%% "
                    "budget_exhausted=%llu\n",
                    scenario.name.c_str(), transport, pct,
                    static_cast<unsigned long long>(
                        m.retry.budget_exhausted));
        recovered = false;
      }
    }
  }
  std::printf("recovery check (>=99%% success through restart-2s and "
              "link-flap, budget intact): %s\n",
              recovered ? "PASS" : "FAIL");

  // The retry-storm claim, end to end: in every retry-storm cell the tier
  // detected the client retransmissions/re-issues, and the drained budget
  // actually shed some of them (summed across transports).
  bool storm_ok = true;
  std::uint64_t storm_sheds = 0;
  for (std::size_t s = 0; s < grid.size(); ++s) {
    if (!grid[s].tier_storm) continue;
    for (std::size_t t = 0; t < kTransports.size(); ++t) {
      const RunMetrics& m = cells[s * kTransports.size() + t].metrics;
      storm_sheds += m.tier_shed_retry_budget;
      if (m.tier_retries_detected == 0) {
        std::printf("storm check FAIL: %s/%s detected no retries\n",
                    grid[s].name.c_str(), kTransports[t]);
        storm_ok = false;
      }
    }
  }
  storm_ok = storm_ok && storm_sheds > 0;
  std::printf("storm check (tier detects retries on every transport, "
              "budget sheds the excess): %s\n",
              storm_ok ? "PASS" : "FAIL");
  json_report.set("checks", "determinism",
                  std::string(first == second ? "PASS" : "FAIL"));
  json_report.set("checks", "recovery",
                  std::string(recovered ? "PASS" : "FAIL"));
  json_report.set("checks", "storm",
                  std::string(storm_ok ? "PASS" : "FAIL"));
  bench::finish(argc, argv, json_report, nullptr, &registry);
  return first == second && recovered && storm_ok ? 0 : 1;
}
