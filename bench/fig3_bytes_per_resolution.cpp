// Figure 3: total bytes per resolution across the six §4 scenarios.
//
// Paper medians: UDP 182 B; fresh-connection DoH 5,737 B (Cloudflare) and
// 6,941 B (Google) — >30x UDP; persistent DoH 864 B (CF) / 1,203 B (GO) —
// still >4x UDP. Google exceeds Cloudflare because its certificate chain is
// larger (3,101 B vs 1,960 B). Whiskers span the full range.
#include <cstdio>

#include "bench_common.hpp"
#include "resolution_cost.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;
  const std::size_t names = bench::flag(argc, argv, "names", 2000);
  const bool want_trace = !bench::flag_str(argc, argv, "trace").empty();

  std::printf("=== Figure 3: total bytes per DNS resolution (%zu names) "
              "===\n\n", names);

  obs::Tracer tracer;
  obs::Registry registry;
  const auto scenarios = bench::run_all_scenarios(
      names, want_trace ? &tracer : nullptr, &registry);
  bench::BenchReport report("fig3_bytes_per_resolution");
  report.params["names"] = static_cast<std::int64_t>(names);

  double udp_median = 0.0;
  for (const auto& scenario : scenarios) {
    std::vector<double> bytes;
    for (const auto& c : scenario.costs) {
      bytes.push_back(static_cast<double>(c.wire_bytes));
    }
    bench::print_box(scenario.label, bytes, "bytes");
    report.set(scenario.label, "wire_bytes", bench::box_json(bytes));
    if (scenario.label == "U/CF") udp_median = stats::median(bytes);
  }

  std::printf("\nRatios vs UDP median (%0.0f B):\n", udp_median);
  for (const auto& scenario : scenarios) {
    std::vector<double> bytes;
    for (const auto& c : scenario.costs) {
      bytes.push_back(static_cast<double>(c.wire_bytes));
    }
    std::printf("  %-8s %.1fx\n", scenario.label.c_str(),
                stats::median(bytes) / udp_median);
  }
  std::printf("\nPaper reference medians: U=182B  H/CF=5737B  H/GO=6941B  "
              "HP/CF=864B  HP/GO=1203B\n");
  bench::finish(argc, argv, report, &tracer, &registry);
  return 0;
}
