// Figure 5: per-layer overhead breakdown for DNS-over-HTTPS/2 resolutions —
// HTTP body, HTTP headers, HTTP/2 management frames, TLS, TCP — for
// Cloudflare and Google, non-persistent and persistent.
//
// Paper findings: persistent connections shrink Hdr (HPACK differential
// headers) and Mgmt (SETTINGS/WINDOW_UPDATE amortized); non-persistent TLS
// is dominated by the certificate; even persistent TLS and TCP overheads
// each rival the size of the DNS payload itself.
#include <cstdio>

#include "bench_common.hpp"
#include "resolution_cost.hpp"

namespace {

using namespace dohperf;

void breakdown(const bench::ScenarioCosts& scenario,
               bench::BenchReport& report) {
  std::printf("--- %s ---\n", scenario.label.c_str());
  const auto layer = [&](const char* name, const char* metric, auto getter) {
    std::vector<double> xs;
    for (const auto& c : scenario.costs) {
      xs.push_back(static_cast<double>(getter(c)));
    }
    bench::print_box(name, xs, "B");
    report.set(scenario.label, metric, bench::box_json(xs));
  };
  layer("Body (DNS payload)", "http_body_bytes",
        [](const core::CostReport& c) { return c.http_body_bytes; });
  layer("Hdr  (HTTP headers)", "http_header_bytes",
        [](const core::CostReport& c) { return c.http_header_bytes; });
  layer("Mgmt (h2 frames)", "http_mgmt_bytes",
        [](const core::CostReport& c) { return c.http_mgmt_bytes; });
  layer("TLS", "tls_overhead_bytes",
        [](const core::CostReport& c) { return c.tls_overhead_bytes; });
  layer("TCP", "tcp_overhead_bytes",
        [](const core::CostReport& c) { return c.tcp_overhead_bytes; });
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t names = bench::flag(argc, argv, "names", 1500);
  const bool want_trace = !bench::flag_str(argc, argv, "trace").empty();
  const auto corpus = bench::corpus_names(names);

  std::printf("=== Figure 5: DoH/2 per-layer overhead per resolution (%zu "
              "names) ===\n\n", names);

  obs::Tracer tracer;
  obs::Registry registry;
  obs::Tracer* tp = want_trace ? &tracer : nullptr;
  bench::BenchReport report("fig5_overhead_breakdown");
  report.params["names"] = static_cast<std::int64_t>(names);

  breakdown(bench::run_scenario("Cloudflare (fresh conn)", "H", "CF", corpus,
                                tp, &registry), report);
  breakdown(bench::run_scenario("Cloudflare (persistent)", "HP", "CF", corpus,
                                tp, &registry), report);
  breakdown(bench::run_scenario("Google (fresh conn)", "H", "GO", corpus,
                                tp, &registry), report);
  breakdown(bench::run_scenario("Google (persistent)", "HP", "GO", corpus,
                                tp, &registry), report);

  std::printf(
      "Expected shape (paper): persistent runs shrink Hdr (differential\n"
      "headers) and Mgmt; non-persistent TLS is certificate-dominated\n"
      "(Google > Cloudflare); persistent-median TLS and TCP each remain\n"
      "comparable to the DNS payload itself.\n");
  bench::finish(argc, argv, report, &tracer, &registry);
  return 0;
}
