// Figure 1: CDF of the number of DNS queries required to retrieve all
// embedded objects for each of the top 100k Alexa sites.
//
// Paper reference points: ~50% of sites require at least 20 queries; the
// tail extends past 150. Corpus-wide (§4): 2,178,235 queries / 281,414
// unique names over 100k pages; the top-15 names draw ~25% of queries.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "workload/alexa.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;
  const std::size_t pages = bench::flag(argc, argv, "pages", 100000);
  const std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());

  std::printf("=== Figure 1: DNS queries per page (Alexa top %zu) ===\n\n",
              pages);

  // Pages are a pure function of rank, so the corpus scan shards into
  // disjoint rank ranges; merging shards in rank order reproduces the
  // serial corpus_stats() byte for byte at any --jobs value.
  constexpr std::size_t kRanksPerShard = 4096;
  const std::size_t shard_count =
      std::max<std::size_t>(1, (pages + kRanksPerShard - 1) / kRanksPerShard);
  auto shards = bench::run_sharded<workload::AlexaPageModel::CorpusShard>(
      shard_count, jobs, [&](std::size_t i) {
        workload::AlexaPageModel shard_model;  // each shard owns its model
        const std::size_t lo = 1 + i * kRanksPerShard;
        const std::size_t hi = std::min(pages, lo + kRanksPerShard - 1);
        return shard_model.corpus_shard(lo, hi);
      });
  const auto stats =
      workload::AlexaPageModel::merge_corpus_shards(std::move(shards));

  stats::Cdf cdf;
  for (const auto q : stats.queries_per_page) {
    cdf.add(static_cast<double>(q));
  }

  std::printf("CDF of queries per page:\n");
  std::printf("  %-10s %-8s\n", "queries", "CDF");
  for (const double x : {1.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0,
                         150.0, 200.0, 250.0}) {
    std::printf("  %-10.0f %-8.3f\n", x, cdf.at(x));
  }

  std::vector<double> curve;
  for (const auto& [x, y] : cdf.curve(0, 260, 60)) curve.push_back(y);
  std::printf("\n  0 %s 260 queries\n\n", stats::ascii_sparkline(curve).c_str());

  std::printf("Corpus statistics (paper: 2,178,235 queries, 281,414 unique "
              "names at 100k pages):\n");
  std::printf("  total queries          : %llu\n",
              static_cast<unsigned long long>(stats.total_queries));
  std::printf("  unique domain names    : %llu\n",
              static_cast<unsigned long long>(stats.unique_domains));
  std::printf("  top-15 name query share: %.1f%%  (paper: ~25%%)\n",
              stats.top15_query_share * 100.0);
  std::printf("  pages needing >=20 q   : %.1f%%  (paper: ~50%%)\n",
              (1.0 - cdf.at(19.999)) * 100.0);
  std::printf("  median queries per page: %.0f\n", cdf.quantile(0.5));

  bench::BenchReport report("fig1_queries_per_page");
  report.params["pages"] = static_cast<std::int64_t>(pages);
  report.set("corpus", "queries_per_page", bench::cdf_json(cdf));
  report.set("corpus", "total_queries",
             static_cast<std::int64_t>(stats.total_queries));
  report.set("corpus", "unique_domains",
             static_cast<std::int64_t>(stats.unique_domains));
  report.set("corpus", "top15_query_share", stats.top15_query_share);
  bench::finish(argc, argv, report);
  return 0;
}
