// Table 1: the DoH resolver landscape — providers, service URLs, markers.
// Also reports the path-diversity observation of §2 (four distinct URL
// paths across nine providers).
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "survey/report.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;
  std::printf("=== Table 1: Compared DoH resolvers ===\n\n");
  const auto& providers = survey::paper_providers();
  std::printf("%s\n", survey::render_table1(providers).c_str());

  std::set<std::string> paths;
  for (const auto& p : providers) {
    for (const auto& e : p.endpoints) paths.insert(e.url_path);
  }
  std::printf("Distinct URL paths in use: %zu (paper: 4 — /, /resolve, "
              "/dns-query, /family-filter)\n",
              paths.size());
  for (const auto& path : paths) std::printf("  %s\n", path.c_str());

  bench::BenchReport report("table1_landscape");
  report.set("landscape", "providers",
             static_cast<std::int64_t>(providers.size()));
  report.set("landscape", "distinct_url_paths",
             static_cast<std::int64_t>(paths.size()));
  bench::finish(argc, argv, report);
  return 0;
}
