// Deterministic shard runner: fans independent simulations across a small
// thread pool and merges results in shard-index order.
//
// Each shard must be self-contained — its own EventLoop, Network, hosts and
// RNGs, seeded exactly as the serial code would seed them — so shards share
// no mutable state and the per-shard results are a pure function of the
// shard index. Because results are merged by index (never by completion
// order), a bench's output is byte-identical at any --jobs value; the knob
// affects wall-clock only. Serial execution (jobs <= 1) runs the shard
// functor inline on the calling thread.
//
// Memory: every worker (and the serial path) installs a private
// simnet::ShardMemory behind the replaced operator new (arena_hooks.cpp,
// linked into every bench), so a shard's millions of short-lived
// allocations never touch the global heap after warm-up — that global
// allocator contention was what made `--jobs` scale negatively before.
// Result slots are placement-constructed inside the worker that ran the
// shard (first-touch: page placement follows the worker, and the spawning
// thread never pre-faults them the way `std::vector<Result>(n)` did).
// Shard results legally outlive their worker's arena: blocks escape with a
// routing header and the orphaned arena self-destructs when the last one
// is freed. In binaries without the hooks the scopes are inert and
// behaviour is unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <new>
#include <string>
#include <thread>  // detlint: allow(DET004) shard fan-out; shards share no mutable state
#include <utility>
#include <vector>

#include "simnet/arena.hpp"

namespace dohperf::bench {

/// All hardware threads, for benches whose default workload is sized for
/// parallel execution (fig6). Affects wall-clock only — results are merged
/// by shard index, so output is identical at any jobs value.
inline std::size_t default_jobs() {
  // detlint: allow(DET004) thread count changes speed, never results
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Parse the standard `--jobs=N` / `--jobs N` flag (default: serial).
inline std::size_t jobs_flag(int argc, char** argv,
                             std::size_t fallback = 1) {
  const std::string prefix = "--jobs=";
  const std::string bare = "--jobs";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
    if (arg == bare && i + 1 < argc) {
      return static_cast<std::size_t>(
          std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

/// Run `shard_count` independent shards, `jobs` at a time, and return their
/// results ordered by shard index. `shard_fn(index)` must not touch state
/// shared with other shards. With jobs <= 1 everything runs inline on the
/// calling thread; results (and therefore any JSON derived from them) are
/// identical either way. If shards throw, the exception from the
/// lowest-indexed failing shard is rethrown after all workers finish.
/// When `mem` is non-null, per-worker arena accounting is accumulated into
/// it (all zeros in binaries without the allocator hooks).
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t shard_count, std::size_t jobs,
                                Fn&& shard_fn,
                                simnet::ShardMemoryStats* mem = nullptr) {
  std::vector<Result> results;
  if (shard_count == 0) return results;
  // The merged vector's own buffer is allocated before any arena scope is
  // active: it outlives every shard, so it belongs to the global heap.
  results.reserve(shard_count);

  if (jobs <= 1) {
    simnet::ShardMemory* arena = simnet::ShardMemory::create();
    {
      simnet::MemoryScope scope(*arena);
      const std::uint64_t g0 = simnet::scope_global_allocs();
      for (std::size_t i = 0; i < shard_count; ++i) {
        results.push_back(shard_fn(i));
      }
      if (mem != nullptr) {
        simnet::ShardMemoryStats s = arena->stats();
        s.global_allocs = simnet::scope_global_allocs() - g0;
        mem->accumulate(s);
      }
    }
    arena->release();
    return results;
  }

  if (jobs > shard_count) jobs = shard_count;
  // Each worker writes only its own shard's error/done slot, but adjacent
  // 8-byte entries would share a cache line; pad each slot to a full line,
  // same as the result types themselves (alignas(64)).
  struct alignas(64) ErrorSlot {
    std::exception_ptr error;
  };
  std::vector<ErrorSlot> errors(shard_count);
  struct alignas(64) DoneSlot {
    bool constructed = false;
  };
  std::vector<DoneSlot> done(shard_count);
  // Keep the work-distribution counter on its own cache line too, so
  // fetch_add traffic does not invalidate the first shard's slots.
  struct alignas(64) NextShard {
    std::atomic<std::size_t> value{0};
  };
  NextShard next;

  // Result slots are raw, default-initialised bytes: the spawning thread
  // allocates but never writes them, so first touch (and page placement)
  // happens in the worker that placement-constructs the shard's result.
  struct alignas(64) Slot {
    Result value;
  };
  std::unique_ptr<std::byte[]> raw_slots(
      // detlint: allow(HYG002) raw new[] keeps slots default-initialised; make_unique would value-init and first-touch every page on the spawning thread
      new std::byte[sizeof(Slot) * shard_count + alignof(Slot)]);
  std::byte* slot_base = raw_slots.get();
  const auto misalign =
      // detlint: allow(DET005) address used only for alignment math, never output
      reinterpret_cast<std::uintptr_t>(slot_base) % alignof(Slot);
  if (misalign != 0) slot_base += alignof(Slot) - misalign;
  const auto slot_at = [slot_base](std::size_t i) {
    return reinterpret_cast<Slot*>(slot_base + i * sizeof(Slot));
  };

  struct alignas(64) WorkerMem {
    simnet::ShardMemoryStats stats;
  };
  std::vector<WorkerMem> worker_mem(jobs);

  const auto worker = [&](std::size_t w) {
    simnet::ShardMemory* arena = simnet::ShardMemory::create();
    {
      simnet::MemoryScope scope(*arena);
      const std::uint64_t g0 = simnet::scope_global_allocs();
      for (;;) {
        const std::size_t i =
            next.value.fetch_add(1, std::memory_order_relaxed);
        if (i >= shard_count) break;
        try {
          // detlint: allow(HYG002) placement-new into the worker's first-touched slot; destroyed after the join
          ::new (slot_at(i)) Slot{shard_fn(i)};
          done[i].constructed = true;
        } catch (...) {
          errors[i].error = std::current_exception();
        }
      }
      worker_mem[w].stats = arena->stats();
      worker_mem[w].stats.global_allocs = simnet::scope_global_allocs() - g0;
    }
    arena->release();
  };

  // detlint: allow(DET004) worker pool over independent shards (see header comment)
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) {
    // detlint: allow(DET004) worker pool over independent shards
    pool.emplace_back(worker, t);
  }
  for (auto& t : pool) t.join();

  bool failed = false;
  for (const auto& e : errors) {
    if (e.error) failed = true;
  }
  // Merge by index on the spawning thread. Moves only — no allocation, so
  // escaped arena blocks keep their worker-local placement.
  for (std::size_t i = 0; i < shard_count; ++i) {
    Slot* slot = slot_at(i);
    if (done[i].constructed) {
      if (!failed) results.push_back(std::move(slot->value));
      slot->~Slot();
    }
  }
  if (mem != nullptr) {
    for (const auto& wm : worker_mem) mem->accumulate(wm.stats);
  }
  // Deterministic error propagation: lowest shard index wins.
  for (const auto& e : errors) {
    if (e.error) std::rethrow_exception(e.error);
  }
  return results;
}

}  // namespace dohperf::bench
