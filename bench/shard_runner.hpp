// Deterministic shard runner: fans independent simulations across a small
// thread pool and merges results in shard-index order.
//
// Each shard must be self-contained — its own EventLoop, Network, hosts and
// RNGs, seeded exactly as the serial code would seed them — so shards share
// no mutable state and the per-shard results are a pure function of the
// shard index. Because results are merged by index (never by completion
// order), a bench's output is byte-identical at any --jobs value; the knob
// affects wall-clock only. Serial execution (jobs <= 1) stays the default
// and runs the shard functor inline on the calling thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>  // detlint: allow(DET004) shard fan-out; shards share no mutable state
#include <utility>
#include <vector>

namespace dohperf::bench {

/// All hardware threads, for benches whose default workload is sized for
/// parallel execution (fig6). Affects wall-clock only — results are merged
/// by shard index, so output is identical at any jobs value.
inline std::size_t default_jobs() {
  // detlint: allow(DET004) thread count changes speed, never results
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Parse the standard `--jobs=N` / `--jobs N` flag (default: serial).
inline std::size_t jobs_flag(int argc, char** argv,
                             std::size_t fallback = 1) {
  const std::string prefix = "--jobs=";
  const std::string bare = "--jobs";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
    if (arg == bare && i + 1 < argc) {
      return static_cast<std::size_t>(
          std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

/// Run `shard_count` independent shards, `jobs` at a time, and return their
/// results ordered by shard index. `shard_fn(index)` must not touch state
/// shared with other shards. With jobs <= 1 everything runs inline on the
/// calling thread; results (and therefore any JSON derived from them) are
/// identical either way. If shards throw, the exception from the
/// lowest-indexed failing shard is rethrown after all workers finish.
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t shard_count, std::size_t jobs,
                                Fn&& shard_fn) {
  std::vector<Result> results(shard_count);
  if (shard_count == 0) return results;

  if (jobs <= 1) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      results[i] = shard_fn(i);
    }
    return results;
  }

  if (jobs > shard_count) jobs = shard_count;
  // Each worker writes only its own shard's error slot, but adjacent
  // exception_ptrs (8 bytes) would share a cache line; pad each slot to a
  // full line, same as the result types themselves (alignas(64)).
  struct alignas(64) ErrorSlot {
    std::exception_ptr error;
  };
  std::vector<ErrorSlot> errors(shard_count);
  // Keep the work-distribution counter on its own cache line too, so
  // fetch_add traffic does not invalidate the first shard's slots.
  struct alignas(64) NextShard {
    std::atomic<std::size_t> value{0};
  };
  NextShard next;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.value.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard_count) return;
      try {
        results[i] = shard_fn(i);
      } catch (...) {
        errors[i].error = std::current_exception();
      }
    }
  };

  // detlint: allow(DET004) worker pool over independent shards (see header comment)
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) {
    // detlint: allow(DET004) worker pool over independent shards
    pool.emplace_back(worker);
  }
  for (auto& t : pool) t.join();

  // Deterministic error propagation: lowest shard index wins.
  for (auto& e : errors) {
    if (e.error) std::rethrow_exception(e.error);
  }
  return results;
}

}  // namespace dohperf::bench
