// Ablation: client-side resolution policies.
//
//  * TTL cache on/off — the paper empties all caches by design; this
//    quantifies what that methodology removes: with a browser-style cache,
//    a Zipf-popular query stream stops touching the network at all for hot
//    names, collapsing DoH's per-query cost.
//  * TRR-style fallback — Firefox's DoH rollout answer to a degraded DoH
//    service: how much tail latency does the fallback deadline clip when a
//    fraction of DoH queries stall?
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/caching_client.hpp"
#include "core/doh_client.hpp"
#include "core/fallback_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "workload/alexa.hpp"

namespace {

using namespace dohperf;

void cache_ablation(std::size_t queries, bench::BenchReport& report) {
  std::printf("--- TTL cache over DoH, Zipf query stream (%zu queries) "
              "---\n", queries);
  for (const bool cache_on : {false, true}) {
    simnet::EventLoop loop;
    simnet::Network net(loop, 4);
    simnet::Host client_host(net, "client");
    simnet::Host server_host(net, "resolver");
    simnet::LinkConfig link;
    link.latency = simnet::ms(8);
    net.connect(client_host.id(), server_host.id(), link);

    resolver::Engine engine(loop, {});
    resolver::DohServerConfig doh_config;
    doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
    resolver::DohServer doh_server(server_host, engine, doh_config, 443);

    core::DohClientConfig client_config;
    client_config.server_name = "cloudflare-dns.com";
    core::DohClient doh(client_host, {server_host.id(), 443}, client_config);
    core::CachingResolverClient cache(loop, doh, {});
    core::ResolverClient& resolver_client =
        cache_on ? static_cast<core::ResolverClient&>(cache)
                 : static_cast<core::ResolverClient&>(doh);

    stats::ZipfSampler popularity(2000, 1.2, 77);
    std::vector<double> times_ms;
    for (std::size_t i = 0; i < queries; ++i) {
      const auto name = dns::Name::parse(
          "tp" + std::to_string(popularity.sample()) + ".example");
      resolver_client.resolve(name, dns::RType::kA,
                              [&](const core::ResolutionResult& r) {
                                times_ms.push_back(
                                    simnet::to_ms(r.resolution_time()));
                              });
      loop.run();
    }
    const auto* tcp = doh.tcp_counters();
    const double mean_ms = [&] {
      double total = 0;
      for (const auto t : times_ms) total += t;
      return total / static_cast<double>(times_ms.size());
    }();
    std::printf("cache %-3s med=%6.2fms mean=%6.2fms  wire=%s",
                cache_on ? "ON" : "OFF", stats::percentile(times_ms, 50),
                mean_ms,
                tcp ? stats::format_bytes(
                          static_cast<double>(tcp->total_wire_bytes()))
                          .c_str()
                    : "n/a");
    const std::string key = cache_on ? "cache_on" : "cache_off";
    report.set(key, "resolution_ms", bench::box_json(times_ms));
    report.set(key, "mean_ms", mean_ms);
    if (tcp != nullptr) {
      report.set(key, "wire_bytes",
                 static_cast<std::int64_t>(tcp->total_wire_bytes()));
    }
    if (cache_on) {
      std::printf("  hit-ratio=%.0f%%", cache.stats().hit_ratio() * 100.0);
      report.set(key, "hit_ratio", cache.stats().hit_ratio());
    }
    std::printf("\n");
  }
}

void fallback_ablation(std::size_t queries, bench::BenchReport& report) {
  std::printf("\n--- TRR fallback under a degraded DoH service "
              "(1 in 5 queries stalls 5s; %zu queries) ---\n", queries);
  for (const bool fallback_on : {false, true}) {
    simnet::EventLoop loop;
    simnet::Network net(loop, 4);
    simnet::Host client_host(net, "client");
    simnet::Host server_host(net, "resolver");
    simnet::LinkConfig link;
    link.latency = simnet::ms(8);
    net.connect(client_host.id(), server_host.id(), link);

    resolver::EngineConfig engine_config;
    engine_config.delay_policy.every_n = 5;
    engine_config.delay_policy.delay = simnet::seconds(5);
    resolver::Engine doh_engine(loop, engine_config);
    resolver::DohServerConfig doh_config;
    doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
    resolver::DohServer doh_server(server_host, doh_engine, doh_config, 443);
    // The UDP path resolves from a separate healthy engine.
    resolver::Engine udp_engine(loop, {});
    resolver::UdpServer udp_server(server_host, udp_engine, 53);

    core::DohClientConfig client_config;
    client_config.server_name = "cloudflare-dns.com";
    core::DohClient doh(client_host, {server_host.id(), 443}, client_config);
    core::UdpResolverClient udp(client_host, {server_host.id(), 53});
    core::FallbackConfig fallback_config;
    fallback_config.primary_deadline = simnet::ms(300);
    core::FallbackResolverClient trr(loop, doh, udp, fallback_config);
    core::ResolverClient& resolver_client =
        fallback_on ? static_cast<core::ResolverClient&>(trr)
                    : static_cast<core::ResolverClient&>(doh);

    std::vector<double> times_ms;
    for (std::size_t i = 0; i < queries; ++i) {
      resolver_client.resolve(
          dns::Name::parse("q" + std::to_string(i) + ".example.com"),
          dns::RType::kA, [&](const core::ResolutionResult& r) {
            times_ms.push_back(simnet::to_ms(r.resolution_time()));
          });
      loop.run();
    }
    std::printf("fallback %-3s med=%7.1fms p90=%8.1fms max=%8.1fms",
                fallback_on ? "ON" : "OFF", stats::percentile(times_ms, 50),
                stats::percentile(times_ms, 90),
                stats::percentile(times_ms, 100));
    const std::string key = fallback_on ? "fallback_on" : "fallback_off";
    report.set(key, "resolution_ms", bench::box_json(times_ms));
    if (fallback_on) {
      std::printf("  (fallbacks: %llu/%zu)",
                  static_cast<unsigned long long>(trr.stats().fallback_used),
                  queries);
      report.set(key, "fallbacks", static_cast<std::int64_t>(
                                       trr.stats().fallback_used));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 400);
  std::printf("=== Ablation: client-side resolution policies ===\n\n");
  bench::BenchReport report("ablation_client_policies");
  report.params["queries"] = static_cast<std::int64_t>(queries);
  cache_ablation(queries, report);
  fallback_ablation(std::min<std::size_t>(queries, 200), report);
  std::printf(
      "\nCaching collapses most DoH queries to zero network cost (the\n"
      "paper's cache-emptying methodology measures the worst case); the\n"
      "TRR fallback bounds a degraded DoH service's tail at the deadline.\n");
  bench::finish(argc, argv, report);
  return 0;
}
