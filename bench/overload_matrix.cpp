// Overload matrix: the resolver-tier overload-control ladder under offered
// load from 0.5x to 4x of nominal capacity, plus a hot-tenant cell and a
// post-outage thundering herd. One shared RecursiveTier (cache + coalescing
// in every cell — the ladder varies *control*, not capacity) fronts an
// Engine behind UDP and DoH front-ends, serving an open-loop Zipf-popular
// client population (even clients speak DoH/h2, odd clients classic UDP):
//
//   none       cache + coalescing only; queue unbounded, everything admitted
//   queue      + bounded queue with deadline-aware shedding at dequeue
//   queue+adm  + gradient/AIMD admission on observed service latency
//   full       + per-client token-bucket fairness + server-side retry budget
//
// Scenarios (rates are multiples of the ~300 q/s nominal capacity):
//   load-{0.5x,1x,2x,4x}  uniform population at the given offered load
//   hotspot-2x            2x load, one tenant sending half of all queries
//   herd-0.9x             steady 0.9x; both front-ends crash mid-run for 2s,
//                         then the accumulated retries stampede back
//
// Goodput counts a query answered NOERROR within the 2s client deadline.
// The retry-amplification factor (RAF) is client-observed: (first sends +
// UDP retransmissions + DoH re-issues) / first sends — the metastability
// number. Shed answers are REFUSED, which clients treat as terminal (no
// retry), so shedding *reduces* RAF; that interaction is the point.
//
// Self-gates (skipped under --no-gate, determinism always checked):
//   retention   full@2x keeps >=80% of full@1x absolute goodput
//   collapse    none@2x goodput%  <= half of full@2x goodput%
//   raf         none@2x amplifies (RAF >= 1.5); full@2x does not (<= 1.2)
//   fairness    hotspot-2x: full rung keeps the 23 non-hot clients >= 85%
//               goodput and beats the uncontrolled rung
//   herd        queries offered after recovery+1s resolve >= 99% on full
//
// Every draw (arrivals, Zipf ranks, client picks, backoff jitter) comes
// from seeded generators over virtual time: the grid is a pure function of
// --seed. The harness runs the grid twice and compares renderings, and one
// shard per cell merges by index so --jobs=N output is byte-identical.
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/engine.hpp"
#include "resolver/recursive_tier.hpp"
#include "resolver/udp_server.hpp"
#include "workload/population.hpp"

namespace {

using namespace dohperf;

constexpr simnet::TimeUs kDeadline = simnet::seconds(2);
constexpr std::size_t kClients = 24;  ///< even = DoH/h2, odd = UDP
constexpr std::size_t kNames = 48;
constexpr double kZipfExponent = 1.0;
/// Nominal tier capacity: one worker, 2ms per cache hit and 8ms per
/// back-end miss; with 48 names at TTL 3s the observed miss rate settles
/// near 25/s, so 300 q/s runs ~0.75 utilization — comfortably stable — and
/// 2x is ~1.5x over capacity (see EXPERIMENTS.md for the arithmetic).
constexpr double kNominalQps = 300.0;

struct Scenario {
  std::string name;
  double rate_factor = 1.0;
  double hot_share = 0.0;  ///< extra query mass on client 0
  bool herd = false;       ///< crash both front-ends mid-run
};

std::vector<Scenario> scenarios() {
  return {
      {"load-0.5x", 0.5, 0.0, false}, {"load-1x", 1.0, 0.0, false},
      {"load-2x", 2.0, 0.0, false},   {"load-4x", 4.0, 0.0, false},
      {"hotspot-2x", 2.0, 0.5, false}, {"herd-0.9x", 0.9, 0.0, true},
  };
}

/// The control ladder, least to most defended.
constexpr std::array<const char*, 4> kRungs = {"none", "queue", "queue+adm",
                                               "full"};

resolver::TierConfig tier_for(const std::string& rung) {
  resolver::TierConfig config;
  config.workers = 1;
  config.cache_entries = 4096;
  config.hit_processing = simnet::us(2000);
  config.coalesce = true;
  if (rung == "none") return config;
  // queue: hard bound plus deadline-aware shedding at dequeue.
  config.bound_queue = true;
  config.queue_capacity = 64;
  config.deadline = simnet::seconds(1);
  config.expected_service = simnet::ms(3);
  if (rung == "queue") return config;
  // queue+adm: AIMD limit on outstanding work. best-case hit latency is
  // ~2ms, so the 6.0x inflation threshold trips near 12ms average —
  // comfortably above the stable steady state, firmly below a growing
  // queue.
  config.admission_enabled = true;
  config.admission.min_limit = 12;
  config.admission.max_limit = 512;
  config.admission.initial_limit = 64;
  config.admission.window = 32;
  config.admission.inflate_permille = 6000;
  config.admission.decrease_permille = 700;
  config.admission.increase_step = 2;
  if (rung == "queue+adm") return config;
  // full: per-client fairness (35 q/s against a 12.5 q/s uniform share at
  // 1x) and the server-side retry budget (10% of fresh traffic).
  config.fairness_enabled = true;
  config.fairness.rate_milli = 35000;
  config.fairness.burst_milli = 50000;
  config.retry_budget_enabled = true;
  config.retry_ratio_permille = 100;
  config.retry_reserve_milli = 10000;
  config.retry_cap_milli = 100000;
  config.retry_window = simnet::seconds(2);  ///< must stay below the 3s TTL
  return config;
}

struct RunMetrics {
  std::size_t offered = 0;
  std::size_t good = 0;  ///< NOERROR within kDeadline
  std::vector<double> resolution_ms;
  std::uint64_t udp_retransmissions = 0;
  std::uint64_t doh_reissues = 0;
  resolver::TierStats tier;
  std::size_t doh_peak_sessions = 0;
  std::size_t doh_memory_bytes = 0;
  std::uint64_t doh_reconnects = 0;
  // hotspot cells: goodput of the 23 clients that are not the hot tenant.
  std::size_t nonhot_offered = 0;
  std::size_t nonhot_good = 0;
  // herd cells: queries first offered >= 1s after the front-ends recovered.
  std::size_t window_offered = 0;
  std::size_t window_good = 0;
};

double pct(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

double raf(const RunMetrics& m) {
  return m.offered == 0
             ? 1.0
             : static_cast<double>(m.offered + m.udp_retransmissions +
                                   m.doh_reissues) /
                   static_cast<double>(m.offered);
}

RunMetrics run(const Scenario& scenario, const std::string& rung,
               std::uint64_t seed, std::size_t duration_sec,
               obs::Registry* registry = nullptr) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host server_host(net, "tier");
  std::vector<std::unique_ptr<simnet::Host>> client_hosts;
  client_hosts.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    client_hosts.push_back(
        std::make_unique<simnet::Host>(net, "c" + std::to_string(c)));
    simnet::LinkConfig link;
    link.latency = simnet::ms(5);
    net.connect(client_hosts[c]->id(), server_host.id(), link);
  }

  const obs::SpanContext obs{nullptr, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  engine_config.ttl = 3;  // short, so the tier cache has real dynamics
  engine_config.upstream.cache_hit_ratio = 1.0;  // fixed service time
  engine_config.upstream.processing = simnet::ms(8);
  engine_config.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  resolver::Engine engine(loop, engine_config);

  resolver::TierConfig tier_config = tier_for(rung);
  tier_config.obs = obs;
  resolver::RecursiveTier tier(loop, engine, tier_config);

  resolver::UdpServer udp_server(server_host, tier, 53);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::generic("tier.resolver");
  resolver::DohServer doh_server(server_host, tier, doh_config, 443);

  // The herd: both front-ends crash halfway through the base duration and
  // come back 2s later; the run gets 2 extra seconds so the post-recovery
  // window has room.
  const simnet::TimeUs restart_at =
      simnet::seconds(static_cast<std::int64_t>(duration_sec)) / 2;
  const simnet::TimeUs downtime = simnet::seconds(2);
  const simnet::TimeUs window_start = restart_at + downtime + simnet::seconds(1);
  if (scenario.herd) {
    loop.schedule_at(restart_at, [&]() {
      udp_server.restart(downtime);
      doh_server.restart(downtime);
    });
  }

  std::vector<std::unique_ptr<core::DohClient>> doh_clients;
  std::vector<std::unique_ptr<core::UdpResolverClient>> udp_clients;
  std::vector<core::ResolverClient*> stubs(kClients, nullptr);
  for (std::size_t c = 0; c < kClients; ++c) {
    if (c % 2 == 0) {
      core::DohClientConfig cfg;
      cfg.obs = obs;
      cfg.server_name = "tier.resolver";
      cfg.http_version = core::HttpVersion::kHttp2;
      cfg.retry.max_retries = 2;
      cfg.retry.backoff_initial = simnet::ms(200);
      cfg.retry.backoff_max = simnet::seconds(1);
      cfg.retry.query_timeout = simnet::seconds(1);
      cfg.retry.seed = seed ^ (0xbf58476d1ce4e5b9ULL * (c + 1));
      doh_clients.push_back(std::make_unique<core::DohClient>(
          *client_hosts[c], simnet::Address{server_host.id(), 443}, cfg));
      stubs[c] = doh_clients.back().get();
    } else {
      core::UdpClientConfig cfg;
      cfg.obs = obs;
      cfg.timeout = simnet::seconds(1);
      cfg.max_retries = 2;
      udp_clients.push_back(std::make_unique<core::UdpResolverClient>(
          *client_hosts[c], simnet::Address{server_host.id(), 53}, cfg));
      stubs[c] = udp_clients.back().get();
    }
  }

  workload::PopulationConfig pop;
  pop.clients = kClients;
  pop.names = kNames;
  pop.zipf_exponent = kZipfExponent;
  pop.rate_qps = kNominalQps * scenario.rate_factor;
  pop.duration = simnet::seconds(
      static_cast<std::int64_t>(duration_sec + (scenario.herd ? 2 : 0)));
  pop.hot_client_share = scenario.hot_share;
  pop.seed = seed ^ 0x94d049bb133111ebULL;
  const workload::PopulationWorkload workload(pop);
  const auto events = workload.generate();

  std::vector<std::uint64_t> ids(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    const dns::Name name = workload.name_for(ev.name_rank);
    loop.schedule_at(ev.at, [&, i, name]() {
      ids[i] = stubs[events[i].client]->resolve(name, dns::RType::kA, {});
    });
  }
  loop.run();

  RunMetrics m;
  m.offered = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    const auto& r = stubs[ev.client]->result(ids[i]);
    m.resolution_ms.push_back(static_cast<double>(r.resolution_time()) / 1e3);
    const bool good = r.success &&
                      r.response.flags.rcode == dns::Rcode::kNoError &&
                      r.resolution_time() <= kDeadline;
    if (good) ++m.good;
    if (ev.client != 0) {
      ++m.nonhot_offered;
      if (good) ++m.nonhot_good;
    }
    if (scenario.herd && ev.at >= window_start) {
      ++m.window_offered;
      if (good) ++m.window_good;
    }
  }
  for (const auto& u : udp_clients) m.udp_retransmissions += u->retransmissions();
  for (const auto& d : doh_clients) {
    m.doh_reissues += d->retry_stats().retried_queries;
    m.doh_reconnects += d->retry_stats().reconnects;
  }
  m.tier = tier.stats();
  m.doh_peak_sessions = doh_server.peak_sessions();
  m.doh_memory_bytes = doh_server.memory_estimate_bytes();
  return m;
}

// detlint: hot-slot
struct alignas(64) Cell {
  RunMetrics metrics;
  obs::Registry registry;
};

std::vector<Cell> run_grid(std::uint64_t seed, std::size_t duration_sec,
                           std::size_t jobs, bool with_registry) {
  const auto grid = scenarios();
  return bench::run_sharded<Cell>(
      grid.size() * kRungs.size(), jobs, [&](std::size_t i) {
        Cell cell;
        cell.metrics =
            run(grid[i / kRungs.size()], kRungs[i % kRungs.size()], seed,
                duration_sec, with_registry ? &cell.registry : nullptr);
        return cell;
      });
}

std::string render_matrix(const std::vector<Cell>& cells,
                          bench::BenchReport* json_report = nullptr) {
  stats::TextTable table;
  table.add_row({"scenario", "rung", "offered", "good%", "p50(ms)", "p99(ms)",
                 "shed%", "raf", "hit%", "conns", "mem(KB)", "aux%"});
  std::size_t cell_index = 0;
  for (const auto& scenario : scenarios()) {
    for (const char* rung : kRungs) {
      const RunMetrics& m = cells[cell_index++].metrics;
      const double good_pct = pct(m.good, m.offered);
      const double shed_pct =
          pct(static_cast<std::size_t>(m.tier.sheds()),
              static_cast<std::size_t>(m.tier.requests));
      const double hit_pct =
          pct(static_cast<std::size_t>(m.tier.cache_hits),
              static_cast<std::size_t>(m.tier.cache_hits +
                                       m.tier.cache_misses));
      const auto pctl = [&](double p) {
        return m.resolution_ms.empty()
                   ? std::string("-")
                   : stats::format_double(
                         stats::percentile(m.resolution_ms, p), 1);
      };
      // aux%: post-recovery goodput for herd rows, non-hot-client goodput
      // for hotspot rows (the two scenario-specific gate inputs).
      std::string aux = "-";
      double aux_pct = 0.0;
      if (scenario.herd) {
        aux_pct = pct(m.window_good, m.window_offered);
        aux = stats::format_double(aux_pct, 1);
      } else if (scenario.hot_share > 0.0) {
        aux_pct = pct(m.nonhot_good, m.nonhot_offered);
        aux = stats::format_double(aux_pct, 1);
      }
      table.add_row({scenario.name, rung, std::to_string(m.offered),
                     stats::format_double(good_pct, 1), pctl(50), pctl(99),
                     stats::format_double(shed_pct, 1),
                     stats::format_double(raf(m), 2),
                     stats::format_double(hit_pct, 1),
                     std::to_string(m.doh_peak_sessions),
                     std::to_string(m.doh_memory_bytes / 1024), aux});
      if (json_report != nullptr) {
        const std::string key = scenario.name + "/" + rung;
        json_report->set(key, "offered",
                         static_cast<std::int64_t>(m.offered));
        json_report->set(key, "good", static_cast<std::int64_t>(m.good));
        json_report->set(key, "goodput_pct", good_pct);
        json_report->set(key, "p50_ms",
                         m.resolution_ms.empty()
                             ? 0.0
                             : stats::percentile(m.resolution_ms, 50));
        json_report->set(key, "p99_ms",
                         m.resolution_ms.empty()
                             ? 0.0
                             : stats::percentile(m.resolution_ms, 99));
        json_report->set(key, "shed_pct", shed_pct);
        json_report->set(key, "raf", raf(m));
        json_report->set(key, "udp_retransmissions",
                         static_cast<std::int64_t>(m.udp_retransmissions));
        json_report->set(key, "doh_reissues",
                         static_cast<std::int64_t>(m.doh_reissues));
        json_report->set(key, "doh_reconnects",
                         static_cast<std::int64_t>(m.doh_reconnects));
        json_report->set(key, "cache_hit_pct", hit_pct);
        json_report->set(key, "coalesced",
                         static_cast<std::int64_t>(m.tier.coalesced));
        json_report->set(key, "retries_detected",
                         static_cast<std::int64_t>(m.tier.retries_detected));
        dns::JsonObject shed;
        shed["queue_full"] =
            static_cast<std::int64_t>(m.tier.shed_queue_full);
        shed["deadline"] = static_cast<std::int64_t>(m.tier.shed_deadline);
        shed["admission"] = static_cast<std::int64_t>(m.tier.shed_admission);
        shed["fairness"] = static_cast<std::int64_t>(m.tier.shed_fairness);
        shed["retry_budget"] =
            static_cast<std::int64_t>(m.tier.shed_retry_budget);
        json_report->set(key, "shed", dns::JsonValue(std::move(shed)));
        json_report->set(key, "queue_peak",
                         static_cast<std::int64_t>(m.tier.queue_peak));
        json_report->set(key, "doh_peak_sessions",
                         static_cast<std::int64_t>(m.doh_peak_sessions));
        json_report->set(key, "doh_memory_bytes",
                         static_cast<std::int64_t>(m.doh_memory_bytes));
        json_report->set(key, "aux_pct", aux_pct);
      }
    }
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t duration_sec = bench::flag(argc, argv, "duration", 10);
  const std::uint64_t seed = bench::flag(argc, argv, "seed", 7);
  const std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());
  const bool no_gate = bench::flag_set(argc, argv, "no-gate");

  std::printf("=== Overload matrix: offered load x control ladder ===\n");
  std::printf("(~%.0f q/s nominal capacity, %zu clients (even DoH/h2, odd "
              "UDP), %zu Zipf names, TTL 3s, %zus per cell, seed %llu; "
              "good = NOERROR within 2s; aux%% = post-recovery goodput for "
              "herd rows, non-hot-client goodput for hotspot rows)\n\n",
              kNominalQps, kClients, kNames, duration_sec,
              static_cast<unsigned long long>(seed));

  obs::Registry registry;
  bench::BenchReport json_report("overload_matrix");
  json_report.params["duration"] = static_cast<std::int64_t>(duration_sec);
  json_report.params["seed"] = static_cast<std::int64_t>(seed);
  json_report.params["clients"] = static_cast<std::int64_t>(kClients);
  json_report.params["nominal_qps"] = kNominalQps;

  const auto cells = run_grid(seed, duration_sec, jobs, true);
  for (const auto& cell : cells) registry.merge_from(cell.registry);
  const std::string first = render_matrix(cells, &json_report);
  const std::string second =
      render_matrix(run_grid(seed, duration_sec, jobs, false));
  std::fputs(first.c_str(), stdout);
  std::printf("\ndeterminism check (two full grid runs, same seed): %s\n",
              first == second ? "PASS - byte-identical" : "FAIL");

  // Cell coordinates in the fixed scenario x rung grid.
  const auto cell = [&](std::size_t scenario, std::size_t rung)
      -> const RunMetrics& { return cells[scenario * kRungs.size() + rung].metrics; };
  constexpr std::size_t k1x = 1, k2x = 2, kHotspot = 4, kHerd = 5;
  constexpr std::size_t kNone = 0, kFull = 3;

  const RunMetrics& full_1x = cell(k1x, kFull);
  const RunMetrics& full_2x = cell(k2x, kFull);
  const RunMetrics& none_2x = cell(k2x, kNone);
  const bool retention_ok =
      static_cast<double>(full_2x.good) >=
      0.8 * static_cast<double>(full_1x.good);
  const bool collapse_ok =
      pct(none_2x.good, none_2x.offered) <=
      0.5 * pct(full_2x.good, full_2x.offered);
  const bool raf_ok = raf(none_2x) >= 1.5 && raf(full_2x) <= 1.2;
  const RunMetrics& full_hot = cell(kHotspot, kFull);
  const RunMetrics& none_hot = cell(kHotspot, kNone);
  const double full_nonhot = pct(full_hot.nonhot_good, full_hot.nonhot_offered);
  const bool fairness_ok =
      full_nonhot >= 85.0 &&
      full_nonhot >= pct(none_hot.nonhot_good, none_hot.nonhot_offered);
  const RunMetrics& full_herd = cell(kHerd, kFull);
  const bool herd_ok =
      pct(full_herd.window_good, full_herd.window_offered) >= 99.0;

  std::printf("retention gate (full@2x >= 80%% of full@1x goodput): %s "
              "(%zu vs %zu)\n",
              retention_ok ? "PASS" : "FAIL", full_2x.good, full_1x.good);
  std::printf("collapse gate (none@2x <= half of full@2x goodput%%): %s "
              "(%.1f%% vs %.1f%%)\n",
              collapse_ok ? "PASS" : "FAIL", pct(none_2x.good, none_2x.offered),
              pct(full_2x.good, full_2x.offered));
  std::printf("raf gate (none@2x >= 1.5, full@2x <= 1.2): %s "
              "(%.2f / %.2f)\n",
              raf_ok ? "PASS" : "FAIL", raf(none_2x), raf(full_2x));
  std::printf("fairness gate (hotspot full non-hot >= 85%%, beats none): %s "
              "(%.1f%%)\n",
              fairness_ok ? "PASS" : "FAIL", full_nonhot);
  std::printf("herd gate (post-recovery window >= 99%% on full): %s "
              "(%.1f%%)\n",
              herd_ok ? "PASS" : "FAIL",
              pct(full_herd.window_good, full_herd.window_offered));
  const bool gates_ok =
      retention_ok && collapse_ok && raf_ok && fairness_ok && herd_ok;
  if (no_gate) {
    std::printf("(--no-gate: ladder gates reported but not enforced)\n");
  }

  json_report.set("checks", "determinism",
                  std::string(first == second ? "PASS" : "FAIL"));
  json_report.set("checks", "retention",
                  std::string(retention_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "collapse",
                  std::string(collapse_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "raf", std::string(raf_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "fairness",
                  std::string(fairness_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "herd", std::string(herd_ok ? "PASS" : "FAIL"));
  bench::finish(argc, argv, json_report, nullptr, &registry);
  return first == second && (no_gate || gates_ok) ? 0 : 1;
}
