// Figure 4: total packets per resolution across the six §4 scenarios.
//
// Paper medians: UDP 2 packets; fresh-connection DoH 27 (Cloudflare) and
// 31 (Google) — ~15x UDP; persistent DoH 8 (CF) / 11 (GO).
#include <cstdio>

#include "bench_common.hpp"
#include "resolution_cost.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;
  const std::size_t names = bench::flag(argc, argv, "names", 2000);
  const bool want_trace = !bench::flag_str(argc, argv, "trace").empty();

  std::printf("=== Figure 4: total packets per DNS resolution (%zu names) "
              "===\n\n", names);

  obs::Tracer tracer;
  obs::Registry registry;
  const auto scenarios = bench::run_all_scenarios(
      names, want_trace ? &tracer : nullptr, &registry);
  bench::BenchReport report("fig4_packets_per_resolution");
  report.params["names"] = static_cast<std::int64_t>(names);

  double udp_median = 0.0;
  for (const auto& scenario : scenarios) {
    std::vector<double> packets;
    for (const auto& c : scenario.costs) {
      packets.push_back(static_cast<double>(c.packets));
    }
    bench::print_box(scenario.label, packets, "packets");
    report.set(scenario.label, "packets", bench::box_json(packets));
    if (scenario.label == "U/CF") udp_median = stats::median(packets);
  }

  std::printf("\nRatios vs UDP median (%0.0f packets):\n", udp_median);
  for (const auto& scenario : scenarios) {
    std::vector<double> packets;
    for (const auto& c : scenario.costs) {
      packets.push_back(static_cast<double>(c.packets));
    }
    std::printf("  %-8s %.1fx\n", scenario.label.c_str(),
                stats::median(packets) / udp_median);
  }
  std::printf("\nPaper reference medians: U=2  H/CF=27  H/GO=31  HP/CF=8  "
              "HP/GO=11\n");
  bench::finish(argc, argv, report, &tracer, &registry);
  return 0;
}
