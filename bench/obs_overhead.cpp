// Observability tax study: what tracing + metrics cost per query, and what
// production-rate sampling buys back. Two workload cells —
//
//   pageload  a fig6-style page-load slice (university vantage, U/LO:
//             UDP client, browser + web farm + engine), instrumented on
//             the client side per page load;
//   tier      the overload-control resolver tier (cache + coalescing +
//             bounded queue + admission + fairness + retry budget) driven
//             directly at ~2x nominal load, instrumented per request;
//
// each run over the same five-rung instrumentation ladder:
//
//   off         no tracer, no registry (the one-null-check fast path)
//   metrics     registry only (pre-registered MetricId dense-slot writes)
//   sampled256  SamplingTracer keeping 1/256 roots + metrics
//   sampled64   SamplingTracer keeping 1/64 roots + metrics
//   full        every root traced (period 1) + metrics
//
// Per (cell, rung) the harness runs the identical seeded workload --reps
// times. Each rep is a back-to-back pair on one thread — a disarmed
// baseline rep (same instruments constructed, null-sink contexts handed
// out) and the armed rep, in alternating order — so the per-pair CPU
// ratio cancels frequency drift, heap-layout asymmetry, and linear load
// drift; the reported overhead_ratio is the median over the pairs (robust
// to a stray slow rep) and cpu_us is the minimum. The
// virtual-clock simulation is a pure function of the seed, so span counts,
// sampling tallies, pool statistics and the metrics snapshot are
// byte-identical across runs and --jobs values; only the cpu_* /
// overhead_ratio fields are wall-clock derived. `--digest=<path>` writes a
// reduced document with the deterministic fields only — CI compares the
// jobs=1 and jobs=4 digests byte-for-byte.
//
// Self-gates (skipped under --no-gate):
//   sampled     sampled64 and sampled256 CPU/query <= 1.02x of off,
//               judged on the best (minimum) pair ratio — noise only
//               inflates a pair, so the least perturbed pair bounds the
//               true overhead from above
//   monotone    off <= metrics <= sampled256 <= sampled64 <= full on the
//               median ratios, each step tolerating an 8% inversion
//               (adjacent cheap rungs differ by less than the host's
//               noise floor; the gate protects the ladder's shape)
#include <algorithm>
#include <array>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "browser/page_load.hpp"
#include "browser/vantage.hpp"
#include "browser/web_farm.hpp"
#include "core/udp_client.hpp"
#include "obs/registry.hpp"
#include "obs/sampling.hpp"
#include "obs/span.hpp"
#include "resolver/engine.hpp"
#include "resolver/recursive_tier.hpp"
#include "resolver/udp_server.hpp"
#include "stats/rng.hpp"
#include "workload/alexa.hpp"

namespace {

using namespace dohperf;

/// Thread CPU time in microseconds: immune to other shards' work and to
/// the process's wall-clock environment. Used for the overhead ratios
/// only — every simulation result is virtual-clock derived.
double thread_cpu_us() {
  timespec ts{};
  // Excluded from the --digest determinism surface.
  // detlint: allow(DET001) CPU-time probe feeding the overhead ratios only
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

/// The instrumentation ladder, cheapest first. `period` only matters when
/// `traced` (full = period 1: every root kept through the same machinery).
struct Rung {
  const char* name;
  bool metrics;
  bool traced;
  std::uint64_t period;
};

constexpr std::array<Rung, 5> kRungs = {{
    {"off", false, false, 0},
    {"metrics", true, false, 0},
    {"sampled256", true, true, 256},
    {"sampled64", true, true, 64},
    {"full", true, true, 1},
}};

/// Deterministic outputs of one (cell, rung) shard plus its timing. The
/// registry rides along so the merged export reflects exactly what the
/// instrumented run recorded.
// detlint: hot-slot
struct alignas(64) CellShard {
  std::uint64_t queries = 0;        ///< denominator for CPU/query
  std::uint64_t spans = 0;          ///< spans recorded (kept roots' trees)
  std::uint64_t open_spans = 0;     ///< must be 0: all spans closed
  std::uint64_t spans_sampled = 0;  ///< roots kept (traced rungs)
  std::uint64_t spans_dropped = 0;  ///< roots dropped to the null sink
  obs::PoolStats pool;
  double cpu_us_min = 0.0;      ///< min over reps (wall-clock derived)
  double cpu_off_us_min = 0.0;  ///< interleaved obs-off baseline (same)
  double overhead_ratio = 1.0;       ///< median of per-rep-pair CPU ratios
  double overhead_ratio_best = 1.0;  ///< min pair ratio (gate estimator)
  obs::Registry registry;
};

/// Per-rep instrumentation bundle. Everything is rebuilt per rep so each
/// rep measures cold-pool behaviour identically. A disarmed bundle (the
/// baseline half of a timing pair) still constructs the rung's registry,
/// tracer and pools — so both halves of a pair make identical allocations
/// and the measured difference is the per-call instrumentation cost, not
/// an artifact of divergent heap layouts — but hands out the null-sink
/// context everywhere.
struct Instruments {
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::SamplingTracer> sampler;
  bool armed = true;

  explicit Instruments(const Rung& rung, std::uint64_t seed) {
    if (rung.metrics) registry = std::make_unique<obs::Registry>();
    if (rung.traced) {
      tracer = std::make_unique<obs::Tracer>();
      obs::SamplingConfig config;
      config.period = rung.period;
      config.seed = seed;
      sampler = std::make_unique<obs::SamplingTracer>(*tracer,
                                                      registry.get(), config);
    }
  }

  /// Root context for one unit of work (page load, tier request).
  obs::SpanContext unit(std::uint64_t key) {
    if (!armed) return obs::SpanContext{};
    if (sampler) return sampler->root_context(key);
    return obs::SpanContext{nullptr, 0, registry.get()};
  }

  /// The metrics registry the workload should attach — null when disarmed.
  obs::Registry* metrics() const noexcept {
    return armed ? registry.get() : nullptr;
  }

  void harvest(CellShard& out) {
    if (tracer) {
      out.spans = tracer->size();
      out.open_spans = tracer->open_spans();
      out.pool = tracer->pool_stats();
    }
    if (registry) {
      out.spans_sampled = registry->counter("obs.spans_sampled");
      out.spans_dropped = registry->counter("obs.spans_dropped");
      out.registry.merge_from(*registry);
    }
  }
};

// --- pageload cell ----------------------------------------------------------

/// One rep of the fig6-style slice: U/LO (UDP client, local resolver) from
/// the university vantage. The sampling key is (rank, load) — a property
/// of the work unit, not of execution order.
std::uint64_t run_pageload_rep(Instruments& inst, std::size_t pages,
                               std::size_t loads) {
  std::uint64_t queries = 0;
  simnet::EventLoop loop;
  simnet::Network net(loop, 1001);
  simnet::Host browser_host(net, "browser");
  simnet::Host resolver_host(net, "resolver");
  if (inst.tracer) {
    inst.tracer->bind(loop);
    inst.tracer->reserve(pages * loads * 4 / std::max<std::uint64_t>(
        inst.sampler->config().period, 1));
  }

  const browser::Vantage vantage = browser::Vantage::university();
  simnet::LinkConfig resolver_link;
  resolver_link.latency = vantage.local_resolver_latency;
  net.connect(browser_host.id(), resolver_host.id(), resolver_link);

  resolver::EngineConfig engine_config;
  engine_config.upstream = vantage.local_resolver;
  engine_config.seed = 1001 ^ 0xabcd;
  // Server side stays metrics-only in every instrumented rung: the ladder
  // compares client-side tracing cost, so the engine's contribution must
  // not vary with the sampling period.
  engine_config.obs = obs::SpanContext{nullptr, 0, inst.metrics()};
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(resolver_host, engine, 53);

  core::UdpClientConfig client_config;
  core::UdpResolverClient resolver_client(
      browser_host, simnet::Address{resolver_host.id(), 53}, client_config);

  browser::WebFarmConfig farm_config;
  farm_config.base_latency = vantage.origin_base_latency;
  farm_config.latency_jitter = vantage.origin_latency_jitter;
  farm_config.bandwidth_bps = vantage.access_bandwidth_bps;
  farm_config.seed = 1001;
  browser::WebFarm farm(net, browser_host, farm_config);

  workload::AlexaPageModel model;
  for (std::size_t rank = 1; rank <= pages; ++rank) {
    const auto page = model.page(rank);
    for (std::size_t load = 0; load < loads; ++load) {
      const obs::SpanContext obs = inst.unit(rank * 8 + load);
      resolver_client.set_obs(obs);
      browser::PageLoadConfig loader_config;
      loader_config.obs = obs;
      browser::PageLoader loader(browser_host, farm, resolver_client,
                                 loader_config);
      browser::PageLoadResult page_result;
      loader.load(page, [&](const browser::PageLoadResult& r) {
        page_result = r;
      });
      loop.run();
      queries += page_result.dns_queries;
    }
  }
  return queries;
}

// --- tier cell --------------------------------------------------------------

/// One rep of the overload-tier slice: the full control ladder (bounded
/// queue, admission, fairness, retry budget) over a shared cache, driven
/// directly at a fixed inter-arrival that lands near 2x one worker's
/// capacity. The sampling key is the request ordinal.
std::uint64_t run_tier_rep(Instruments& inst, std::size_t requests) {
  constexpr std::size_t kClients = 24;
  constexpr std::size_t kNames = 48;
  simnet::EventLoop loop;
  if (inst.tracer) {
    inst.tracer->bind(loop);
    inst.tracer->reserve(requests / std::max<std::uint64_t>(
        inst.sampler->config().period, 1));
  }

  resolver::EngineConfig engine_config;
  engine_config.seed = 7 ^ 0xabcd;
  resolver::Engine engine(loop, engine_config);

  resolver::TierConfig tier_config;
  tier_config.workers = 1;
  tier_config.cache_entries = 4096;
  tier_config.hit_processing = simnet::us(2000);
  tier_config.coalesce = true;
  tier_config.bound_queue = true;
  tier_config.queue_capacity = 64;
  tier_config.deadline = simnet::seconds(1);
  tier_config.expected_service = simnet::ms(3);
  tier_config.admission_enabled = true;
  tier_config.fairness_enabled = true;
  tier_config.fairness.rate_milli = 35000;
  tier_config.fairness.burst_milli = 50000;
  tier_config.retry_budget_enabled = true;
  resolver::RecursiveTier tier(loop, engine, tier_config);

  std::vector<dns::Name> names;
  names.reserve(kNames);
  for (std::size_t i = 0; i < kNames; ++i) {
    names.push_back(dns::Name::parse("n" + std::to_string(i) + ".example."));
  }

  // Open-loop arrivals at one query per 1.6ms: ~625 q/s against the ~300
  // q/s nominal capacity of one worker (see overload_matrix), so the shed
  // and queue paths stay exercised.
  stats::SplitMix64 picks(9001);
  std::uint64_t served = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const simnet::TimeUs at = static_cast<simnet::TimeUs>(i) * 1600;
    const std::size_t name_index = picks.next_below(kNames);
    const std::uint64_t client = picks.next_below(kClients);
    loop.schedule_at(at, [&, i, name_index, client]() {
      const dns::Message query = dns::Message::make_query(
          static_cast<std::uint16_t>(i & 0xffff), names[name_index],
          dns::RType::kA);
      resolver::QueryContext context;
      context.client = client;
      tier.set_obs(inst.unit(i));
      tier.handle(query, context, [&](dns::Message) { ++served; });
    });
  }
  loop.run();
  return requests;
}

// --- harness ----------------------------------------------------------------

struct Workload {
  std::size_t pages = 40;
  std::size_t loads = 1;
  std::size_t tier_requests = 20000;
  std::size_t reps = 7;
};

/// Overhead ratios compare two timings taken on the SAME thread in the
/// SAME rep loop: each rung shard pairs a disarmed baseline rep with its
/// armed rep, so frequency drift, scheduler placement and allocation
/// patterns hit both sides alike. Cross-shard comparisons only ever use
/// the locally measured ratio, never raw times from another shard.
CellShard run_cell(const std::string& cell, const Rung& rung,
                   const Workload& work) {
  const auto run_rep = [&](Instruments& inst) {
    return cell == "pageload"
               ? run_pageload_rep(inst, work.pages, work.loads)
               : run_tier_rep(inst, work.tier_requests);
  };
  const bool is_off = !rung.metrics && !rung.traced;
  CellShard out;
  std::vector<double> pair_ratios;
  pair_ratios.reserve(work.reps);
  for (std::size_t rep = 0; rep < work.reps; ++rep) {
    // Both halves of the pair construct the same rung's instruments; the
    // baseline half is disarmed (null-sink contexts only), so the halves
    // differ purely in the per-call instrumentation work. Order alternates
    // per rep so a linear performance drift cancels out of the median.
    Instruments baseline(rung, /*seed=*/17);
    baseline.armed = false;
    Instruments inst(rung, /*seed=*/17);
    const auto timed = [&](Instruments& which) {
      const double before = thread_cpu_us();
      const std::uint64_t queries = run_rep(which);
      out.queries = queries;
      return thread_cpu_us() - before;
    };
    double cpu_off = 0.0, cpu = 0.0;
    if (is_off) {
      cpu = timed(inst);
      cpu_off = cpu;
    } else if (rep % 2 == 0) {
      cpu_off = timed(baseline);
      cpu = timed(inst);
    } else {
      cpu = timed(inst);
      cpu_off = timed(baseline);
    }
    pair_ratios.push_back(cpu_off > 0.0 ? cpu / cpu_off : 1.0);
    if (rep == 0) {
      inst.harvest(out);
      out.cpu_us_min = cpu;
      out.cpu_off_us_min = cpu_off;
    } else {
      if (cpu < out.cpu_us_min) out.cpu_us_min = cpu;
      if (cpu_off < out.cpu_off_us_min) out.cpu_off_us_min = cpu_off;
    }
  }
  // Each pair shares a thread and a moment in time, so drift cancels per
  // pair. The median is the central estimate; the minimum is the gate
  // estimator — interference only ever inflates a pair, so the least
  // perturbed pair bounds the true overhead from above, and a real
  // regression lifts every pair including the best one.
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const std::size_t n = pair_ratios.size();
  out.overhead_ratio = (n % 2 == 1)
                           ? pair_ratios[n / 2]
                           : 0.5 * (pair_ratios[n / 2 - 1] + pair_ratios[n / 2]);
  out.overhead_ratio_best = pair_ratios.front();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Workload work;
  work.pages = bench::flag(argc, argv, "pages", work.pages);
  work.loads = bench::flag(argc, argv, "loads", work.loads);
  work.tier_requests =
      bench::flag(argc, argv, "tier-requests", work.tier_requests);
  work.reps = bench::flag(argc, argv, "reps", work.reps);
  const std::size_t jobs = bench::jobs_flag(argc, argv, 1);
  const bool gate = !bench::flag_set(argc, argv, "no-gate");

  const std::array<const char*, 2> cells = {"pageload", "tier"};

  std::printf("=== Observability overhead: sampling ladder over page-load "
              "and tier workloads ===\n");
  std::printf("(pageload: %zu pages x %zu loads; tier: %zu requests; "
              "median over %zu rep pairs; %zu jobs)\n\n",
              work.pages, work.loads, work.tier_requests, work.reps, jobs);

  // One shard per (cell, rung); merged by index, so every deterministic
  // field is identical at any --jobs value.
  auto shards = bench::run_sharded<CellShard>(
      cells.size() * kRungs.size(), jobs, [&](std::size_t i) {
        const std::string cell = cells[i / kRungs.size()];
        return run_cell(cell, kRungs[i % kRungs.size()], work);
      });

  bench::BenchReport report("obs_overhead");
  bench::BenchReport digest("obs_overhead");
  for (auto* r : {&report, &digest}) {
    r->params["pages"] = static_cast<std::int64_t>(work.pages);
    r->params["loads"] = static_cast<std::int64_t>(work.loads);
    r->params["tier_requests"] = static_cast<std::int64_t>(work.tier_requests);
  }
  report.params["reps"] = static_cast<std::int64_t>(work.reps);

  obs::Registry full_registry;  ///< merged registries of the `full` rungs
  bool gates_ok = true;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::string cell = cells[c];
    const CellShard& off = shards[c * kRungs.size()];
    std::printf("--- %s (%llu queries/rep) ---\n", cell.c_str(),
                static_cast<unsigned long long>(off.queries));

    std::array<double, kRungs.size()> ratios{};
    std::array<double, kRungs.size()> best{};
    for (std::size_t r = 0; r < kRungs.size(); ++r) {
      const CellShard& shard = shards[c * kRungs.size() + r];
      const std::string key = cell + "/" + kRungs[r].name;
      const double cpu_per_query =
          shard.cpu_us_min / static_cast<double>(shard.queries);
      const double ratio = shard.overhead_ratio;
      ratios[r] = ratio;
      best[r] = shard.overhead_ratio_best;

      std::printf("%-12s cpu/query=%8.3fus  ratio=%6.3f (best %6.3f)  "
                  "spans=%-7llu sampled=%llu dropped=%llu\n",
                  kRungs[r].name, cpu_per_query, ratio, best[r],
                  static_cast<unsigned long long>(shard.spans),
                  static_cast<unsigned long long>(shard.spans_sampled),
                  static_cast<unsigned long long>(shard.spans_dropped));

      const auto u64 = [](std::uint64_t v) {
        return static_cast<std::int64_t>(v);
      };
      for (auto* r2 : {&report, &digest}) {
        r2->set(key, "queries", u64(shard.queries));
        r2->set(key, "spans", u64(shard.spans));
        r2->set(key, "open_spans", u64(shard.open_spans));
        r2->set(key, "spans_sampled", u64(shard.spans_sampled));
        r2->set(key, "spans_dropped", u64(shard.spans_dropped));
        r2->set(key, "pool_spans", u64(shard.pool.spans));
        r2->set(key, "pool_span_capacity", u64(shard.pool.span_capacity));
        r2->set(key, "pool_attr_entries", u64(shard.pool.attr_entries));
        r2->set(key, "pool_attr_capacity", u64(shard.pool.attr_capacity));
        r2->set(key, "pool_attr_wasted", u64(shard.pool.attr_wasted));
        r2->set(key, "pool_interned_names", u64(shard.pool.interned_names));
      }
      // Wall-clock derived: report only, never the digest.
      report.set(key, "cpu_us", shard.cpu_us_min);
      report.set(key, "cpu_off_us", shard.cpu_off_us_min);
      report.set(key, "cpu_per_query_us", cpu_per_query);
      report.set(key, "overhead_ratio", ratio);
      report.set(key, "overhead_ratio_best", best[r]);

      if (kRungs[r].traced) {
        full_registry.merge_from(shard.registry);
      }
    }

    // Gate 1: production-rate sampling costs <= 2% over fully off. Gated
    // on the best (least perturbed) pair: interference only inflates a
    // pair ratio, so the minimum bounds the true overhead from above and
    // a real regression lifts every pair, including this one.
    for (const char* rung : {"sampled256", "sampled64"}) {
      std::size_t r = 0;
      while (std::string(kRungs[r].name) != rung) ++r;
      const bool ok = best[r] <= 1.02;
      report.set("checks", cell + "_" + rung + "_within_2pct",
                 static_cast<std::int64_t>(ok ? 1 : 0));
      if (!ok) {
        std::printf("GATE FAIL %s/%s: best overhead ratio %.3f > 1.02\n",
                    cell.c_str(), rung, best[r]);
        gates_ok = false;
      }
    }
    // Gate 2: the ladder is monotone (8% inversion tolerance per step —
    // adjacent cheap rungs differ by less than the host's noise floor;
    // the gate protects the shape, off <= ... <= full, not percent drift).
    bool monotone = true;
    for (std::size_t r = 1; r < kRungs.size(); ++r) {
      if (ratios[r] < ratios[r - 1] * 0.92) monotone = false;
    }
    report.set("checks", cell + "_ladder_monotone",
               static_cast<std::int64_t>(monotone ? 1 : 0));
    if (!monotone) {
      std::printf("GATE FAIL %s: ladder not monotone "
                  "(off <= metrics <= sampled256 <= sampled64 <= full)\n",
                  cell.c_str());
      gates_ok = false;
    }
    std::printf("\n");
  }

  const std::string digest_path = bench::flag_str(argc, argv, "digest");
  if (!digest_path.empty()) {
    bench::write_file(digest_path, digest.to_json(&full_registry).dump() +
                                       "\n");
    std::printf("wrote %s\n", digest_path.c_str());
  }
  bench::finish(argc, argv, report, nullptr, &full_registry);

  if (gate && !gates_ok) {
    std::printf("self-gate FAILED (re-run with --no-gate to inspect)\n");
    return 1;
  }
  if (gate) std::printf("self-gates passed\n");
  return 0;
}
