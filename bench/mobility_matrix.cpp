// Mobility matrix: the §3 workload replayed while the client hops networks —
// periodic Wi-Fi <-> LTE handovers that swap the link profile (5ms <-> 40ms)
// and silently re-address the client (NAT rebind: every old 5-tuple is
// black-holed) — across a churn sweep x transport x recovery-policy ladder:
//
//   udp   naive     retransmission is the recovery story (baseline)
//   dot   naive     RetryPolicy only: every reconnect pays a full handshake
//   dot   resume    + TLS session cache: reconnects resume in 1 RTT
//   dot   race      + migration: stall+probe detection, happy-eyeballs racing
//   doh   naive/resume/race   same ladder over HTTP/2
//   doq   naive     migration-incapable server: re-addressing strands the
//                   connection until the query timeout tears it down
//   doq   migrate   real QUIC connection migration: PATH_CHALLENGE validates
//                   the new path, the handshake survives re-addressing
//
// Reported per cell: availability, resolution-time percentiles, and the
// amortization ledger — migrations, resumed vs full handshakes, handshake
// bytes/RTTs paid, racing bytes wasted. Self-gating (skipped under
// --no-gate, determinism always checked): the policy ladder must be
// monotone in availability at every churn rate, resumption must pay
// strictly fewer handshake bytes than naive under churn, DoQ migration must
// survive re-addressing with zero new handshakes, and the whole table must
// be a pure function of --seed (two grid runs, byte-identical).
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "core/doh_client.hpp"
#include "core/doq_client.hpp"
#include "core/dot_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/doq_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/netchange.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct ChurnRate {
  std::string name;
  simnet::TimeUs interval;  ///< 0 = no churn
};

std::vector<ChurnRate> churn_rates() {
  return {{"none", 0},
          {"60s", simnet::seconds(60)},
          {"10s", simnet::seconds(10)},
          {"2s", simnet::seconds(2)}};
}

struct Rung {
  const char* transport;
  const char* policy;
};

constexpr std::array<Rung, 9> kRungs = {{{"udp", "naive"},
                                         {"dot", "naive"},
                                         {"dot", "resume"},
                                         {"dot", "race"},
                                         {"doh", "naive"},
                                         {"doh", "resume"},
                                         {"doh", "race"},
                                         {"doq", "naive"},
                                         {"doq", "migrate"}}};

struct RunMetrics {
  std::size_t queries = 0;
  std::size_t ok = 0;
  std::vector<double> resolution_ms;
  core::RetryStats retry;
  core::MigrationStats migration;
  std::uint64_t udp_final_timeouts = 0;
  std::size_t churn_events = 0;
};

RunMetrics run(const ChurnRate& churn, const Rung& rung, std::uint64_t seed,
               std::size_t queries, double rate_qps,
               obs::Registry* registry = nullptr) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");

  simnet::LinkConfig wifi;
  wifi.latency = simnet::ms(5);
  simnet::LinkConfig lte;
  lte.latency = simnet::ms(40);
  net.connect(client.id(), server.id(), wifi);

  // Handover schedule: first hop at interval/2, then every interval until
  // the workload's horizon. Each hop = silent rebind + profile swap (the
  // swap is the OS-visible part change listeners react to).
  const simnet::TimeUs horizon =
      simnet::from_sec(static_cast<double>(queries) / rate_qps);
  std::size_t churn_events = 0;
  if (churn.interval > 0) {
    const auto schedule = simnet::NetworkChangeSchedule::periodic_handover(
        churn.interval / 2, churn.interval, horizon, wifi, lte);
    churn_events = schedule.changes().size() / 2;  // rebind + swap per hop
    simnet::apply_network_changes(client, server.id(), schedule);
  }

  const obs::SpanContext obs{nullptr, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  engine_config.upstream.processing = simnet::us(50);
  engine_config.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  resolver::Engine engine(loop, engine_config);

  const std::string transport = rung.transport;
  const std::string policy = rung.policy;
  const auto chain = tlssim::CertificateChain::generic("local.resolver");

  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<resolver::DotServer> dot_server;
  std::unique_ptr<resolver::DohServer> doh_server;
  std::unique_ptr<resolver::DoqServer> doq_server;
  if (transport == "udp") {
    udp_server = std::make_unique<resolver::UdpServer>(server, engine, 53);
  } else if (transport == "dot") {
    resolver::DotServerConfig config;
    config.tls.chain = chain;
    dot_server =
        std::make_unique<resolver::DotServer>(server, engine, config, 853);
  } else if (transport == "doh") {
    resolver::DohServerConfig config;
    config.tls.chain = chain;
    doh_server =
        std::make_unique<resolver::DohServer>(server, engine, config, 443);
  } else {
    resolver::DoqServerConfig config;
    config.tls.chain = chain;
    // The migrate rung gets a real RFC 9000 §9 server; the naive rung keeps
    // replying to the address that opened the connection.
    config.quic.allow_migration = policy == "migrate";
    doq_server =
        std::make_unique<resolver::DoqServer>(server, engine, config, 8853);
  }

  // Recovery knobs shared by the stateful transports: an 8-retry budget
  // with 100ms..1s backoff rides out every churn cadence; the 1s per-query
  // timeout is the naive rungs' only churn detector.
  core::RetryPolicy retry;
  retry.max_retries = 8;
  retry.backoff_initial = simnet::ms(100);
  retry.backoff_max = simnet::seconds(1);
  retry.query_timeout = simnet::seconds(1);
  retry.seed = seed ^ 0xbf58476d1ce4e5b9ULL;

  tlssim::SessionCache cache;
  const bool with_cache = policy == "resume" || policy == "race";
  core::MigrationConfig migration;
  migration.enabled = policy == "race" || policy == "migrate";

  std::unique_ptr<core::ResolverClient> stub;
  core::UdpResolverClient* udp = nullptr;
  core::DotClient* dot = nullptr;
  core::DohClient* doh = nullptr;
  core::DoqClient* doq = nullptr;
  if (transport == "udp") {
    core::UdpClientConfig config;
    config.obs = obs;
    config.timeout = simnet::seconds(1);
    config.max_retries = 8;
    auto c = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 53}, config);
    udp = c.get();
    stub = std::move(c);
  } else if (transport == "dot") {
    core::DotClientConfig config;
    config.obs = obs;
    config.server_name = "local.resolver";
    config.retry = retry;
    config.migration = migration;
    if (with_cache) config.session_cache = &cache;
    auto c = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853}, config);
    dot = c.get();
    stub = std::move(c);
  } else if (transport == "doh") {
    core::DohClientConfig config;
    config.obs = obs;
    config.server_name = "local.resolver";
    config.http_version = core::HttpVersion::kHttp2;
    config.retry = retry;
    config.migration = migration;
    if (with_cache) config.session_cache = &cache;
    auto c = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443}, config);
    doh = c.get();
    stub = std::move(c);
  } else {
    core::DoqClientConfig config;
    config.obs = obs;
    config.server_name = "local.resolver";
    config.retry = retry;
    config.migration = migration;
    auto c = std::make_unique<core::DoqClient>(
        client, simnet::Address{server.id(), 8853}, config);
    doq = c.get();
    stub = std::move(c);
  }

  workload::UniqueNameGenerator names("example.com", seed ^ 77);
  stats::PoissonArrivals arrivals(rate_qps, seed ^ 13);
  const auto times = arrivals.arrival_times(queries);

  std::vector<std::uint64_t> ids(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const dns::Name name = names.next();
    loop.schedule_at(simnet::from_sec(times[i]), [&, i, name]() {
      ids[i] = stub->resolve(name, dns::RType::kA, {});
    });
  }
  loop.run();

  RunMetrics m;
  m.queries = queries;
  m.churn_events = churn_events;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto& r = stub->result(ids[i]);
    if (r.success && r.response.flags.rcode == dns::Rcode::kNoError) {
      ++m.ok;
      m.resolution_ms.push_back(
          static_cast<double>(r.resolution_time()) / 1e3);
    }
  }
  if (udp != nullptr) m.udp_final_timeouts = udp->timeouts();
  if (dot != nullptr) {
    m.retry = dot->retry_stats();
    m.migration = dot->migration_stats();
  }
  if (doh != nullptr) {
    m.retry = doh->retry_stats();
    m.migration = doh->migration_stats();
  }
  if (doq != nullptr) {
    m.retry = doq->retry_stats();
    m.migration = doq->migration_stats();
  }
  return m;
}

/// One cell of the grid plus its private metrics registry (merged into the
/// global registry in cell order, so the merged result is --jobs-invariant).
// detlint: hot-slot
struct alignas(64) Cell {
  RunMetrics metrics;
  obs::Registry registry;
};

std::vector<Cell> run_grid(std::uint64_t seed, std::size_t queries,
                           double rate_qps, std::size_t jobs,
                           bool with_registry) {
  const auto churns = churn_rates();
  return bench::run_sharded<Cell>(
      churns.size() * kRungs.size(), jobs, [&](std::size_t i) {
        Cell cell;
        cell.metrics =
            run(churns[i / kRungs.size()], kRungs[i % kRungs.size()], seed,
                queries, rate_qps, with_registry ? &cell.registry : nullptr);
        return cell;
      });
}

std::string render_matrix(const std::vector<Cell>& cells,
                          bench::BenchReport* json_report = nullptr) {
  stats::TextTable table;
  table.add_row({"churn", "transport", "policy", "avail%", "p50(ms)",
                 "p99(ms)", "migr", "resumed", "full-hs", "hs-bytes",
                 "hs-rtts", "wasted", "retries"});
  std::size_t cell_index = 0;
  for (const auto& churn : churn_rates()) {
    for (const Rung& rung : kRungs) {
      const RunMetrics& m = cells[cell_index++].metrics;
      const double pct =
          m.queries == 0 ? 0.0
                         : 100.0 * static_cast<double>(m.ok) /
                               static_cast<double>(m.queries);
      const auto pctl = [&](double p) {
        return m.resolution_ms.empty()
                   ? std::string("-")
                   : stats::format_double(
                         stats::percentile(m.resolution_ms, p), 1);
      };
      table.add_row({churn.name, rung.transport, rung.policy,
                     stats::format_double(pct, 1), pctl(50), pctl(99),
                     std::to_string(m.migration.migrations),
                     std::to_string(m.migration.resumed_handshakes),
                     std::to_string(m.migration.full_handshakes),
                     std::to_string(m.migration.handshake_bytes),
                     std::to_string(m.migration.handshake_rtts),
                     std::to_string(m.migration.migration_wasted_bytes),
                     std::to_string(m.retry.retried_queries)});
      if (json_report != nullptr) {
        const std::string key = churn.name + "/" + rung.transport + "/" +
                                rung.policy;
        json_report->set(key, "ok", static_cast<std::int64_t>(m.ok));
        json_report->set(key, "avail_pct", pct);
        json_report->set(key, "resolution_ms",
                         bench::box_json(m.resolution_ms));
        json_report->set(key, "churn_events",
                         static_cast<std::int64_t>(m.churn_events));
        json_report->set(key, "migrations",
                         static_cast<std::int64_t>(m.migration.migrations));
        json_report->set(
            key, "migration_wasted_bytes",
            static_cast<std::int64_t>(m.migration.migration_wasted_bytes));
        json_report->set(
            key, "resumed_handshakes",
            static_cast<std::int64_t>(m.migration.resumed_handshakes));
        json_report->set(
            key, "full_handshakes",
            static_cast<std::int64_t>(m.migration.full_handshakes));
        json_report->set(
            key, "handshake_bytes",
            static_cast<std::int64_t>(m.migration.handshake_bytes));
        json_report->set(
            key, "handshake_rtts",
            static_cast<std::int64_t>(m.migration.handshake_rtts));
        json_report->set(key, "retries", static_cast<std::int64_t>(
                                             m.retry.retried_queries));
        json_report->set(key, "reconnects",
                         static_cast<std::int64_t>(m.retry.reconnects));
        json_report->set(
            key, "timeouts",
            static_cast<std::int64_t>(m.udp_final_timeouts +
                                      m.retry.query_timeouts));
      }
    }
  }
  return table.render();
}

const RunMetrics& cell_at(const std::vector<Cell>& cells, std::size_t churn,
                          std::size_t rung) {
  return cells[churn * kRungs.size() + rung].metrics;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 600);
  const std::uint64_t seed = bench::flag(argc, argv, "seed", 7);
  const std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());
  // --no-gate: reduced workloads (e.g. TSan CI) shrink the horizon below
  // the slow churn intervals, so the churn-dependent gates can't hold.
  const bool no_gate = bench::flag_set(argc, argv, "no-gate");
  const double rate_qps = 10.0;

  std::printf("=== Mobility matrix: network churn x transport x recovery "
              "policy ===\n");
  std::printf("(%zu unique names, Poisson %.0f q/s, seed %llu; each handover "
              "= silent NAT rebind + Wi-Fi<->LTE profile swap)\n\n",
              queries, rate_qps, static_cast<unsigned long long>(seed));

  obs::Registry registry;
  bench::BenchReport json_report("mobility_matrix");
  json_report.params["queries"] = static_cast<std::int64_t>(queries);
  json_report.params["seed"] = static_cast<std::int64_t>(seed);

  const auto cells = run_grid(seed, queries, rate_qps, jobs, true);
  for (const auto& cell : cells) registry.merge_from(cell.registry);
  const std::string first = render_matrix(cells, &json_report);
  const std::string second =
      render_matrix(run_grid(seed, queries, rate_qps, jobs, false));
  std::fputs(first.c_str(), stdout);
  std::printf("\ndeterminism check (two full grid runs, same seed): %s\n",
              first == second ? "PASS - byte-identical" : "FAIL");

  const auto churns = churn_rates();
  // Rung indices into kRungs.
  constexpr std::size_t kDotNaive = 1, kDotResume = 2, kDotRace = 3;
  constexpr std::size_t kDohNaive = 4, kDohResume = 5, kDohRace = 6;
  constexpr std::size_t kDoqNaive = 7, kDoqMigrate = 8;

  // Gate 1: at every churn rate the policy ladder is monotone in
  // availability (ties allowed) — more machinery never answers less.
  bool ladder_ok = true;
  for (std::size_t c = 0; c < churns.size(); ++c) {
    const auto check = [&](std::size_t lo, std::size_t hi) {
      if (cell_at(cells, c, lo).ok > cell_at(cells, c, hi).ok) {
        std::printf("ladder check FAIL: churn=%s %s/%s ok=%zu > %s/%s "
                    "ok=%zu\n",
                    churns[c].name.c_str(), kRungs[lo].transport,
                    kRungs[lo].policy, cell_at(cells, c, lo).ok,
                    kRungs[hi].transport, kRungs[hi].policy,
                    cell_at(cells, c, hi).ok);
        ladder_ok = false;
      }
    };
    check(kDotNaive, kDotResume);
    check(kDotResume, kDotRace);
    check(kDohNaive, kDohResume);
    check(kDohResume, kDohRace);
    check(kDoqNaive, kDoqMigrate);
  }
  std::printf("ladder check (availability monotone up the policy ladder at "
              "every churn rate): %s\n",
              ladder_ok ? "PASS" : "FAIL");

  // Gate 2: under churn, session resumption pays strictly fewer handshake
  // bytes (and no more handshake RTTs) than the full-handshake rung, and
  // actually resumed at least once.
  bool resume_ok = true;
  for (std::size_t c = 0; c < churns.size(); ++c) {
    if (churns[c].interval == 0) continue;
    for (const auto& [naive, resume] :
         {std::pair{kDotNaive, kDotResume}, {kDohNaive, kDohResume}}) {
      const auto& n = cell_at(cells, c, naive).migration;
      const auto& r = cell_at(cells, c, resume).migration;
      if (r.resumed_handshakes == 0 || r.handshake_bytes >= n.handshake_bytes ||
          r.handshake_rtts > n.handshake_rtts) {
        std::printf("resumption check FAIL: churn=%s %s resumed=%llu "
                    "bytes=%llu vs naive bytes=%llu rtts=%llu vs %llu\n",
                    churns[c].name.c_str(), kRungs[resume].transport,
                    static_cast<unsigned long long>(r.resumed_handshakes),
                    static_cast<unsigned long long>(r.handshake_bytes),
                    static_cast<unsigned long long>(n.handshake_bytes),
                    static_cast<unsigned long long>(r.handshake_rtts),
                    static_cast<unsigned long long>(n.handshake_rtts));
        resume_ok = false;
      }
    }
  }
  std::printf("resumption check (under churn: strictly fewer handshake bytes "
              "than naive, no extra RTTs): %s\n",
              resume_ok ? "PASS" : "FAIL");

  // Gate 3: real QUIC migration — under churn the DoQ connection survives
  // every re-addressing: exactly the one original handshake, and at least
  // one validated path migration.
  bool doq_ok = true;
  for (std::size_t c = 0; c < churns.size(); ++c) {
    if (churns[c].interval == 0) continue;
    const auto& m = cell_at(cells, c, kDoqMigrate).migration;
    if (m.full_handshakes != 1 || m.migrations == 0) {
      std::printf("doq migration check FAIL: churn=%s full_handshakes=%llu "
                  "migrations=%llu\n",
                  churns[c].name.c_str(),
                  static_cast<unsigned long long>(m.full_handshakes),
                  static_cast<unsigned long long>(m.migrations));
      doq_ok = false;
    }
  }
  std::printf("doq migration check (connection survives re-addressing with "
              "zero new handshakes): %s\n",
              doq_ok ? "PASS" : "FAIL");

  json_report.set("checks", "determinism",
                  std::string(first == second ? "PASS" : "FAIL"));
  json_report.set("checks", "ladder", std::string(ladder_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "resumption",
                  std::string(resume_ok ? "PASS" : "FAIL"));
  json_report.set("checks", "doq_migration",
                  std::string(doq_ok ? "PASS" : "FAIL"));
  bench::finish(argc, argv, json_report, nullptr, &registry);
  if (no_gate) {
    std::printf("(--no-gate: churn gates reported but not enforced)\n");
  }
  const bool gates_ok = ladder_ok && resume_ok && doq_ok;
  return first == second && (no_gate || gates_ok) ? 0 : 1;
}
