// Shared driver for Figures 3, 4 and 5: resolve a corpus of Alexa-derived
// names through the six §4 scenarios —
//   U/CF  U/GO   legacy UDP DNS against Cloudflare-/Google-like resolvers
//   H/CF  H/GO   DoH (HTTP/2), one fresh connection per query
//   HP/CF HP/GO  DoH (HTTP/2), persistent connection
// and collect the per-resolution CostReport.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "workload/alexa.hpp"

namespace dohperf::bench {

struct ScenarioCosts {
  std::string label;
  std::vector<core::CostReport> costs;
};

/// The corpus: unique domains of the first Alexa-model pages, capped at
/// `max_names` (the paper resolved all 281,414 names; a few thousand give
/// the same distributions).
inline std::vector<dns::Name> corpus_names(std::size_t max_names) {
  workload::AlexaPageModel model;
  std::vector<dns::Name> names;
  std::set<dns::Name> seen;
  for (std::size_t rank = 1; names.size() < max_names; ++rank) {
    for (const auto& domain : model.page(rank).unique_domains()) {
      if (seen.insert(domain).second) {
        names.push_back(domain);
        if (names.size() >= max_names) break;
      }
    }
  }
  return names;
}

/// Run one scenario over `names`; provider is "CF" or "GO". When a tracer
/// and/or registry are supplied, the scenario's clients record spans and
/// metrics into them (the tracer is re-bound to this scenario's clock, so
/// one tracer can collect several scenarios into a single export).
inline ScenarioCosts run_scenario(const std::string& label,
                                  const std::string& transport,  // U/H/HP
                                  const std::string& provider,
                                  const std::vector<dns::Name>& names,
                                  obs::Tracer* tracer = nullptr,
                                  obs::Registry* registry = nullptr) {
  simnet::EventLoop loop;
  simnet::Network net(loop, /*seed=*/21);
  simnet::Host client(net, "client");
  simnet::Host server(net, provider);
  simnet::LinkConfig link;
  link.latency = provider == "CF" ? simnet::ms(4) : simnet::ms(6);
  net.connect(client.id(), server.id(), link);

  if (tracer != nullptr) tracer->bind(loop);
  const obs::SpanContext obs{tracer, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  if (provider == "GO") {
    // Google answers with several A records and an ECS option, so its DNS
    // bodies (and thus per-resolution bytes) run larger than Cloudflare's.
    engine_config.answer_count = 4;
    engine_config.ecs_option = true;
  }
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(server, engine, 53);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = provider == "CF"
                             ? tlssim::CertificateChain::cloudflare()
                             : tlssim::CertificateChain::google();
  resolver::DohServer doh_server(server, engine, doh_config, 443);

  ScenarioCosts out;
  out.label = label;
  out.costs.reserve(names.size());

  if (transport == "U") {
    core::UdpClientConfig udp_config;
    udp_config.obs = obs;
    core::UdpResolverClient resolver(client, {server.id(), 53}, udp_config);
    for (const auto& name : names) {
      const auto id = resolver.resolve(name, dns::RType::kA, {});
      loop.run();
      out.costs.push_back(resolver.result(id).cost);
    }
    return out;
  }

  core::DohClientConfig config;
  config.server_name = provider == "CF" ? "cloudflare-dns.com"
                                        : "dns.google.com";
  config.persistent = transport == "HP";
  config.obs = obs;
  core::DohClient resolver(client, {server.id(), 443}, config);
  for (const auto& name : names) {
    const auto id = resolver.resolve(name, dns::RType::kA, {});
    loop.run();  // drains teardown for fresh connections
    out.costs.push_back(resolver.result(id).cost);
  }
  return out;
}

/// All six scenarios of Figures 3-4.
inline std::vector<ScenarioCosts> run_all_scenarios(
    std::size_t max_names, obs::Tracer* tracer = nullptr,
    obs::Registry* registry = nullptr) {
  const auto names = corpus_names(max_names);
  return {
      run_scenario("U/CF", "U", "CF", names, tracer, registry),
      run_scenario("U/GO", "U", "GO", names, tracer, registry),
      run_scenario("H/CF", "H", "CF", names, tracer, registry),
      run_scenario("H/GO", "H", "GO", names, tracer, registry),
      run_scenario("HP/CF", "HP", "CF", names, tracer, registry),
      run_scenario("HP/GO", "HP", "GO", names, tracer, registry),
  };
}

}  // namespace dohperf::bench
