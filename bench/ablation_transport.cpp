// Ablation: the two transport design choices §3 identifies as decisive —
//   * DoT out-of-order responses (Cloudflare-style) vs in-order (everyone
//     else in 2019): does OOO fix DoT's head-of-line blocking?
//   * HTTP/1.1 pipelining on vs off: what did pipelining actually buy?
// Same workload as Figure 2 (100 names, Poisson 10 q/s, 1-in-25 delayed).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct Outcome {
  double median_ms;
  double p90_ms;
  std::size_t over_100ms;
};

Outcome run(const std::string& variant, std::size_t queries,
            obs::Registry* registry) {
  simnet::EventLoop loop;
  simnet::Network net(loop, 5);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::us(150);
  net.connect(client.id(), server.id(), link);

  const obs::SpanContext obs{nullptr, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  engine_config.upstream.processing = simnet::us(50);
  engine_config.delay_policy.every_n = 25;
  engine_config.delay_policy.delay = simnet::ms(1000);
  resolver::Engine engine(loop, engine_config);

  resolver::DotServerConfig dot_config;
  dot_config.out_of_order = variant == "dot-ooo";
  resolver::DotServer dot(server, engine, dot_config, 853);
  resolver::DohServerConfig doh_config;
  resolver::DohServer doh(server, engine, doh_config, 443);

  std::unique_ptr<core::ResolverClient> resolver_client;
  if (variant.rfind("dot", 0) == 0) {
    core::DotClientConfig config;
    config.obs = obs;
    resolver_client = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853}, config);
  } else {
    core::DohClientConfig config;
    config.obs = obs;
    config.http_version = core::HttpVersion::kHttp1;
    config.h1_pipelining = variant == "h1-pipelined";
    resolver_client = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443}, config);
  }

  workload::UniqueNameGenerator names("example.com", 77);
  stats::PoissonArrivals arrivals(10.0, 13);
  const auto times = arrivals.arrival_times(queries);
  std::vector<double> res_ms(queries, 0.0);
  for (std::size_t i = 0; i < queries; ++i) {
    loop.schedule_at(simnet::from_sec(times[i]), [&, i, name = names.next()]() {
      resolver_client->resolve(name, dns::RType::kA,
                               [&, i](const core::ResolutionResult& r) {
                                 res_ms[i] =
                                     simnet::to_ms(r.resolution_time());
                               });
    });
  }
  loop.run();

  Outcome out;
  out.median_ms = stats::percentile(res_ms, 50);
  out.p90_ms = stats::percentile(res_ms, 90);
  out.over_100ms = 0;
  for (const double t : res_ms) {
    if (t > 100.0) ++out.over_100ms;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 100);
  std::printf("=== Ablation: transport design choices under delayed queries "
              "===\n");
  std::printf("(fig2 workload: %zu queries, 1 in 25 delayed by 1000ms)\n\n",
              queries);
  obs::Registry registry;
  bench::BenchReport report("ablation_transport");
  report.params["queries"] = static_cast<std::int64_t>(queries);

  std::printf("%-22s %10s %10s %14s\n", "variant", "median", "p90",
              "queries>100ms");
  for (const char* variant :
       {"dot-inorder", "dot-ooo", "h1-pipelined", "h1-serial"}) {
    const auto o = run(variant, queries, &registry);
    std::printf("%-22s %8.2fms %8.2fms %10zu\n", variant, o.median_ms,
                o.p90_ms, o.over_100ms);
    report.set(variant, "median_ms", o.median_ms);
    report.set(variant, "p90_ms", o.p90_ms);
    report.set(variant, "over_100ms",
               static_cast<std::int64_t>(o.over_100ms));
  }
  std::printf(
      "\nOut-of-order DoT (only Cloudflare implemented it in 2019) removes\n"
      "the blocking entirely — supporting the paper's argument that the\n"
      "complexity of reimplementing stream multiplexing inside DoT is why\n"
      "DoT lost to DoH/2. Serial (unpipelined) HTTP/1.1 avoids *response*\n"
      "blocking but pays queueing delay at 10 q/s instead.\n");
  bench::finish(argc, argv, report, nullptr, &registry);
  return 0;
}
