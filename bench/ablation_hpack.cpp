// Ablation: how much of the persistent-connection header savings in Fig 5
// comes from HPACK's *dynamic table* (the "differential headers" feature)?
// Runs the HP/CF scenario with the dynamic table enabled and disabled and
// compares per-resolution HTTP header bytes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/doh_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "workload/alexa.hpp"

namespace {

using namespace dohperf;

std::vector<double> run(bool dynamic_table, const std::vector<dns::Name>& names) {
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "client");
  simnet::Host server(net, "CF");
  simnet::LinkConfig link;
  link.latency = simnet::ms(4);
  net.connect(client.id(), server.id(), link);

  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh(server, engine, server_config, 443);

  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.h2.enable_hpack_dynamic_table = dynamic_table;
  core::DohClient resolver(client, {server.id(), 443}, config);

  std::vector<double> header_bytes;
  for (const auto& name : names) {
    const auto id = resolver.resolve(name, dns::RType::kA, {});
    loop.run();
    header_bytes.push_back(
        static_cast<double>(resolver.result(id).cost.http_header_bytes));
  }
  return header_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count = bench::flag(argc, argv, "names", 500);
  workload::AlexaPageModel model;
  std::vector<dns::Name> names;
  for (std::size_t rank = 1; names.size() < count; ++rank) {
    for (const auto& d : model.page(rank).unique_domains()) {
      names.push_back(d);
      if (names.size() >= count) break;
    }
  }

  std::printf("=== Ablation: HPACK dynamic table (persistent DoH/2, "
              "Cloudflare, %zu names) ===\n\n", count);
  const auto with_table = run(true, names);
  const auto without_table = run(false, names);
  bench::print_box("dynamic table ON", with_table, "B hdr/resolution");
  bench::print_box("dynamic table OFF", without_table, "B hdr/resolution");
  std::printf("\nmedian savings from differential headers: %.0f B per "
              "resolution (%.0f%%)\n",
              stats::median(without_table) - stats::median(with_table),
              100.0 * (1.0 - stats::median(with_table) /
                                 stats::median(without_table)));

  bench::BenchReport report("ablation_hpack");
  report.params["names"] = static_cast<std::int64_t>(count);
  report.set("dynamic_table_on", "http_header_bytes",
             bench::box_json(with_table));
  report.set("dynamic_table_off", "http_header_bytes",
             bench::box_json(without_table));
  bench::finish(argc, argv, report);
  return 0;
}
