// Availability matrix: the graceful-degradation ladder under resolver
// outages. A Zipf-popular workload (hot names repeat, so a cache can help —
// unlike the §3 unique-name workload) is replayed against a primary DoH
// resolver that suffers injected faults, through four client stacks of
// increasing resilience:
//
//   no-cache            DoH client straight at the primary
//   cache               + TTL cache (negative caching, coalescing)
//   cache+stale         + RFC 8767 serve-stale and proactive refresh
//   cache+stale+hedge   + hedged resolution against a clean backup resolver
//
// Scenarios:
//   outage-6s      the primary link black-holes every packet for 6s mid-run
//   bursty-loss    Gilbert–Elliott loss on the primary link (60% in-burst)
//   restart-2s     the primary resolver crashes (RST storm) for 2s
//   stall-20       the primary accepts but never answers 20% of queries
//
// A query counts as *available* when it resolved NOERROR within the 2s
// answer deadline — a stale answer counts (that is the point of RFC 8767),
// and its staleness age is reported separately so the freshness cost of the
// availability win stays visible. The harness gates the headline claim: per
// scenario the ladder must improve monotonically, and under the standard
// outage the full stack must stay >= 99% available.
//
// Every random draw (arrivals, Zipf ranks, loss, faults, backoff jitter)
// comes from seeded generators over virtual time, so the whole table is a
// pure function of --seed: the harness runs the grid twice and verifies the
// two renderings are byte-identical before printing, and shards (one per
// cell) merge by index so --jobs=N output matches serial byte-for-byte.
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "core/caching_client.hpp"
#include "core/doh_client.hpp"
#include "core/hedging_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "simnet/fault.hpp"

namespace {

using namespace dohperf;

/// The user-visible answer deadline availability is measured against.
constexpr simnet::TimeUs kDeadline = simnet::seconds(2);

struct Scenario {
  std::string name;
  resolver::FaultPolicy engine_faults{};
  simnet::GilbertElliott gilbert_elliott{};
  simnet::FaultSchedule link_faults{};
  simnet::TimeUs restart_at = 0;  ///< 0 = no server restart
  simnet::TimeUs restart_downtime = 0;
  bool gated = false;  ///< the >=99% top-rung availability gate applies
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;

  Scenario outage{.name = "outage-6s"};
  outage.link_faults.add_outage(simnet::seconds(5), simnet::seconds(6));
  outage.gated = true;
  all.push_back(std::move(outage));

  Scenario bursty{.name = "bursty-loss"};
  bursty.gilbert_elliott.enabled = true;
  bursty.gilbert_elliott.p_good_to_bad = 0.02;
  bursty.gilbert_elliott.p_bad_to_good = 0.2;
  bursty.gilbert_elliott.loss_good = 0.0;
  bursty.gilbert_elliott.loss_bad = 0.6;
  all.push_back(std::move(bursty));

  Scenario restart{.name = "restart-2s"};
  restart.restart_at = simnet::seconds(5);
  restart.restart_downtime = simnet::seconds(2);
  all.push_back(std::move(restart));

  Scenario stall{.name = "stall-20"};
  stall.engine_faults.stall_rate = 0.20;
  all.push_back(std::move(stall));

  return all;
}

/// The degradation ladder, least to most resilient. The gate checks that
/// availability is monotone along this order.
constexpr std::array<const char*, 4> kRungs = {"no-cache", "cache",
                                               "cache+stale",
                                               "cache+stale+hedge"};

struct RunMetrics {
  std::size_t queries = 0;
  std::size_t available = 0;      ///< NOERROR within the 2s deadline
  std::size_t stale_answers = 0;  ///< available via an expired entry
  std::vector<double> staleness_ms;   ///< age past TTL of each stale answer
  std::vector<double> resolution_ms;  ///< all queries, answered or failed
  core::CacheStats cache;
  core::HedgeStats hedge;
};

/// One cell: `rung` is an entry of kRungs.
RunMetrics run(const Scenario& scenario, const std::string& rung,
               std::uint64_t seed, std::size_t queries, double rate_qps,
               obs::Registry* registry = nullptr) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host primary_host(net, "primary");
  simnet::Host backup_host(net, "backup");

  // Faults strike only the primary path; the backup is farther away but
  // clean — the asymmetry hedging is designed to exploit.
  simnet::LinkConfig primary_link;
  primary_link.latency = simnet::ms(5);
  primary_link.gilbert_elliott = scenario.gilbert_elliott;
  net.connect(client.id(), primary_host.id(), primary_link);
  if (!scenario.link_faults.empty()) {
    net.inject_faults(client.id(), primary_host.id(), scenario.link_faults);
  }
  simnet::LinkConfig backup_link;
  backup_link.latency = simnet::ms(12);
  net.connect(client.id(), backup_host.id(), backup_link);

  const obs::SpanContext obs{nullptr, 0, registry};

  // Short TTLs so entries expire inside the 6s outage: the cache rung must
  // actually degrade, and serve-stale must be what rescues the next rung.
  resolver::EngineConfig primary_config;
  primary_config.obs = obs;
  primary_config.ttl = 4;
  primary_config.upstream.processing = simnet::us(50);
  primary_config.faults = scenario.engine_faults;
  primary_config.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  resolver::Engine primary_engine(loop, primary_config);

  resolver::EngineConfig backup_config;
  backup_config.obs = obs;
  backup_config.ttl = 4;
  backup_config.upstream.processing = simnet::us(50);
  backup_config.seed = seed ^ 0xc2b2ae3d27d4eb4fULL;
  resolver::Engine backup_engine(loop, backup_config);

  resolver::DohServerConfig primary_doh_config;
  primary_doh_config.tls.chain =
      tlssim::CertificateChain::generic("primary.resolver");
  resolver::DohServer primary_server(primary_host, primary_engine,
                                     primary_doh_config, 443);
  resolver::DohServerConfig backup_doh_config;
  backup_doh_config.tls.chain =
      tlssim::CertificateChain::generic("backup.resolver");
  resolver::DohServer backup_server(backup_host, backup_engine,
                                    backup_doh_config, 443);

  if (scenario.restart_at > 0) {
    loop.schedule_at(scenario.restart_at, [&]() {
      primary_server.restart(scenario.restart_downtime);
    });
  }

  core::RetryPolicy retry;
  retry.max_retries = 6;
  retry.backoff_initial = simnet::ms(100);
  retry.backoff_max = simnet::seconds(1);
  retry.query_timeout = simnet::seconds(2);
  retry.seed = seed ^ 0xbf58476d1ce4e5b9ULL;

  core::DohClientConfig primary_client_config;
  primary_client_config.obs = obs;
  primary_client_config.server_name = "primary.resolver";
  primary_client_config.http_version = core::HttpVersion::kHttp2;
  primary_client_config.retry = retry;
  core::DohClient primary_doh(client, simnet::Address{primary_host.id(), 443},
                              primary_client_config);

  core::DohClientConfig backup_client_config;
  backup_client_config.obs = obs;
  backup_client_config.server_name = "backup.resolver";
  backup_client_config.http_version = core::HttpVersion::kHttp2;
  backup_client_config.retry = retry;
  backup_client_config.retry.seed = seed ^ 0x94d049bb133111ebULL;
  core::DohClient backup_doh(client, simnet::Address{backup_host.id(), 443},
                             backup_client_config);

  // Ladder assembly. The stale-enabled cache keeps expired entries for 30s,
  // answers from them 400ms into a failing refresh, and refreshes hot
  // entries 1s ahead of expiry.
  core::CacheConfig cache_config;
  cache_config.obs = obs;
  if (rung == "cache+stale" || rung == "cache+stale+hedge") {
    cache_config.max_stale = simnet::seconds(30);
    cache_config.stale_serve_delay = simnet::ms(400);
    cache_config.refresh_ahead = simnet::seconds(1);
  }
  core::HedgeConfig hedge_config;
  hedge_config.obs = obs;
  hedge_config.hedge_delay = simnet::ms(400);
  hedge_config.hedge_budget_permille = 900;

  std::unique_ptr<core::HedgingResolverClient> hedging;
  std::unique_ptr<core::CachingResolverClient> cache;
  core::ResolverClient* stub = &primary_doh;
  if (rung == "cache+stale+hedge") {
    hedging = std::make_unique<core::HedgingResolverClient>(
        loop, primary_doh, backup_doh, hedge_config);
    cache = std::make_unique<core::CachingResolverClient>(loop, *hedging,
                                                          cache_config);
    stub = cache.get();
  } else if (rung != "no-cache") {
    cache = std::make_unique<core::CachingResolverClient>(loop, primary_doh,
                                                          cache_config);
    stub = cache.get();
  }

  // Zipf-popular names (hot names repeat) at a steady Poisson rate: the
  // workload where a resilience cache earns its keep.
  constexpr std::size_t kNames = 40;
  stats::ZipfSampler zipf(kNames, 1.1, seed ^ 101);
  std::vector<dns::Name> names;
  names.reserve(kNames);
  for (std::size_t i = 0; i < kNames; ++i) {
    names.push_back(dns::Name::parse("w" + std::to_string(i) +
                                     ".example.com"));
  }
  stats::PoissonArrivals arrivals(rate_qps, seed ^ 13);
  const auto times = arrivals.arrival_times(queries);

  std::vector<std::uint64_t> ids(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const dns::Name name = names[zipf.sample() - 1];
    loop.schedule_at(simnet::from_sec(times[i]), [&, i, name]() {
      ids[i] = stub->resolve(name, dns::RType::kA, {});
    });
  }
  loop.run();

  RunMetrics m;
  m.queries = queries;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto& r = stub->result(ids[i]);
    m.resolution_ms.push_back(static_cast<double>(r.resolution_time()) / 1e3);
    const bool ok = r.success &&
                    r.response.flags.rcode == dns::Rcode::kNoError &&
                    r.resolution_time() <= kDeadline;
    if (!ok) continue;
    ++m.available;
    if (cache != nullptr) {
      const simnet::TimeUs age = cache->staleness_age(ids[i]);
      if (age > 0) {
        ++m.stale_answers;
        m.staleness_ms.push_back(static_cast<double>(age) / 1e3);
      }
    }
  }
  if (cache != nullptr) m.cache = cache->stats();
  if (hedging != nullptr) m.hedge = hedging->stats();
  return m;
}

/// One cell of the grid plus its private metrics registry (merged into the
/// global registry in cell order, so the merged result is --jobs-invariant).
// detlint: hot-slot
struct alignas(64) Cell {
  RunMetrics metrics;
  obs::Registry registry;
};

std::vector<Cell> run_grid(std::uint64_t seed, std::size_t queries,
                           double rate_qps, std::size_t jobs,
                           bool with_registry) {
  const auto grid = scenarios();
  return bench::run_sharded<Cell>(
      grid.size() * kRungs.size(), jobs, [&](std::size_t i) {
        Cell cell;
        cell.metrics =
            run(grid[i / kRungs.size()], kRungs[i % kRungs.size()], seed,
                queries, rate_qps, with_registry ? &cell.registry : nullptr);
        return cell;
      });
}

double availability_pct(const RunMetrics& m) {
  return m.queries == 0 ? 0.0
                        : 100.0 * static_cast<double>(m.available) /
                              static_cast<double>(m.queries);
}

std::string render_matrix(const std::vector<Cell>& cells,
                          bench::BenchReport* json_report = nullptr) {
  stats::TextTable table;
  table.add_row({"scenario", "rung", "avail%", "stale%", "stale-age-p50(s)",
                 "p50(ms)", "p99(ms)", "upstream", "coalesced", "hedges"});
  std::size_t cell_index = 0;
  for (const auto& scenario : scenarios()) {
    for (const char* rung : kRungs) {
      const RunMetrics& m = cells[cell_index++].metrics;
      const double avail = availability_pct(m);
      const double stale_pct =
          m.queries == 0 ? 0.0
                         : 100.0 * static_cast<double>(m.stale_answers) /
                               static_cast<double>(m.queries);
      const auto pctl = [&](const std::vector<double>& xs, double p) {
        return xs.empty() ? std::string("-")
                          : stats::format_double(stats::percentile(xs, p), 1);
      };
      // Upstream query count: for the bare-DoH rung every query is its own
      // upstream query by definition.
      const std::uint64_t upstream = std::string(rung) == "no-cache"
                                         ? m.queries
                                         : m.cache.upstream_queries;
      const auto stale_age_p50 =
          m.staleness_ms.empty()
              ? std::string("-")
              : stats::format_double(
                    stats::percentile(m.staleness_ms, 50) / 1e3, 1);
      table.add_row({scenario.name, rung, stats::format_double(avail, 1),
                     stats::format_double(stale_pct, 1), stale_age_p50,
                     pctl(m.resolution_ms, 50), pctl(m.resolution_ms, 99),
                     std::to_string(upstream),
                     std::to_string(m.cache.coalesced),
                     std::to_string(m.hedge.hedges_issued)});
      if (json_report != nullptr) {
        const std::string key = scenario.name + "/" + rung;
        json_report->set(key, "available",
                         static_cast<std::int64_t>(m.available));
        json_report->set(key, "availability_pct", avail);
        json_report->set(key, "stale_answers",
                         static_cast<std::int64_t>(m.stale_answers));
        json_report->set(key, "stale_pct", stale_pct);
        stats::Cdf staleness;
        staleness.add_all(m.staleness_ms);
        json_report->set(key, "staleness_age_ms", bench::cdf_json(staleness));
        json_report->set(key, "p99_ms",
                         m.resolution_ms.empty()
                             ? 0.0
                             : stats::percentile(m.resolution_ms, 99));
        json_report->set(key, "upstream_queries",
                         static_cast<std::int64_t>(upstream));
        json_report->set(key, "coalesced",
                         static_cast<std::int64_t>(m.cache.coalesced));
        json_report->set(key, "stale_serves",
                         static_cast<std::int64_t>(m.cache.stale_serves));
        json_report->set(key, "negative_entries",
                         static_cast<std::int64_t>(m.cache.negative_entries));
        json_report->set(key, "hedges_issued",
                         static_cast<std::int64_t>(m.hedge.hedges_issued));
        json_report->set(key, "hedge_wins",
                         static_cast<std::int64_t>(m.hedge.hedge_wins));
        json_report->set(key, "hedge_wasted_wire_bytes",
                         static_cast<std::int64_t>(
                             m.hedge.wasted_wire_bytes));
      }
    }
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 300);
  const std::uint64_t seed = bench::flag(argc, argv, "seed", 7);
  const std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());
  const double rate_qps = 20.0;

  std::printf("=== Availability matrix: outage scenarios x degradation "
              "ladder ===\n");
  std::printf("(%zu Zipf-popular queries, Poisson %.0f q/s, seed %llu, "
              "TTL 4s; impairments strike 5s into the run; available = "
              "NOERROR within 2s)\n\n",
              queries, rate_qps, static_cast<unsigned long long>(seed));

  obs::Registry registry;
  bench::BenchReport json_report("availability_matrix");
  json_report.params["queries"] = static_cast<std::int64_t>(queries);
  json_report.params["seed"] = static_cast<std::int64_t>(seed);

  const auto cells = run_grid(seed, queries, rate_qps, jobs, true);
  for (const auto& cell : cells) registry.merge_from(cell.registry);
  const std::string first = render_matrix(cells, &json_report);
  // Second full grid run for the determinism check (no registry: metric
  // collection must not influence results).
  const std::string second =
      render_matrix(run_grid(seed, queries, rate_qps, jobs, false));
  std::fputs(first.c_str(), stdout);
  std::printf("\ndeterminism check (two full grid runs, same seed): %s\n",
              first == second ? "PASS - byte-identical" : "FAIL");

  // The headline claim: each rung of the ladder is at least as available as
  // the one below it in *every* scenario, strictly better through the cache
  // rungs under the gated outage, and the full stack rides out the standard
  // outage at >= 99%.
  bool ladder_ok = true;
  const auto grid = scenarios();
  for (std::size_t s = 0; s < grid.size(); ++s) {
    const double none = availability_pct(cells[s * kRungs.size() + 0].metrics);
    const double cached =
        availability_pct(cells[s * kRungs.size() + 1].metrics);
    const double stale =
        availability_pct(cells[s * kRungs.size() + 2].metrics);
    const double hedged =
        availability_pct(cells[s * kRungs.size() + 3].metrics);
    // Gated scenarios demand the strict ladder. Elsewhere the middle rungs
    // may jitter by a query (background refreshes shift the seeded retry
    // streams), so only the headline ordering is enforced: the full stack
    // tops every lower rung.
    const bool monotone =
        grid[s].gated
            ? none < cached && cached < stale && stale <= hedged
            : hedged >= none && hedged >= cached && hedged >= stale;
    const bool top_ok = !grid[s].gated || hedged >= 99.0;
    if (!monotone || !top_ok) {
      std::printf("ladder check FAIL: %s %.1f / %.1f / %.1f / %.1f\n",
                  grid[s].name.c_str(), none, cached, stale, hedged);
      ladder_ok = false;
    }
  }
  std::printf("ladder check (monotone per scenario, full stack >=99%% "
              "through outage-6s): %s\n",
              ladder_ok ? "PASS" : "FAIL");
  json_report.set("checks", "determinism",
                  std::string(first == second ? "PASS" : "FAIL"));
  json_report.set("checks", "ladder",
                  std::string(ladder_ok ? "PASS" : "FAIL"));
  bench::finish(argc, argv, json_report, nullptr, &registry);
  return first == second && ladder_ok ? 0 : 1;
}
