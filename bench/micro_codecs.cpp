// Microbenchmarks (google-benchmark) for the protocol codecs: DNS wire
// format, HPACK, Huffman, HTTP/2 frames, base64url, dns-json, and the
// discrete-event core. These guard against performance regressions in the
// machinery every experiment is built on.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dns/base64url.hpp"
#include "dns/json.hpp"
#include "dns/message.hpp"
#include "http2/frame.hpp"
#include "http2/hpack.hpp"
#include "simnet/event_loop.hpp"

namespace {

using namespace dohperf;

dns::Message sample_response() {
  const auto query =
      dns::Message::make_query(0, dns::Name::parse("www.example.com"));
  return dns::Message::make_response(
      query,
      {dns::ResourceRecord::a(dns::Name::parse("www.example.com"),
                              "93.184.216.34"),
       dns::ResourceRecord::a(dns::Name::parse("www.example.com"),
                              "93.184.216.35"),
       dns::ResourceRecord::cname(dns::Name::parse("alias.example.com"),
                                  dns::Name::parse("www.example.com"))});
}

void BM_DnsEncode(benchmark::State& state) {
  const auto message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
}
BENCHMARK(BM_DnsDecode);

void BM_DnsJsonEncode(benchmark::State& state) {
  const auto message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::to_dns_json(message));
  }
}
BENCHMARK(BM_DnsJsonEncode);

void BM_DnsJsonDecode(benchmark::State& state) {
  const auto json = dns::to_dns_json(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::from_dns_json(json));
  }
}
BENCHMARK(BM_DnsJsonDecode);

void BM_Base64UrlRoundTrip(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::base64url_decode(dns::base64url_encode(wire)));
  }
}
BENCHMARK(BM_Base64UrlRoundTrip);

std::vector<http2::HeaderField> doh_headers() {
  return {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "cloudflare-dns.com"},
      {":path", "/dns-query"},
      {"accept", "application/dns-message"},
      {"content-type", "application/dns-message"},
      {"content-length", "47"},
      {"user-agent",
       "Mozilla/5.0 (X11; Linux x86_64; rv:66.0) Gecko/20100101 Firefox/66.0"},
  };
}

void BM_HpackEncodeFirstBlock(benchmark::State& state) {
  const auto headers = doh_headers();
  for (auto _ : state) {
    http2::HpackEncoder encoder;  // cold dynamic table every time
    benchmark::DoNotOptimize(encoder.encode(headers));
  }
}
BENCHMARK(BM_HpackEncodeFirstBlock);

void BM_HpackEncodeRepeatBlock(benchmark::State& state) {
  const auto headers = doh_headers();
  http2::HpackEncoder encoder;
  encoder.encode(headers);  // warm the dynamic table
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(headers));
  }
}
BENCHMARK(BM_HpackEncodeRepeatBlock);

void BM_HpackDecode(benchmark::State& state) {
  http2::HpackEncoder encoder;
  encoder.disable_dynamic_table();  // stateless block, decodable repeatedly
  const auto block = encoder.encode(doh_headers());
  for (auto _ : state) {
    http2::HpackDecoder decoder;
    benchmark::DoNotOptimize(decoder.decode(block));
  }
}
BENCHMARK(BM_HpackDecode);

void BM_HuffmanEncode(benchmark::State& state) {
  const std::string text =
      "dns-query?dns=AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http2::huffman_encode(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const std::string text =
      "dns-query?dns=AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB";
  const auto encoded = http2::huffman_encode(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(http2::huffman_decode(encoded));
  }
}
BENCHMARK(BM_HuffmanDecode);

void BM_H2FrameRoundTrip(benchmark::State& state) {
  http2::Frame frame;
  frame.type = http2::FrameType::kData;
  frame.stream_id = 1;
  frame.payload = dohperf::http2::Bytes(128, 7);
  for (auto _ : state) {
    http2::FrameReader reader;
    reader.feed(http2::encode_frame(frame));
    benchmark::DoNotOptimize(reader.next());
  }
}
BENCHMARK(BM_H2FrameRoundTrip);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      loop.schedule_in(i, [&fired]() { ++fired; });
    }
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_NameCompressionEncode(benchmark::State& state) {
  dns::Message m;
  const auto owner = dns::Name::parse("a.b.c.d.example.com");
  for (int i = 0; i < 10; ++i) {
    m.answers.push_back(dns::ResourceRecord::a(owner, "192.0.2.1"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode(true));
  }
}
BENCHMARK(BM_NameCompressionEncode);

/// Console reporter that also captures per-benchmark timings, so the repo's
/// --json convention ("dohperf-bench-v1") works here too. Microbenchmark
/// timings are wall-clock, not virtual-clock — this is the one bench whose
/// JSON is NOT byte-identical across runs.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(dohperf::bench::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      report_.set(run.benchmark_name(), "real_time",
                  run.GetAdjustedRealTime());
      report_.set(run.benchmark_name(), "cpu_time",
                  run.GetAdjustedCPUTime());
      report_.set(run.benchmark_name(), "time_unit",
                  std::string(benchmark::GetTimeUnitString(run.time_unit)));
      report_.set(run.benchmark_name(), "iterations",
                  static_cast<std::int64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  dohperf::bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip the repo-wide --json/--trace flags before google-benchmark sees
  // (and rejects) them; everything else passes through to the library.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0 || arg.rfind("--trace=", 0) == 0) {
      continue;
    }
    if (arg == "--json" || arg == "--trace") {
      ++i;  // skip the separate value token too
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());

  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  dohperf::bench::BenchReport report("micro_codecs");
  RecordingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  dohperf::bench::finish(argc, argv, report);
  return 0;
}
