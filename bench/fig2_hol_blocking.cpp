// Figure 2: impact of head-of-line blocking on resolution times for DNS
// over UDP, TLS (DoT), HTTP/1.1 (pipelined) and HTTP/2.0.
//
// Setup per the paper's §3: 100 unique names (5-char random prefix + fixed
// base), Poisson arrivals at 10 queries/second, a local resolver answering
// every name with the same address. Two runs per transport: a baseline, and
// one where every 25th query is delayed by 1000 ms.
//
// Expected shape: UDP and DoH/h2 isolate the four delayed queries; DoT and
// DoH/h1 show knock-on blocking of subsequent queries.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "core/tcp_dns_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/tcp_dns_server.hpp"
#include "resolver/udp_server.hpp"
#include "workload/names.hpp"

namespace {

using namespace dohperf;

struct Sample {
  double sent_sec;        ///< when the query was issued
  double resolution_sec;  ///< time to a fully parsed reply
};

struct RunResult {
  std::string transport;
  std::string scenario;
  std::vector<Sample> samples;
};

/// One experiment run: `transport` in {udp, dot, h1, h2}.
RunResult run(const std::string& transport, bool delayed,
              std::size_t queries, double rate_qps,
              obs::Tracer* tracer, obs::Registry* registry) {
  simnet::EventLoop loop;
  simnet::Network net(loop, /*seed=*/5);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");
  // "Local resolver": sub-millisecond path, like the paper's localhost
  // Docker setup.
  simnet::LinkConfig link;
  link.latency = simnet::us(150);
  net.connect(client.id(), server.id(), link);

  if (tracer != nullptr) tracer->bind(loop);
  const obs::SpanContext obs{tracer, 0, registry};

  resolver::EngineConfig engine_config;
  engine_config.obs = obs;
  engine_config.upstream.processing = simnet::us(50);
  if (delayed) {
    engine_config.delay_policy.every_n = 25;
    engine_config.delay_policy.delay = simnet::ms(1000);
  }
  resolver::Engine engine(loop, engine_config);

  // Servers for every front-end (only the probed one sees traffic).
  resolver::UdpServer udp_server(server, engine, 53);
  resolver::TcpDnsServer tcp_server(server, engine, {}, 53);
  resolver::DotServer dot_server(server, engine, {}, 853);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::generic("local.resolver");
  resolver::DohServer doh_server(server, engine, doh_config, 443);

  std::unique_ptr<core::ResolverClient> resolver_client;
  if (transport == "udp") {
    core::UdpClientConfig config;
    config.obs = obs;
    resolver_client = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 53}, config);
  } else if (transport == "tcp") {
    resolver_client = std::make_unique<core::TcpDnsClient>(
        client, simnet::Address{server.id(), 53}, obs);
  } else if (transport == "dot") {
    core::DotClientConfig config;
    config.server_name = "local.resolver";
    config.obs = obs;
    resolver_client = std::make_unique<core::DotClient>(
        client, simnet::Address{server.id(), 853}, config);
  } else {
    core::DohClientConfig config;
    config.server_name = "local.resolver";
    config.http_version = transport == "h1" ? core::HttpVersion::kHttp1
                                            : core::HttpVersion::kHttp2;
    config.h1_pipelining = true;  // §3: unpipelined h1 would be unfair
    config.obs = obs;
    resolver_client = std::make_unique<core::DohClient>(
        client, simnet::Address{server.id(), 443}, config);
  }

  workload::UniqueNameGenerator names("example.com", /*seed=*/77);
  stats::PoissonArrivals arrivals(rate_qps, /*seed=*/13);
  const auto times = arrivals.arrival_times(queries);

  RunResult result;
  result.transport = transport;
  result.scenario = delayed ? "delayed" : "baseline";
  result.samples.resize(queries);

  for (std::size_t i = 0; i < queries; ++i) {
    const dns::Name name = names.next();
    const simnet::TimeUs at = simnet::from_sec(times[i]);
    loop.schedule_at(at, [&, i, name]() {
      result.samples[i].sent_sec = simnet::to_sec(loop.now());
      resolver_client->resolve(
          name, dns::RType::kA, [&, i](const core::ResolutionResult& r) {
            result.samples[i].resolution_sec =
                simnet::to_sec(r.resolution_time());
          });
    });
  }
  loop.run();
  return result;
}

void report(const RunResult& r, bool verbose, bench::BenchReport& out) {
  std::vector<double> res_ms;
  std::size_t over_100ms = 0;
  for (const auto& s : r.samples) {
    res_ms.push_back(s.resolution_sec * 1e3);
    if (s.resolution_sec > 0.1) ++over_100ms;
  }
  std::printf("%-10s %-9s", r.transport.c_str(), r.scenario.c_str());
  std::printf(" med=%8.3fms p90=%8.3fms max=%9.3fms  queries>100ms: %zu\n",
              stats::percentile(res_ms, 50), stats::percentile(res_ms, 90),
              stats::percentile(res_ms, 100), over_100ms);
  const std::string key = r.transport + "/" + r.scenario;
  out.set(key, "resolution_ms", bench::box_json(res_ms));
  out.set(key, "over_100ms", static_cast<std::int64_t>(over_100ms));
  if (verbose) {
    std::printf("# %s/%s: query-sent(s) resolution-time(s)\n",
                r.transport.c_str(), r.scenario.c_str());
    for (const auto& s : r.samples) {
      std::printf("%.4f %.6f\n", s.sent_sec, s.resolution_sec);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries = bench::flag(argc, argv, "queries", 100);
  const bool verbose = bench::flag_set(argc, argv, "series");
  const bool want_trace = !bench::flag_str(argc, argv, "trace").empty();

  std::printf("=== Figure 2: head-of-line blocking across DNS transports "
              "===\n");
  std::printf("(%zu unique names, Poisson 10 q/s, delayed run: 1 in 25 "
              "queries +1000ms)\n\n", queries);

  obs::Tracer tracer;
  obs::Registry registry;
  bench::BenchReport json_report("fig2_hol_blocking");
  json_report.params["queries"] = static_cast<std::int64_t>(queries);

  for (const bool delayed : {false, true}) {
    // "tcp" (RFC 7766, unencrypted) is an extension beyond the paper's four
    // transports; it isolates TCP's in-order delivery from TLS's.
    for (const char* transport : {"udp", "tcp", "dot", "h1", "h2"}) {
      report(run(transport, delayed, queries, 10.0,
                 want_trace ? &tracer : nullptr, &registry),
             verbose, json_report);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): in the delayed run, UDP and HTTP/2 show ~4 "
      "slow\nqueries (the delayed ones only); TLS (DoT) and HTTP/1.1 drag "
      "subsequent\nqueries past 100ms through in-order delivery.\n");
  bench::finish(argc, argv, json_report, &tracer, &registry);
  return 0;
}
