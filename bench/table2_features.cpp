// Table 2: DoH resolver feature matrix, obtained by actively probing the
// simulated deployments (content-type negotiation, TLS version walk,
// certificate inspection, CAA lookup, QUIC probe, DoT attempt) — the §2
// methodology end to end.
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "survey/deployment.hpp"
#include "survey/prober.hpp"
#include "survey/report.hpp"

int main(int argc, char** argv) {
  using namespace dohperf;

  simnet::EventLoop loop;
  simnet::Network net(loop, /*seed=*/2);
  simnet::Host prober_host(net, "prober");
  survey::ProviderDeployment deployment(net, prober_host,
                                        survey::paper_providers());
  survey::Prober prober(prober_host, deployment);

  for (const auto& spec : survey::paper_providers()) {
    prober.probe(spec);
  }
  loop.run();

  std::printf("=== Table 2: DoH resolver features (actively probed) ===\n\n");
  std::printf("%s\n",
              survey::render_table2(survey::paper_providers(), prober.results())
                  .c_str());
  std::printf("Legend: Y = supported, - = not supported;\n"
              "        steering: DL = DNS load balancing, AC = anycast, "
              "UC = unicast\n"
              "Probes run: %zu TLS handshakes + per-provider content-type, "
              "CAA, QUIC and DoT checks\n",
              5 * survey::paper_providers().size());

  // --- the October 2018 -> September 2019 delta the paper reports (§2) ----
  std::set<std::string> paths_2018;
  std::set<std::string> paths_2019;
  std::size_t tls13_2018 = 0;
  std::size_t tls13_2019 = 0;
  for (const auto& p : survey::paper_providers_2018()) {
    for (const auto& e : p.endpoints) paths_2018.insert(e.url_path);
    tls13_2018 += p.tls_versions.count(tlssim::TlsVersion::kTls13);
  }
  for (const auto& p : survey::paper_providers()) {
    for (const auto& e : p.endpoints) paths_2019.insert(e.url_path);
    tls13_2019 += p.tls_versions.count(tlssim::TlsVersion::kTls13);
  }
  std::printf("\nLandscape drift, Oct 2018 -> Sep 2019 (as reported in "
              "the paper):\n");
  std::printf("  distinct URL paths : %zu -> %zu  (paper: 6 -> 4)\n",
              paths_2018.size(), paths_2019.size());
  std::printf("  services with TLS 1.3 : %zu -> %zu  (paper: only CF+SD -> "
              "all but CB and RF)\n",
              tls13_2018, tls13_2019);

  bench::BenchReport report("table2_features");
  report.set("2018", "distinct_url_paths",
             static_cast<std::int64_t>(paths_2018.size()));
  report.set("2018", "tls13_services",
             static_cast<std::int64_t>(tls13_2018));
  report.set("2019", "distinct_url_paths",
             static_cast<std::int64_t>(paths_2019.size()));
  report.set("2019", "tls13_services",
             static_cast<std::int64_t>(tls13_2019));
  bench::finish(argc, argv, report);
  return 0;
}
