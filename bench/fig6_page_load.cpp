// Figure 6: CDFs of per-page cumulative DNS resolution time and page load
// (onload) time for five resolver configurations —
//   U/LO  legacy DNS, local (university) resolver
//   U/CF  legacy DNS, Cloudflare        U/GO  legacy DNS, Google
//   H/CF  DoH (HTTP/2), Cloudflare      H/GO  DoH (HTTP/2), Google
// from the university vantage, and (reduced) from 39 PlanetLab-like nodes.
//
// Each page is loaded three times with caches purged (a fresh PageLoader);
// the DoH connection persists across loads, as it does in Firefox.
//
// Expected shape (paper): cloud UDP resolves faster than the local
// resolver; DoH resolves slower than UDP to the same cloud; onload times
// are nearly indistinguishable across all five configurations.
#include <array>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "shard_runner.hpp"
#include "browser/page_load.hpp"
#include "browser/vantage.hpp"
#include "browser/web_farm.hpp"
#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "workload/alexa.hpp"

namespace {

using namespace dohperf;

struct ConfigResult {
  stats::Cdf dns_ms;     ///< cumulative DNS time per load, ms
  stats::Cdf onload_ms;  ///< onload time per load, ms
  std::size_t failures = 0;
};

/// The five resolver configurations, in the paper's presentation order.
/// This is also the shard order within a vantage, so the merged registry
/// matches what the old serial config loop produced.
constexpr std::array<const char*, 5> kConfigs = {"U/LO", "U/CF", "U/GO",
                                                "H/CF", "H/GO"};

/// One shard's output: the per-config CDFs plus a private metrics registry
/// (merged into the global one by shard index — see Registry::merge_from).
// detlint: hot-slot
struct alignas(64) ConfigShard {
  ConfigResult result;
  obs::Registry registry;
};

/// Run ONE resolver configuration from one vantage. Each call builds a
/// fully independent simulation (own loop, network, hosts, RNG seeds), so
/// vantage x config cells can run as parallel shards; `seed` alone
/// determines every byte of the result.
ConfigShard run_config(const browser::Vantage& vantage,
                       const std::string& config_name, std::size_t pages,
                       int loads_per_page, std::uint64_t seed,
                       obs::Tracer* tracer = nullptr) {
  ConfigShard shard;
  {
    simnet::EventLoop loop;
    simnet::Network net(loop, seed);
    simnet::Host browser_host(net, "browser");
    simnet::Host resolver_host(net, "resolver");

    if (tracer != nullptr) tracer->bind(loop);
    const obs::SpanContext obs{tracer, 0, &shard.registry};

    const bool local = config_name == "U/LO";
    const bool cloudflare = config_name.find("CF") != std::string::npos;
    simnet::LinkConfig resolver_link;
    resolver_link.latency = local ? vantage.local_resolver_latency
                            : cloudflare ? vantage.cloudflare_latency
                                         : vantage.google_latency;
    net.connect(browser_host.id(), resolver_host.id(), resolver_link);

    resolver::EngineConfig engine_config;
    engine_config.obs = obs;
    engine_config.upstream =
        local ? vantage.local_resolver : vantage.cloud_resolver;
    engine_config.seed = seed ^ 0xabcd;
    resolver::Engine engine(loop, engine_config);
    resolver::UdpServer udp_server(resolver_host, engine, 53);
    resolver::DohServerConfig doh_config;
    doh_config.tls.chain = cloudflare ? tlssim::CertificateChain::cloudflare()
                                      : tlssim::CertificateChain::google();
    // HTTPS front-end -> resolver backend hop (see DohServerConfig).
    doh_config.frontend_delay = simnet::ms(4);
    resolver::DohServer doh_server(resolver_host, engine, doh_config, 443);

    std::unique_ptr<core::ResolverClient> resolver_client;
    if (config_name[0] == 'U') {
      core::UdpClientConfig client_config;
      client_config.obs = obs;
      resolver_client = std::make_unique<core::UdpResolverClient>(
          browser_host, simnet::Address{resolver_host.id(), 53},
          client_config);
    } else {
      core::DohClientConfig client_config;
      client_config.server_name =
          cloudflare ? "cloudflare-dns.com" : "dns.google.com";
      client_config.obs = obs;
      resolver_client = std::make_unique<core::DohClient>(
          browser_host, simnet::Address{resolver_host.id(), 443},
          client_config);
    }

    browser::WebFarmConfig farm_config;
    farm_config.base_latency = vantage.origin_base_latency;
    farm_config.latency_jitter = vantage.origin_latency_jitter;
    farm_config.bandwidth_bps = vantage.access_bandwidth_bps;
    farm_config.seed = seed;  // identical origin links across configs
    browser::WebFarm farm(net, browser_host, farm_config);

    workload::AlexaPageModel model;
    ConfigResult& result = shard.result;
    for (std::size_t rank = 1; rank <= pages; ++rank) {
      const auto page = model.page(rank);
      for (int load = 0; load < loads_per_page; ++load) {
        browser::PageLoadConfig loader_config;
        loader_config.obs = obs;
        browser::PageLoader loader(browser_host, farm, *resolver_client,
                                   loader_config);
        bool finished = false;
        browser::PageLoadResult page_result;
        loader.load(page, [&](const browser::PageLoadResult& r) {
          page_result = r;
          finished = true;
        });
        loop.run();
        if (!finished || !page_result.success) {
          ++result.failures;
          continue;
        }
        result.dns_ms.add(simnet::to_ms(page_result.cumulative_dns));
        result.onload_ms.add(simnet::to_ms(page_result.onload_time()));
      }
    }
  }
  return shard;
}

void report(const std::string& title, const std::string& key_prefix,
            const std::map<std::string, ConfigResult>& results,
            bench::BenchReport& out) {
  std::printf("--- %s: cumulative DNS resolution time per page ---\n",
              title.c_str());
  for (const auto& [name, r] : results) {
    dohperf::bench::print_cdf(name, r.dns_ms, "ms");
  }
  std::printf("\n--- %s: page load (onload) time ---\n", title.c_str());
  for (const auto& [name, r] : results) {
    dohperf::bench::print_cdf(name, r.onload_ms, "ms");
  }
  std::size_t failures = 0;
  for (const auto& [name, r] : results) {
    const std::string key = key_prefix + "/" + name;
    out.set(key, "dns_ms", bench::cdf_json(r.dns_ms));
    out.set(key, "onload_ms", bench::cdf_json(r.onload_ms));
    out.set(key, "failures", static_cast<std::int64_t>(r.failures));
    failures += r.failures;
  }
  std::printf("\nfailed loads: %zu\n\n", failures);
}

}  // namespace

int main(int argc, char** argv) {
  // Paper-scale defaults (Böttger et al. §5: Alexa top-1000 from the
  // university vantage, 39 PlanetLab nodes): affordable since the per-shard
  // arena removed the allocator bottleneck and the benches went parallel by
  // default.
  const std::size_t pages = bench::flag(argc, argv, "pages", 1000);
  const std::size_t loads = bench::flag(argc, argv, "loads", 3);
  const std::size_t planetlab_nodes =
      bench::flag(argc, argv, "planetlab-nodes", 39);
  const std::size_t planetlab_pages =
      bench::flag(argc, argv, "planetlab-pages", 25);

  const bool want_trace = !bench::flag_str(argc, argv, "trace").empty();
  std::size_t jobs = bench::jobs_flag(argc, argv, bench::default_jobs());
  if (want_trace && jobs > 1) {
    // The tracer binds to one shard's event loop; tracing forces serial so
    // the trace covers the same spans it always has.
    jobs = 1;
  }

  std::printf("=== Figure 6: DNS resolution & page load times by resolver "
              "configuration ===\n");
  std::printf("(university vantage: %zu pages x %zu loads; PlanetLab: %zu "
              "nodes x %zu pages; %zu jobs)\n\n",
              pages, loads, planetlab_nodes, planetlab_pages, jobs);

  obs::Tracer tracer;
  obs::Registry registry;
  bench::BenchReport json_report("fig6_page_load");
  json_report.params["pages"] = static_cast<std::int64_t>(pages);
  json_report.params["loads"] = static_cast<std::int64_t>(loads);
  json_report.params["planetlab_nodes"] =
      static_cast<std::int64_t>(planetlab_nodes);
  json_report.params["planetlab_pages"] =
      static_cast<std::int64_t>(planetlab_pages);

  // University vantage: one shard per resolver configuration, all seeded
  // identically (seed 1001) as the serial config loop was.
  auto university_shards = bench::run_sharded<ConfigShard>(
      kConfigs.size(), jobs, [&](std::size_t i) {
        return run_config(browser::Vantage::university(), kConfigs[i], pages,
                          static_cast<int>(loads), 1001,
                          // detlint: allow(CONC004) tracing forces jobs=1 above
                          want_trace ? &tracer : nullptr);
      });
  std::map<std::string, ConfigResult> university;
  for (std::size_t i = 0; i < university_shards.size(); ++i) {
    university[kConfigs[i]] = std::move(university_shards[i].result);
    registry.merge_from(university_shards[i].registry);
  }
  report("University vantage", "university", university, json_report);

  // PlanetLab: one shard per node x config cell (node-major, config-minor,
  // matching the old nested loops), aggregated across heterogeneous nodes.
  auto planetlab_shards = bench::run_sharded<ConfigShard>(
      planetlab_nodes * kConfigs.size(), jobs, [&](std::size_t i) {
        const std::size_t node = i / kConfigs.size();
        const std::size_t config = i % kConfigs.size();
        return run_config(browser::Vantage::planetlab(static_cast<int>(node)),
                          kConfigs[config], planetlab_pages, 1, 2000 + node);
      });
  std::map<std::string, ConfigResult> planetlab;
  for (std::size_t i = 0; i < planetlab_shards.size(); ++i) {
    auto& shard = planetlab_shards[i];
    auto& agg = planetlab[kConfigs[i % kConfigs.size()]];
    agg.dns_ms.add_all(shard.result.dns_ms.sorted_values());
    agg.onload_ms.add_all(shard.result.onload_ms.sorted_values());
    agg.failures += shard.result.failures;
    registry.merge_from(shard.registry);
  }
  report("PlanetLab vantage (39 nodes)", "planetlab", planetlab, json_report);

  std::printf(
      "Expected shape (paper): cloud UDP < local resolver on DNS time;\n"
      "DoH slower than UDP to the same provider (CF < GO in both); onload\n"
      "times nearly identical across all five configurations.\n");
  bench::finish(argc, argv, json_report, &tracer, &registry);
  return 0;
}
