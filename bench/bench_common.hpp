// Helpers shared by the figure/table harnesses: flag parsing, the
// CDF/box-whisker printers that emit the same rows/series the paper plots,
// and the deterministic JSON/trace export every bench supports:
//   --json=<path>   machine-readable results ("dohperf-bench-v1" schema)
//   --trace=<path>  Chrome trace_event document (chrome://tracing, Perfetto)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "dns/json_value.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace dohperf::bench {

/// Parse "--key=value" style integer flags; returns `fallback` if absent.
inline std::size_t flag(int argc, char** argv, const std::string& key,
                        std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return fallback;
}

inline bool flag_set(int argc, char** argv, const std::string& key) {
  const std::string want = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

/// Parse "--key=value" or "--key value" string flags; `fallback` if absent.
inline std::string flag_str(int argc, char** argv, const std::string& key,
                            const std::string& fallback = "") {
  const std::string bare = "--" + key;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == bare && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

/// Print a CDF as quantile rows plus a terminal sparkline.
inline void print_cdf(const std::string& label, const stats::Cdf& cdf,
                      const std::string& unit) {
  if (cdf.empty()) {
    std::printf("%-28s (no samples)\n", label.c_str());
    return;
  }
  std::printf("%-28s n=%-6zu p10=%-9.1f p25=%-9.1f p50=%-9.1f p75=%-9.1f "
              "p90=%-9.1f max=%-9.1f %s\n",
              label.c_str(), cdf.count(), cdf.quantile(0.10),
              cdf.quantile(0.25), cdf.quantile(0.50), cdf.quantile(0.75),
              cdf.quantile(0.90), cdf.quantile(1.0), unit.c_str());
}

/// Print a box-whisker row (the paper's Figs 3-5 presentation).
inline void print_box(const std::string& label,
                      const std::vector<double>& xs,
                      const std::string& unit) {
  const auto bw = stats::BoxWhisker::from(xs);
  std::printf("%-22s min=%-9.0f q1=%-9.0f med=%-9.0f q3=%-9.0f max=%-9.0f %s\n",
              label.c_str(), bw.min, bw.q1, bw.median, bw.q3, bw.max,
              unit.c_str());
}

/// Quantile summary of a sample as a JSON object (Fig 3-5 presentation).
inline dns::JsonValue box_json(const std::vector<double>& xs) {
  const auto bw = stats::BoxWhisker::from(xs);
  dns::JsonObject o;
  o["n"] = static_cast<std::int64_t>(xs.size());
  o["min"] = bw.min;
  o["q1"] = bw.q1;
  o["med"] = bw.median;
  o["q3"] = bw.q3;
  o["max"] = bw.max;
  return dns::JsonValue(std::move(o));
}

/// Quantile summary of a CDF as a JSON object (Fig 2 presentation).
inline dns::JsonValue cdf_json(const stats::Cdf& cdf) {
  dns::JsonObject o;
  o["n"] = static_cast<std::int64_t>(cdf.count());
  if (!cdf.empty()) {
    o["p10"] = cdf.quantile(0.10);
    o["p25"] = cdf.quantile(0.25);
    o["p50"] = cdf.quantile(0.50);
    o["p75"] = cdf.quantile(0.75);
    o["p90"] = cdf.quantile(0.90);
    o["max"] = cdf.quantile(1.0);
  }
  return dns::JsonValue(std::move(o));
}

/// Machine-readable bench results, exported by finish() when the harness
/// is run with --json=<path>:
///   {"schema":"dohperf-bench-v1","bench":<name>,
///    "params":{...},"scenarios":{<label>:{<metric>:<value>,...},...},
///    "metrics":{...}}            // registry snapshot, when one is wired
/// Scenario and metric keys iterate in sorted (map) order, and all values
/// are virtual-clock or byte-count derived, so two identically seeded runs
/// dump byte-identical documents.
struct BenchReport {
  std::string bench;
  dns::JsonObject params;
  dns::JsonObject scenarios;

  explicit BenchReport(std::string name) : bench(std::move(name)) {}

  /// Record one scenario metric (creates the scenario on first touch).
  void set(const std::string& scenario, const std::string& metric,
           dns::JsonValue value) {
    if (scenarios.find(scenario) == scenarios.end()) {
      scenarios[scenario] = dns::JsonValue(dns::JsonObject{});
    }
    scenarios[scenario].as_object()[metric] = std::move(value);
  }

  dns::JsonValue to_json(const obs::Registry* registry = nullptr) const {
    dns::JsonObject doc;
    doc["schema"] = "dohperf-bench-v1";
    doc["bench"] = bench;
    doc["params"] = dns::JsonValue(params);
    doc["scenarios"] = dns::JsonValue(scenarios);
    if (registry != nullptr) doc["metrics"] = registry->to_json();
    return dns::JsonValue(std::move(doc));
  }
};

/// Write `text` to `path`; dies loudly (benches are CI plumbing — a silent
/// write failure would surface as a missing artifact much later).
inline void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << text;
  if (!out) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    std::exit(1);
  }
}

/// Common bench epilogue: honour --json=<path> and --trace=<path>.
/// `tracer`/`registry` may be null — the bench still emits a valid (empty)
/// trace document and a report without a "metrics" section.
inline void finish(int argc, char** argv, const BenchReport& report,
                   const obs::Tracer* tracer = nullptr,
                   const obs::Registry* registry = nullptr) {
  const std::string json_path = flag_str(argc, argv, "json");
  if (!json_path.empty()) {
    write_file(json_path, report.to_json(registry).dump() + "\n");
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string trace_path = flag_str(argc, argv, "trace");
  if (!trace_path.empty()) {
    std::string doc;
    if (tracer != nullptr) {
      doc = obs::chrome_trace_json(*tracer);
    } else {
      static const obs::Tracer kEmpty;
      doc = obs::chrome_trace_json(kEmpty);
    }
    write_file(trace_path, doc + "\n");
    std::printf("wrote %s\n", trace_path.c_str());
  }
}

}  // namespace dohperf::bench
