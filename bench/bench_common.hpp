// Helpers shared by the figure/table harnesses: flag parsing and the
// CDF/box-whisker printers that emit the same rows/series the paper plots.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace dohperf::bench {

/// Parse "--key=value" style integer flags; returns `fallback` if absent.
inline std::size_t flag(int argc, char** argv, const std::string& key,
                        std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return fallback;
}

inline bool flag_set(int argc, char** argv, const std::string& key) {
  const std::string want = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

/// Print a CDF as quantile rows plus a terminal sparkline.
inline void print_cdf(const std::string& label, const stats::Cdf& cdf,
                      const std::string& unit) {
  if (cdf.empty()) {
    std::printf("%-28s (no samples)\n", label.c_str());
    return;
  }
  std::printf("%-28s n=%-6zu p10=%-9.1f p25=%-9.1f p50=%-9.1f p75=%-9.1f "
              "p90=%-9.1f max=%-9.1f %s\n",
              label.c_str(), cdf.count(), cdf.quantile(0.10),
              cdf.quantile(0.25), cdf.quantile(0.50), cdf.quantile(0.75),
              cdf.quantile(0.90), cdf.quantile(1.0), unit.c_str());
}

/// Print a box-whisker row (the paper's Figs 3-5 presentation).
inline void print_box(const std::string& label,
                      const std::vector<double>& xs,
                      const std::string& unit) {
  const auto bw = stats::BoxWhisker::from(xs);
  std::printf("%-22s min=%-9.0f q1=%-9.0f med=%-9.0f q3=%-9.0f max=%-9.0f %s\n",
              label.c_str(), bw.min, bw.q1, bw.median, bw.q3, bw.max,
              unit.c_str());
}

}  // namespace dohperf::bench
