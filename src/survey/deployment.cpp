#include "survey/deployment.hpp"

namespace dohperf::survey {

ProviderDeployment::ProviderDeployment(
    simnet::Network& net, simnet::Host& prober_host,
    const std::vector<ProviderSpec>& providers, simnet::TimeUs latency)
    : net_(net) {
  simnet::LinkConfig link;
  link.latency = latency;

  for (const auto& spec : providers) {
    auto deployed = std::make_unique<Deployed>();
    deployed->spec = spec;
    deployed->host = std::make_unique<simnet::Host>(net_, spec.marker);
    net_.connect(prober_host.id(), deployed->host->id(), link);

    resolver::EngineConfig engine_config;
    deployed->engine = std::make_unique<resolver::Engine>(
        net_.loop(), engine_config);

    // --- DoH service(s). A provider's endpoints share one server: paths
    // and content types merge (Google's two services are two *markers*).
    resolver::DohServerConfig doh_config;
    doh_config.paths.clear();
    doh_config.support_dns_message = false;
    doh_config.support_dns_json = false;
    for (const auto& endpoint : spec.endpoints) {
      doh_config.paths.insert(endpoint.url_path);
      doh_config.support_dns_message |= endpoint.dns_message;
      doh_config.support_dns_json |= endpoint.dns_json;
    }
    doh_config.server_header = spec.name;
    doh_config.tls.versions = spec.tls_versions;
    doh_config.tls.chain = tlssim::CertificateChain::generic(
        spec.hostname, spec.certificate_bytes);
    doh_config.tls.chain.ct_logged = spec.certificate_transparency;
    doh_config.tls.chain.ocsp_must_staple = spec.ocsp_must_staple;
    deployed->doh = std::make_unique<resolver::DohServer>(
        *deployed->host, *deployed->engine, doh_config, 443);

    // --- DoT where offered.
    if (spec.dns_over_tls) {
      resolver::DotServerConfig dot_config;
      dot_config.tls.versions = spec.tls_versions;
      dot_config.tls.chain = doh_config.tls.chain;
      // Of the three public DoT deployments, only Cloudflare answers
      // out of order (§3).
      dot_config.out_of_order = spec.marker == "CF";
      deployed->dot = std::make_unique<resolver::DotServer>(
          *deployed->host, *deployed->engine, dot_config, 853);
    }

    // --- QUIC probe responder: a UDP listener on 443 that answers any
    // datagram (standing in for a QUIC Initial/Version-Negotiation
    // exchange, which is all the probe needs to detect support).
    if (spec.quic) {
      auto& socket = deployed->host->udp_open(443);
      deployed->quic_socket = &socket;
      socket.set_receiver(
          [&socket](const dns::Bytes&, simnet::Address from) {
            socket.send_to(from, dns::to_bytes("quic-version-negotiation"));
          });
    }

    // --- CAA records in the shared public zone.
    const dns::Name provider_name = dns::Name::parse(spec.hostname);
    if (spec.dns_caa) {
      zone_[provider_name] = {dns::ResourceRecord::caa(
          provider_name, 0, "issue", "pki.goog")};
    }

    providers_.emplace(spec.marker, std::move(deployed));
  }

  // --- The public authoritative zone server for CAA lookups.
  zone_host_ = std::make_unique<simnet::Host>(net_, "public-dns");
  net_.connect(prober_host.id(), zone_host_->id(), link);
  zone_socket_ = &zone_host_->udp_open(53);
  zone_socket_->set_receiver([this](const dns::Bytes& payload,
                                    simnet::Address from) {
    dns::Message query;
    try {
      query = dns::Message::decode(payload);
    } catch (const dns::WireError&) {
      return;
    }
    if (query.questions.empty()) return;
    const auto& q = query.questions.front();
    dns::Message response;
    const auto it = zone_.find(q.qname);
    if (it != zone_.end() && q.qtype == dns::RType::kCAA) {
      response = dns::Message::make_response(query, it->second);
    } else {
      // NOERROR with empty answer — the name exists, the record does not.
      response = dns::Message::make_response(query, {});
    }
    zone_socket_->send_to(from, response.encode());
  });
}

simnet::Address ProviderDeployment::doh_address(
    const std::string& marker) const {
  return {providers_.at(marker)->host->id(), 443};
}

simnet::Address ProviderDeployment::dot_address(
    const std::string& marker) const {
  return {providers_.at(marker)->host->id(), 853};
}

simnet::Address ProviderDeployment::quic_address(
    const std::string& marker) const {
  return {providers_.at(marker)->host->id(), 443};
}

simnet::Address ProviderDeployment::zone_server_address() const {
  return {zone_host_->id(), 53};
}

const ProviderSpec& ProviderDeployment::spec(
    const std::string& marker) const {
  return providers_.at(marker)->spec;
}

}  // namespace dohperf::survey
