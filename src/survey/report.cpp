#include "survey/report.hpp"

#include "stats/table.hpp"

namespace dohperf::survey {

namespace {

std::string yes_no(bool b) { return b ? "Y" : "-"; }

std::string steering_code(TrafficSteering s) {
  switch (s) {
    case TrafficSteering::kDnsLoadBalancing: return "DL";
    case TrafficSteering::kAnycast: return "AC";
    case TrafficSteering::kUnicast: return "UC";
  }
  return "?";
}

}  // namespace

std::string render_table1(const std::vector<ProviderSpec>& providers) {
  stats::TextTable table;
  table.add_row({"Provider", "DoH URL", "MK"});
  for (const auto& p : providers) {
    bool first = true;
    for (const auto& endpoint : p.endpoints) {
      table.add_row({first ? p.name : "",
                     "https://" + p.hostname + endpoint.url_path,
                     first ? p.marker : ""});
      first = false;
    }
  }
  return table.render();
}

std::string render_table2(
    const std::vector<ProviderSpec>& providers,
    const std::map<std::string, ProbeResult>& results) {
  using tlssim::TlsVersion;
  stats::TextTable table;

  std::vector<std::string> header{"Feature"};
  for (const auto& p : providers) header.push_back(p.marker);
  table.add_row(header);

  const auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& p : providers) {
      cells.push_back(getter(results.at(p.marker), p));
    }
    table.add_row(cells);
  };

  row("dns-message", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.dns_message);
  });
  row("dns-json", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.dns_json);
  });
  for (const auto& [version, label] :
       {std::pair{TlsVersion::kTls10, "TLS 1.0"},
        std::pair{TlsVersion::kTls11, "TLS 1.1"},
        std::pair{TlsVersion::kTls12, "TLS 1.2"},
        std::pair{TlsVersion::kTls13, "TLS 1.3"}}) {
    row(label, [version](const ProbeResult& r, const ProviderSpec&) {
      const auto it = r.tls.find(version);
      return yes_no(it != r.tls.end() && it->second);
    });
  }
  row("CT", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.certificate_transparency);
  });
  row("DNS CAA", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.dns_caa);
  });
  row("OCSP MS", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.ocsp_must_staple);
  });
  row("QUIC", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.quic);
  });
  row("DNS-over-TLS", [](const ProbeResult& r, const ProviderSpec&) {
    return yes_no(r.dns_over_tls);
  });
  // Steering is not actively probed (the paper derived it from routing
  // data); reproduced from the provider configuration.
  row("Traf. Steering", [](const ProbeResult&, const ProviderSpec& p) {
    return steering_code(p.steering);
  });
  return table.render();
}

}  // namespace dohperf::survey
