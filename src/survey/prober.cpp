#include "survey/prober.hpp"

#include "simnet/stream.hpp"

namespace dohperf::survey {

namespace {
const dns::Name kProbeName = dns::Name::parse("probe.example.com");
}

Prober::Prober(simnet::Host& host, const ProviderDeployment& deployment)
    : host_(host), deployment_(deployment) {}

void Prober::probe(const ProviderSpec& spec) {
  ProbeResult& result = results_[spec.marker];
  result.marker = spec.marker;
  result.hostname = spec.hostname;
  probe_content_types(spec, result);
  probe_tls_versions(spec, result);
  probe_certificate(spec, result);
  probe_caa(spec, result);
  probe_quic(spec, result);
  probe_dot(spec, result);
}

void Prober::probe_content_types(const ProviderSpec& spec,
                                 ProbeResult& result) {
  for (const auto& endpoint : spec.endpoints) {
    // Wire-format probe: RFC 8484 POST.
    {
      core::DohClientConfig config;
      config.server_name = spec.hostname;
      config.path = endpoint.url_path;
      config.method = core::DohMethod::kPost;
      config.persistent = false;
      auto client = std::make_unique<core::DohClient>(
          host_, deployment_.doh_address(spec.marker), config);
      ProbeResult* r = &result;
      const std::string path = endpoint.url_path;
      client->resolve(kProbeName, dns::RType::kA,
                      [r, path](const core::ResolutionResult& rr) {
                        if (rr.success) {
                          r->dns_message = true;
                          r->working_paths.insert(path);
                        }
                      });
      doh_clients_.push_back(std::move(client));
    }
    // JSON probe: GET ?name=&type= with Accept: application/dns-json.
    {
      core::DohClientConfig config;
      config.server_name = spec.hostname;
      config.path = endpoint.url_path;
      config.method = core::DohMethod::kJsonGet;
      config.persistent = false;
      auto client = std::make_unique<core::DohClient>(
          host_, deployment_.doh_address(spec.marker), config);
      ProbeResult* r = &result;
      const std::string path = endpoint.url_path;
      client->resolve(kProbeName, dns::RType::kA,
                      [r, path](const core::ResolutionResult& rr) {
                        if (rr.success) {
                          r->dns_json = true;
                          r->working_paths.insert(path);
                        }
                      });
      doh_clients_.push_back(std::move(client));
    }
  }
}

void Prober::probe_tls_versions(const ProviderSpec& spec,
                                ProbeResult& result) {
  using tlssim::TlsVersion;
  for (const TlsVersion version :
       {TlsVersion::kTls10, TlsVersion::kTls11, TlsVersion::kTls12,
        TlsVersion::kTls13}) {
    // Offer exactly one version: success <=> the server accepts it.
    tlssim::ClientConfig config;
    config.sni = spec.hostname;
    config.min_version = version;
    config.max_version = version;
    config.alpn = {"h2", "http/1.1"};
    auto probe = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(
            host_.tcp_connect(deployment_.doh_address(spec.marker))),
        std::move(config));
    tlssim::TlsConnection* raw = probe.get();
    ProbeResult* r = &result;
    tlssim::TlsConnection::Handlers handlers;
    handlers.on_open = [r, raw, version]() {
      r->tls[version] = true;
      raw->close();
    };
    handlers.on_close = [r, version]() {
      // Only record failure if success never fired.
      if (r->tls.find(version) == r->tls.end()) r->tls[version] = false;
    };
    probe->set_handlers(std::move(handlers));
    tls_probes_.push_back(std::move(probe));
  }
}

void Prober::probe_certificate(const ProviderSpec& spec,
                               ProbeResult& result) {
  // Full TLS 1.2+ handshake; inspect the certificate message.
  tlssim::ClientConfig config;
  config.sni = spec.hostname;
  config.alpn = {"h2", "http/1.1"};
  auto probe = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(
          host_.tcp_connect(deployment_.doh_address(spec.marker))),
      std::move(config));
  tlssim::TlsConnection* raw = probe.get();
  ProbeResult* r = &result;
  tlssim::TlsConnection::Handlers handlers;
  handlers.on_open = [r, raw]() {
    if (const auto& cert = raw->peer_certificate()) {
      r->certificate_transparency = cert->ct_logged;
      r->ocsp_must_staple = cert->ocsp_must_staple;
    }
    raw->close();
  };
  probe->set_handlers(std::move(handlers));
  tls_probes_.push_back(std::move(probe));
}

void Prober::probe_caa(const ProviderSpec& spec, ProbeResult& result) {
  auto client = std::make_unique<core::UdpResolverClient>(
      host_, deployment_.zone_server_address());
  ProbeResult* r = &result;
  client->resolve(dns::Name::parse(spec.hostname), dns::RType::kCAA,
                  [r](const core::ResolutionResult& rr) {
                    r->dns_caa = rr.success && !rr.response.answers.empty();
                  });
  udp_clients_.push_back(std::move(client));
}

void Prober::probe_quic(const ProviderSpec& spec, ProbeResult& result) {
  // A bare datagram to UDP 443: a QUIC-capable stack answers (with version
  // negotiation); everything else stays silent.
  auto& socket = host_.udp_open();
  ProbeResult* r = &result;
  socket.set_receiver(
      [r](const dns::Bytes&, simnet::Address) { r->quic = true; });
  socket.send_to(deployment_.quic_address(spec.marker),
                 dns::to_bytes("quic-initial-probe"));
}

void Prober::probe_dot(const ProviderSpec& spec, ProbeResult& result) {
  core::DotClientConfig config;
  config.server_name = spec.hostname;
  auto client = std::make_unique<core::DotClient>(
      host_, deployment_.dot_address(spec.marker), config);
  ProbeResult* r = &result;
  client->resolve(kProbeName, dns::RType::kA,
                  [r](const core::ResolutionResult& rr) {
                    r->dns_over_tls = rr.success;
                  });
  dot_clients_.push_back(std::move(client));
}

}  // namespace dohperf::survey
