// Deploys a simulated instance of each surveyed provider: its DoH server(s)
// with the configured paths/content types/TLS versions/certificate, its DoT
// server when it runs one, a QUIC responder when it supports QUIC, and an
// authoritative zone (with or without CAA records) served over UDP so the
// prober can look up CAA the way the paper did.
#pragma once

#include <map>
#include <memory>

#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/engine.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/host.hpp"
#include "survey/providers.hpp"

namespace dohperf::survey {

class ProviderDeployment {
 public:
  /// Builds hosts for every provider and links them to `prober_host`.
  ProviderDeployment(simnet::Network& net, simnet::Host& prober_host,
                     const std::vector<ProviderSpec>& providers,
                     simnet::TimeUs latency = simnet::ms(10));

  ProviderDeployment(const ProviderDeployment&) = delete;
  ProviderDeployment& operator=(const ProviderDeployment&) = delete;

  /// Transport address of a provider's DoH service (port 443).
  simnet::Address doh_address(const std::string& marker) const;
  /// DoT address (port 853); valid even if unsupported (probe will fail).
  simnet::Address dot_address(const std::string& marker) const;
  /// UDP port 443 for the QUIC probe.
  simnet::Address quic_address(const std::string& marker) const;

  /// Address of the public authoritative DNS (UDP 53) hosting every
  /// provider's zone, for CAA lookups.
  simnet::Address zone_server_address() const;

  const ProviderSpec& spec(const std::string& marker) const;

 private:
  struct Deployed {
    ProviderSpec spec;
    std::unique_ptr<simnet::Host> host;
    std::unique_ptr<resolver::Engine> engine;
    std::unique_ptr<resolver::DohServer> doh;
    std::unique_ptr<resolver::DotServer> dot;
    simnet::UdpSocket* quic_socket = nullptr;  // owned by host
  };

  simnet::Network& net_;
  std::map<std::string, std::unique_ptr<Deployed>> providers_;

  // The "public DNS" used for CAA lookups: hosts CAA records of every
  // provider that publishes them.
  std::unique_ptr<simnet::Host> zone_host_;
  simnet::UdpSocket* zone_socket_ = nullptr;
  std::map<dns::Name, std::vector<dns::ResourceRecord>> zone_;
};

}  // namespace dohperf::survey
