// Ground truth for the DoH landscape survey (Tables 1 and 2 of the paper,
// as verified by the authors on 10 September 2019).
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper probes live services; we
// deploy simulated services configured from this table and then probe them
// with the same message flows, so the *methodology* — not the Internet —
// is what the survey module reproduces.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "tlssim/types.hpp"

namespace dohperf::survey {

enum class TrafficSteering {
  kDnsLoadBalancing,  ///< DL — Google
  kAnycast,           ///< AC — Cloudflare, Quad9, CleanBrowsing, Commons Host
  kUnicast,           ///< UC — PowerDNS, Blahdns, SecureDNS, Rubyfish
};

std::string to_string(TrafficSteering s);

/// One DoH service endpoint (a provider may run several URLs).
struct EndpointSpec {
  std::string url_path;       ///< e.g. "/dns-query"
  bool dns_message = true;    ///< application/dns-message support
  bool dns_json = false;      ///< application/dns-json support
};

struct ProviderSpec {
  std::string name;            ///< e.g. "Cloudflare"
  std::string marker;          ///< Table 2 column id, e.g. "CF"
  std::string hostname;        ///< e.g. "cloudflare-dns.com"
  std::vector<EndpointSpec> endpoints;
  std::set<tlssim::TlsVersion> tls_versions;
  std::size_t certificate_bytes = 2500;
  bool certificate_transparency = true;
  bool dns_caa = false;
  bool ocsp_must_staple = false;
  bool quic = false;
  bool dns_over_tls = false;
  TrafficSteering steering = TrafficSteering::kUnicast;
};

/// The nine providers of Table 1 (Google appears as two service markers,
/// G1 and G2, because its two URLs behave differently), as verified on
/// 10 September 2019.
const std::vector<ProviderSpec>& paper_providers();

/// The same providers as first collected on 10 October 2018 (§2): six
/// distinct URL paths instead of four (Google's wire-format service still
/// lived at /experimental, CleanBrowsing used /doh/family-filter/, Commons
/// Host used /dns-query), and only Cloudflare and SecureDNS spoke TLS 1.3.
const std::vector<ProviderSpec>& paper_providers_2018();

}  // namespace dohperf::survey
