// The survey prober: assesses a DoH service's feature set by exercising it
// — the §2 methodology. For each provider it
//   * POSTs an application/dns-message query to each path (wire format?)
//   * GETs ?name=&type= asking for application/dns-json (JSON support?)
//   * walks TLS 1.0-1.3, offering exactly one version per handshake
//   * inspects the served certificate (CT logging, OCSP must-staple)
//   * queries the public DNS for CAA records on the provider's name
//   * sends a QUIC initial to UDP 443 (does anything answer?)
//   * attempts a DNS-over-TLS query on 853
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "core/udp_client.hpp"
#include "survey/deployment.hpp"

namespace dohperf::survey {

struct ProbeResult {
  std::string marker;
  std::string hostname;
  std::set<std::string> working_paths;
  bool dns_message = false;
  bool dns_json = false;
  std::map<tlssim::TlsVersion, bool> tls;
  bool certificate_transparency = false;
  bool ocsp_must_staple = false;
  bool dns_caa = false;
  bool quic = false;
  bool dns_over_tls = false;
};

class Prober {
 public:
  Prober(simnet::Host& host, const ProviderDeployment& deployment);

  /// Run every probe against one provider; the event loop must then be run
  /// to completion, after which result() is valid.
  void probe(const ProviderSpec& spec);

  const ProbeResult& result(const std::string& marker) const {
    return results_.at(marker);
  }
  std::map<std::string, ProbeResult>& results() { return results_; }

 private:
  void probe_content_types(const ProviderSpec& spec, ProbeResult& result);
  void probe_tls_versions(const ProviderSpec& spec, ProbeResult& result);
  void probe_certificate(const ProviderSpec& spec, ProbeResult& result);
  void probe_caa(const ProviderSpec& spec, ProbeResult& result);
  void probe_quic(const ProviderSpec& spec, ProbeResult& result);
  void probe_dot(const ProviderSpec& spec, ProbeResult& result);

  simnet::Host& host_;
  const ProviderDeployment& deployment_;
  std::map<std::string, ProbeResult> results_;

  // Keep probe clients alive until the loop drains.
  std::vector<std::unique_ptr<core::DohClient>> doh_clients_;
  std::vector<std::unique_ptr<core::DotClient>> dot_clients_;
  std::vector<std::unique_ptr<core::UdpResolverClient>> udp_clients_;
  std::vector<std::unique_ptr<tlssim::TlsConnection>> tls_probes_;
};

}  // namespace dohperf::survey
