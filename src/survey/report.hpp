// Renders the probe results as the paper's Table 1 (services and URLs) and
// Table 2 (feature matrix).
#pragma once

#include <string>
#include <vector>

#include "survey/prober.hpp"

namespace dohperf::survey {

/// Table 1: provider, DoH URL(s), marker.
std::string render_table1(const std::vector<ProviderSpec>& providers);

/// Table 2: feature rows x provider columns, from *probed* results.
/// `steering_from_spec` reproduces the traffic-steering row, which the
/// paper derived from routing data rather than active probing.
std::string render_table2(const std::vector<ProviderSpec>& providers,
                          const std::map<std::string, ProbeResult>& results);

}  // namespace dohperf::survey
