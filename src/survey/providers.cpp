#include "survey/providers.hpp"

namespace dohperf::survey {

using tlssim::TlsVersion;

std::string to_string(TrafficSteering s) {
  switch (s) {
    case TrafficSteering::kDnsLoadBalancing: return "DNS Load Balancing";
    case TrafficSteering::kAnycast: return "Anycast";
    case TrafficSteering::kUnicast: return "Unicast";
  }
  return "?";
}

const std::vector<ProviderSpec>& paper_providers() {
  static const std::vector<ProviderSpec> kProviders = [] {
    std::vector<ProviderSpec> providers;

    {
      // Google runs two services on one domain: /resolve (JSON only, G1)
      // and /dns-query (wire format only, G2, formerly /experimental).
      ProviderSpec p;
      p.name = "Google (i)";
      p.marker = "G1";
      p.hostname = "dns.google.com";
      p.endpoints = {{"/resolve", /*dns_message=*/false, /*dns_json=*/true}};
      p.tls_versions = {TlsVersion::kTls12, TlsVersion::kTls13};
      p.certificate_bytes = 3101;  // measured in §4
      p.dns_caa = true;            // only Google publishes CAA (Table 2)
      p.quic = true;
      p.dns_over_tls = true;
      p.steering = TrafficSteering::kDnsLoadBalancing;
      providers.push_back(p);

      p.name = "Google (ii)";
      p.marker = "G2";
      p.endpoints = {{"/dns-query", /*dns_message=*/true, /*dns_json=*/false}};
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "Cloudflare";
      p.marker = "CF";
      p.hostname = "cloudflare-dns.com";
      p.endpoints = {{"/dns-query", true, true}};
      p.tls_versions = {TlsVersion::kTls10, TlsVersion::kTls11,
                        TlsVersion::kTls12, TlsVersion::kTls13};
      p.certificate_bytes = 1960;  // measured in §4
      p.quic = false;
      p.dns_over_tls = true;
      p.steering = TrafficSteering::kAnycast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "Quad9";
      p.marker = "Q9";
      p.hostname = "dns.quad9.net";
      p.endpoints = {{"/dns-query", true, true}};
      p.tls_versions = {TlsVersion::kTls12, TlsVersion::kTls13};
      p.dns_over_tls = true;
      p.steering = TrafficSteering::kAnycast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "CleanBrowsing";
      p.marker = "CB";
      p.hostname = "doh.cleanbrowsing.org";
      p.endpoints = {{"/doh/family-filter", true, false}};
      p.tls_versions = {TlsVersion::kTls12};
      p.dns_over_tls = true;
      p.steering = TrafficSteering::kAnycast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "PowerDNS";
      p.marker = "PD";
      p.hostname = "doh.powerdns.org";
      p.endpoints = {{"/", true, false}};
      p.tls_versions = {TlsVersion::kTls10, TlsVersion::kTls11,
                        TlsVersion::kTls12, TlsVersion::kTls13};
      p.steering = TrafficSteering::kUnicast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "Blahdns";
      p.marker = "BD";
      p.hostname = "doh-ch.blahdns.com";
      p.endpoints = {{"/dns-query", true, true}};
      p.tls_versions = {TlsVersion::kTls12, TlsVersion::kTls13};
      p.steering = TrafficSteering::kUnicast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "SecureDNS";
      p.marker = "SD";
      p.hostname = "doh.securedns.eu";
      p.endpoints = {{"/dns-query", true, false}};
      p.tls_versions = {TlsVersion::kTls10, TlsVersion::kTls11,
                        TlsVersion::kTls12, TlsVersion::kTls13};
      p.steering = TrafficSteering::kUnicast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "Rubyfish";
      p.marker = "RF";
      p.hostname = "dns.rubyfish.cn";
      p.endpoints = {{"/dns-query", true, true}};
      p.tls_versions = {TlsVersion::kTls10, TlsVersion::kTls11,
                        TlsVersion::kTls12};
      p.steering = TrafficSteering::kUnicast;
      providers.push_back(p);
    }
    {
      ProviderSpec p;
      p.name = "Commons Host";
      p.marker = "CH";
      p.hostname = "commons.host";
      p.endpoints = {{"/", true, false}};
      p.tls_versions = {TlsVersion::kTls12, TlsVersion::kTls13};
      p.steering = TrafficSteering::kAnycast;
      providers.push_back(p);
    }
    return providers;
  }();
  return kProviders;
}

const std::vector<ProviderSpec>& paper_providers_2018() {
  static const std::vector<ProviderSpec> kProviders = [] {
    // Start from the 2019 snapshot and roll back the changes §2 reports.
    std::vector<ProviderSpec> providers = paper_providers();
    for (auto& p : providers) {
      // October 2018: only Cloudflare and SecureDNS offered TLS 1.3.
      if (p.marker != "CF" && p.marker != "SD") {
        p.tls_versions.erase(TlsVersion::kTls13);
      }
      // Google's RFC-format service was still called /experimental.
      if (p.marker == "G2") {
        p.endpoints = {{"/experimental", true, false}};
      }
      // Further path differences that made six distinct paths in 2018.
      // The paper reports the count but (beyond /experimental) not the
      // exact 2018 paths; this reconstruction is approximate.
      if (p.marker == "CB") {
        p.endpoints = {{"/doh/family-filter/", true, false}};
      }
      if (p.marker == "CH") {
        p.endpoints = {{"/dns-query", true, false}};
      }
      if (p.marker == "RF") {
        p.endpoints = {{"/dns-query/", true, true}};
      }
    }
    return providers;
  }();
  return kProviders;
}

}  // namespace dohperf::survey
