// The HTTP/2 connection: preface and SETTINGS exchange, stream multiplexing
// (the property that lets DoH/h2 dodge head-of-line blocking in Fig 2),
// HPACK header blocks, flow control with WINDOW_UPDATE, PING and GOAWAY.
//
// One class serves both roles; clients use request(), servers install a
// request handler whose responses may complete in any order — HTTP/2
// streams are independent, so a delayed response never blocks others.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "http2/frame.hpp"
#include "http2/hpack.hpp"
#include "simnet/stream.hpp"

namespace dohperf::http2 {

/// Byte accounting matching the paper's Fig 5 convention:
///  * header_bytes — HEADERS/CONTINUATION frames in full (9-byte frame
///    header + HPACK block)
///  * body_bytes   — DATA frame payloads (the DNS message itself)
///  * mgmt_bytes   — everything needed to run the connection: the client
///    preface, SETTINGS, WINDOW_UPDATE, PING, GOAWAY, RST_STREAM frames in
///    full, plus the 9-byte frame headers of DATA frames
struct H2Counters {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t header_bytes_sent = 0;
  std::uint64_t header_bytes_received = 0;
  std::uint64_t body_bytes_sent = 0;
  std::uint64_t body_bytes_received = 0;
  std::uint64_t mgmt_bytes_sent = 0;
  std::uint64_t mgmt_bytes_received = 0;
};

struct H2Message {
  std::vector<HeaderField> headers;
  Bytes body;
};

struct Http2Config {
  std::size_t header_table_size = 4096;
  std::uint32_t max_concurrent_streams = 100;
  std::uint32_t initial_window_size = 65535;
  std::size_t max_frame_size = kDefaultMaxFrameSize;
  bool enable_hpack_dynamic_table = true;  ///< off for the fig5 ablation
};

/// Client-side stream lifecycle notifications, used by observability
/// instrumentation to draw request/response spans with stream-id
/// attributes. Events for one stream always arrive in this order.
enum class StreamEvent {
  kRequestSent,    ///< HEADERS (+DATA) for the request left this endpoint
  kResponseBegan,  ///< first frame of the response arrived
  kStreamClosed,   ///< response complete; the handler is about to run
};

class Http2Connection {
 public:
  using ResponseHandler = std::function<void(const H2Message&)>;
  using StreamObserver = std::function<void(std::uint32_t, StreamEvent)>;
  /// Server side: respond may be called immediately or later; streams are
  /// independent so late responses do not block other streams.
  using Responder = std::function<void(H2Message)>;
  using RequestHandler =
      std::function<void(const H2Message&, Responder)>;
  using ErrorHandler = std::function<void()>;

  enum class Role { kClient, kServer };

  Http2Connection(std::unique_ptr<simnet::ByteStream> transport, Role role,
                  Http2Config config = {});

  Http2Connection(const Http2Connection&) = delete;
  Http2Connection& operator=(const Http2Connection&) = delete;

  /// Client: open a new stream carrying one request.
  void request(H2Message message, ResponseHandler on_response);

  /// Server: install the application handler (must be set before data).
  void set_request_handler(RequestHandler handler) {
    request_handler_ = std::move(handler);
  }

  void set_error_handler(ErrorHandler handler) {
    on_error_ = std::move(handler);
  }

  /// Client role only; pass a null observer to detach (zero cost when
  /// unset). Queued requests report kRequestSent when they actually go out,
  /// in request() call order.
  void set_stream_observer(StreamObserver observer) {
    stream_observer_ = std::move(observer);
  }

  /// Send a PING (measures connection liveness/RTT); handler fires on ACK.
  void ping(std::function<void()> on_ack);

  /// Graceful shutdown: GOAWAY then transport close.
  void close(H2Error error = H2Error::kNoError);

  bool is_open() const { return !goaway_sent_ && transport_->is_open(); }
  /// The peer announced shutdown; a client should not reuse the connection.
  bool goaway_received() const noexcept { return goaway_received_; }
  const H2Counters& counters() const noexcept { return counters_; }
  /// HPACK dynamic-table hit counters of the send direction.
  const HpackEncoderStats& encoder_stats() const noexcept {
    return encoder_.stats();
  }
  simnet::ByteStream& transport() noexcept { return *transport_; }
  std::size_t open_streams() const noexcept { return streams_.size(); }

 private:
  struct Stream {
    std::vector<HeaderField> headers;   ///< decoded once END_HEADERS arrives
    Bytes header_block;                 ///< fragments awaiting END_HEADERS
    Bytes body;
    bool remote_end = false;            ///< peer sent END_STREAM
    bool local_end = false;             ///< we sent END_STREAM
    bool headers_done = false;
    ResponseHandler on_response;        ///< client side
    std::int64_t send_window = 65535;
    /// Flow-control blocked DATA: slices of the response body awaiting
    /// window, referenced (not copied) until they can go out.
    std::vector<BufferSlice> pending_body;
    bool response_began = false;        ///< kResponseBegan already reported
  };

  void on_transport_open();
  void on_transport_data(std::span<const std::uint8_t> data);
  void on_transport_close();

  /// Batch frames into one transport write while corked (so a HEADERS +
  /// DATA pair shares one TLS record, like real stacks).
  void cork();
  void uncork();

  void send_preface_and_settings();
  void send_frame(Frame frame);
  void send_settings(bool ack);
  void send_window_update(std::uint32_t stream_id, std::uint32_t increment);
  void send_headers(std::uint32_t stream_id,
                    const std::vector<HeaderField>& headers, bool end_stream);
  void send_data(std::uint32_t stream_id, BufferSlice body, bool end_stream);
  void try_flush_blocked();

  void handle_frame(const Frame& frame);
  void handle_headers(const Frame& frame);
  void handle_data(const Frame& frame);
  void handle_settings(const Frame& frame);
  void handle_window_update(const Frame& frame);
  void handle_ping(const Frame& frame);
  void stream_complete(std::uint32_t stream_id);
  void protocol_error();

  std::unique_ptr<simnet::ByteStream> transport_;
  Role role_;
  Http2Config config_;
  HpackEncoder encoder_;
  HpackDecoder decoder_;
  FrameReader reader_;
  H2Counters counters_;
  RequestHandler request_handler_;
  ErrorHandler on_error_;
  StreamObserver stream_observer_;

  bool transport_open_ = false;
  bool preface_done_ = false;   ///< server: client preface consumed
  bool settings_sent_ = false;
  bool goaway_sent_ = false;
  bool goaway_received_ = false;

  std::uint32_t next_stream_id_;  ///< client: 1, 3, 5, ...
  std::map<std::uint32_t, Stream> streams_;
  std::deque<std::pair<H2Message, ResponseHandler>> queued_requests_;
  std::deque<std::function<void()>> ping_handlers_;
  std::deque<std::function<void()>> pending_pings_;  ///< sent once open

  std::int64_t connection_send_window_ = 65535;
  std::uint32_t peer_initial_window_ = 65535;

  /// Receive-side flow control: consumed bytes are granted back in bulk
  /// once half the window has been used (nghttp2-style batching), not per
  /// frame — per-frame WINDOW_UPDATEs would inflate the Mgmt bytes far
  /// beyond what the paper measured.
  std::uint64_t conn_consumed_ = 0;
  std::map<std::uint32_t, std::uint64_t> stream_consumed_;

  bool corked_ = false;
  /// Frames batched while corked, flushed as ONE logical transport write
  /// (so a HEADERS + DATA pair shares one TLS record, like real stacks);
  /// payload slices are referenced, never concatenated.
  std::vector<BufferSlice> cork_chain_;
};

}  // namespace dohperf::http2
