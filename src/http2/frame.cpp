#include "http2/frame.hpp"

namespace dohperf::http2 {

std::string to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoaway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "UNKNOWN";
}

Bytes encode_frame(const Frame& frame) {
  if (frame.payload.size() > 0xffffff) throw WireError("frame too large");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((frame.payload.size() >> 16) & 0xff));
  w.u16(static_cast<std::uint16_t>(frame.payload.size() & 0xffff));
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u8(frame.flags);
  w.u32(frame.stream_id & 0x7fffffff);
  w.bytes(frame.payload);
  return w.take();
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::consume_preface() {
  if (buffer_.size() < kConnectionPreface.size()) return false;
  for (std::size_t i = 0; i < kConnectionPreface.size(); ++i) {
    if (buffer_[i] != static_cast<std::uint8_t>(kConnectionPreface[i])) {
      throw WireError("bad HTTP/2 connection preface");
    }
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(kConnectionPreface.size()));
  return true;
}

std::optional<Frame> FrameReader::next(std::size_t max_frame_size) {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::size_t length = (static_cast<std::size_t>(buffer_[0]) << 16) |
                             (static_cast<std::size_t>(buffer_[1]) << 8) |
                             buffer_[2];
  if (length > max_frame_size) {
    throw WireError("frame exceeds SETTINGS_MAX_FRAME_SIZE");
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(buffer_[3]);
  frame.flags = buffer_[4];
  frame.stream_id = ((static_cast<std::uint32_t>(buffer_[5]) << 24) |
                     (static_cast<std::uint32_t>(buffer_[6]) << 16) |
                     (static_cast<std::uint32_t>(buffer_[7]) << 8) |
                     buffer_[8]) &
                    0x7fffffff;
  frame.payload.assign(
      buffer_.begin() + kFrameHeaderBytes,
      buffer_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes + length));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(kFrameHeaderBytes + length));
  return frame;
}

}  // namespace dohperf::http2
