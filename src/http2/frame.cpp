#include "http2/frame.hpp"

namespace dohperf::http2 {

std::string to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoaway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "UNKNOWN";
}

Bytes encode_frame_header(const Frame& frame) {
  if (frame.payload.size() > 0xffffff) throw WireError("frame too large");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((frame.payload.size() >> 16) & 0xff));
  w.u16(static_cast<std::uint16_t>(frame.payload.size() & 0xffff));
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u8(frame.flags);
  w.u32(frame.stream_id & 0x7fffffff);
  return w.take();
}

Bytes encode_frame(const Frame& frame) {
  ByteWriter w;
  w.bytes(encode_frame_header(frame));
  w.bytes(frame.payload);
  return w.take();
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::consume_preface() {
  if (buffered() < kConnectionPreface.size()) return false;
  for (std::size_t i = 0; i < kConnectionPreface.size(); ++i) {
    if (buffer_[offset_ + i] !=
        static_cast<std::uint8_t>(kConnectionPreface[i])) {
      throw WireError("bad HTTP/2 connection preface");
    }
  }
  offset_ += kConnectionPreface.size();
  return true;
}

std::optional<Frame> FrameReader::next(std::size_t max_frame_size) {
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const auto frame_at = buffer_.begin() + static_cast<std::ptrdiff_t>(offset_);
  const std::size_t length = (static_cast<std::size_t>(frame_at[0]) << 16) |
                             (static_cast<std::size_t>(frame_at[1]) << 8) |
                             frame_at[2];
  if (length > max_frame_size) {
    throw WireError("frame exceeds SETTINGS_MAX_FRAME_SIZE");
  }
  if (buffered() < kFrameHeaderBytes + length) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(frame_at[3]);
  frame.flags = frame_at[4];
  frame.stream_id = ((static_cast<std::uint32_t>(frame_at[5]) << 24) |
                     (static_cast<std::uint32_t>(frame_at[6]) << 16) |
                     (static_cast<std::uint32_t>(frame_at[7]) << 8) |
                     frame_at[8]) &
                    0x7fffffff;
  frame.payload = Bytes(
      frame_at + kFrameHeaderBytes,
      frame_at + static_cast<std::ptrdiff_t>(kFrameHeaderBytes + length));
  offset_ += kFrameHeaderBytes + length;
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  } else if (offset_ >= 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  return frame;
}

}  // namespace dohperf::http2
