// HTTP/2 frame codec (RFC 7540 §4): 9-byte frame header plus typed payloads
// for the frame types the connection layer uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/wire.hpp"
#include "simnet/buffer.hpp"

namespace dohperf::http2 {

using dns::ByteReader;
using dns::ByteWriter;
using dns::Bytes;
using dns::WireError;
using simnet::BufferSlice;

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

std::string to_string(FrameType t);

// Frame flags.
constexpr std::uint8_t kFlagEndStream = 0x1;   // DATA, HEADERS
constexpr std::uint8_t kFlagAck = 0x1;         // SETTINGS, PING
constexpr std::uint8_t kFlagEndHeaders = 0x4;  // HEADERS, CONTINUATION

constexpr std::size_t kFrameHeaderBytes = 9;
constexpr std::size_t kDefaultMaxFrameSize = 16384;

/// The client connection preface (RFC 7540 §3.5).
inline constexpr std::string_view kConnectionPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Settings identifiers (RFC 7540 §6.5.2).
enum class SettingId : std::uint16_t {
  kHeaderTableSize = 0x1,
  kEnablePush = 0x2,
  kMaxConcurrentStreams = 0x3,
  kInitialWindowSize = 0x4,
  kMaxFrameSize = 0x5,
  kMaxHeaderListSize = 0x6,
};

/// Error codes (RFC 7540 §7).
enum class H2Error : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kRefusedStream = 0x7,
};

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  /// DATA payloads are zero-copy views of the response body; control frame
  /// payloads are small owned buffers wrapped in a slice.
  BufferSlice payload;

  bool has_flag(std::uint8_t flag) const noexcept {
    return (flags & flag) != 0;
  }
  std::size_t wire_size() const noexcept {
    return kFrameHeaderBytes + payload.size();
  }
};

/// Serialize one frame (header + payload) into one contiguous buffer.
Bytes encode_frame(const Frame& frame);

/// Serialize just the 9-byte frame header; the payload travels as its own
/// slice so the connection layer can send {header, payload} without copying.
Bytes encode_frame_header(const Frame& frame);

/// Incremental frame reader over a byte stream.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> data);

  /// Pop the next complete frame if buffered. Throws WireError on frames
  /// exceeding `max_frame_size` (connection error in real HTTP/2).
  std::optional<Frame> next(std::size_t max_frame_size = kDefaultMaxFrameSize);

  /// For the server: consume and verify the 24-byte connection preface.
  /// Returns false until enough bytes have arrived; throws on mismatch.
  bool consume_preface();

  std::size_t buffered() const noexcept { return buffer_.size() - offset_; }

 private:
  Bytes buffer_;
  /// Consumed prefix of buffer_, reclaimed lazily instead of a per-frame
  /// front-erase.
  std::size_t offset_ = 0;
};

}  // namespace dohperf::http2
