#include "http2/hpack.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <queue>

namespace dohperf::http2 {

// --- static table (RFC 7541 Appendix A) --------------------------------------

const std::vector<HeaderField>& static_table() {
  static const std::vector<HeaderField> kTable = {
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  };
  return kTable;
}

// --- dynamic table ------------------------------------------------------------

void DynamicTable::insert(HeaderField field) {
  const std::size_t entry_size = field.table_size();
  if (entry_size > max_size_) {
    // RFC 7541 §4.4: an entry larger than the table empties it.
    entries_.clear();
    size_ = 0;
    return;
  }
  size_ += entry_size;
  entries_.push_front(std::move(field));
  evict();
}

void DynamicTable::evict() {
  while (size_ > max_size_ && !entries_.empty()) {
    size_ -= entries_.back().table_size();
    entries_.pop_back();
  }
}

const HeaderField& DynamicTable::at(std::size_t index) const {
  if (index == 0 || index > entries_.size()) {
    throw HpackError("dynamic table index out of range");
  }
  return entries_[index - 1];
}

void DynamicTable::set_max_size(std::size_t max_size) {
  max_size_ = max_size;
  evict();
}

std::optional<std::size_t> DynamicTable::find(const HeaderField& field,
                                              bool* name_only) const {
  std::optional<std::size_t> name_match;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == field.name) {
      if (entries_[i].value == field.value) {
        if (name_only != nullptr) *name_only = false;
        return i + 1;
      }
      if (!name_match) name_match = i + 1;
    }
  }
  if (name_match && name_only != nullptr) {
    *name_only = true;
    return name_match;
  }
  return std::nullopt;
}

// --- prefix integers (RFC 7541 §5.1) -----------------------------------------

void encode_integer(Bytes& out, std::uint8_t prefix_bits,
                    std::uint8_t first_byte_flags, std::uint64_t value) {
  assert(prefix_bits >= 1 && prefix_bits <= 8);
  const std::uint64_t limit = (1ULL << prefix_bits) - 1;
  if (value < limit) {
    out.push_back(static_cast<std::uint8_t>(first_byte_flags | value));
    return;
  }
  out.push_back(static_cast<std::uint8_t>(first_byte_flags | limit));
  value -= limit;
  while (value >= 128) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t decode_integer(dns::ByteReader& r, std::uint8_t prefix_bits,
                             std::uint8_t* first_byte_flags) {
  assert(prefix_bits >= 1 && prefix_bits <= 8);
  const std::uint8_t first = r.u8();
  const std::uint64_t limit = (1ULL << prefix_bits) - 1;
  if (first_byte_flags != nullptr) {
    *first_byte_flags = static_cast<std::uint8_t>(first & ~limit);
  }
  std::uint64_t value = first & limit;
  if (value < limit) return value;
  std::uint64_t shift = 0;
  for (;;) {
    const std::uint8_t byte = r.u8();
    value += static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 62) throw HpackError("integer overflow");
  }
  return value;
}

// --- Huffman coding -----------------------------------------------------------
//
// A canonical Huffman code built once from a symbol-weight model of header
// text: lowercase letters, digits and the URL/header punctuation that
// dominates HTTP headers get short codes. Symbol 256 is EOS.

namespace {

constexpr std::size_t kSymbols = 257;

struct HuffmanCode {
  std::uint32_t bits = 0;   ///< left-aligned in `length` low bits
  std::uint8_t length = 0;  ///< code length in bits
};

/// Weight model: larger weight = shorter code.
std::array<std::uint32_t, kSymbols> symbol_weights() {
  std::array<std::uint32_t, kSymbols> w;
  w.fill(1);  // rare bytes
  auto set = [&](unsigned char c, std::uint32_t weight) { w[c] = weight; };
  for (char c = 'a'; c <= 'z'; ++c) set(static_cast<unsigned char>(c), 600);
  for (char c = '0'; c <= '9'; ++c) set(static_cast<unsigned char>(c), 700);
  for (char c = 'A'; c <= 'Z'; ++c) set(static_cast<unsigned char>(c), 60);
  // The heavy hitters of header text.
  set('e', 1200); set('t', 1000); set('a', 1000); set('o', 900);
  set('n', 900); set('s', 900); set('i', 900); set('r', 800); set('c', 800);
  set('/', 900); set('.', 800); set('-', 700); set(':', 500); set('=', 400);
  set(',', 400); set(' ', 500); set(';', 300); set('%', 200); set('?', 200);
  set('&', 300); set('_', 200); set('"', 100); set('*', 100); set('+', 100);
  // Weight 0 forces EOS to maximum depth; being the largest symbol value
  // it then receives the all-ones canonical code, so long runs of 1-bit
  // padding deterministically hit EOS and are rejected (like RFC 7541).
  w[256] = 0;
  return w;
}

struct Node {
  std::uint64_t weight;
  int index;  ///< tie-break for determinism
  int symbol; ///< -1 for internal
  int left = -1, right = -1;
};

/// Build code lengths with a deterministic Huffman construction, then assign
/// canonical codes (shorter codes first, ties by symbol value).
std::array<HuffmanCode, kSymbols> build_codes() {
  const auto weights = symbol_weights();
  std::vector<Node> nodes;
  nodes.reserve(kSymbols * 2);
  using QItem = std::pair<std::pair<std::uint64_t, int>, int>;  // ((w, idx), node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> heap;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    nodes.push_back(Node{weights[s], static_cast<int>(s),
                         static_cast<int>(s)});
    heap.push({{weights[s], static_cast<int>(s)},
               static_cast<int>(nodes.size() - 1)});
  }
  int next_index = kSymbols;
  while (heap.size() > 1) {
    const auto a = heap.top(); heap.pop();
    const auto b = heap.top(); heap.pop();
    Node parent{a.first.first + b.first.first, next_index++, -1,
                a.second, b.second};
    nodes.push_back(parent);
    heap.push({{parent.weight, parent.index},
               static_cast<int>(nodes.size() - 1)});
  }

  // Depth-first traversal to get code lengths.
  std::array<std::uint8_t, kSymbols> lengths{};
  struct Frame { int node; std::uint8_t depth; };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] =
          std::max<std::uint8_t>(f.depth, 1);
      continue;
    }
    stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
    stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
  }

  // Canonical code assignment.
  std::vector<int> order(kSymbols);
  for (std::size_t i = 0; i < kSymbols; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::array<HuffmanCode, kSymbols> codes{};
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (int sym : order) {
    const std::uint8_t len = lengths[static_cast<std::size_t>(sym)];
    code <<= (len - prev_len);
    codes[static_cast<std::size_t>(sym)] = HuffmanCode{code, len};
    ++code;
    prev_len = len;
  }
  return codes;
}

const std::array<HuffmanCode, kSymbols>& codes() {
  static const auto kCodes = build_codes();
  return kCodes;
}

/// Decode tree node: branch[0]/branch[1] index into the tree vector, or
/// symbol >= 0 at leaves.
struct DecodeNode {
  int branch[2] = {-1, -1};
  int symbol = -1;
};

const std::vector<DecodeNode>& decode_tree() {
  static const std::vector<DecodeNode> kTree = [] {
    std::vector<DecodeNode> tree(1);
    const auto& cs = codes();
    for (std::size_t sym = 0; sym < kSymbols; ++sym) {
      const auto& c = cs[sym];
      int node = 0;
      for (int bit = c.length - 1; bit >= 0; --bit) {
        const int b = (c.bits >> bit) & 1;
        if (tree[static_cast<std::size_t>(node)].branch[b] < 0) {
          tree[static_cast<std::size_t>(node)].branch[b] =
              static_cast<int>(tree.size());
          tree.emplace_back();
        }
        node = tree[static_cast<std::size_t>(node)].branch[b];
      }
      tree[static_cast<std::size_t>(node)].symbol = static_cast<int>(sym);
    }
    return tree;
  }();
  return kTree;
}

class BitWriter {
 public:
  void write(std::uint32_t bits, std::uint8_t length) {
    for (int i = length - 1; i >= 0; --i) {
      current_ = static_cast<std::uint8_t>((current_ << 1) |
                                           ((bits >> i) & 1));
      if (++filled_ == 8) {
        out_.push_back(current_);
        current_ = 0;
        filled_ = 0;
      }
    }
  }

  /// Pad the final partial byte with 1s (EOS prefix, RFC 7541 §5.2).
  Bytes finish() {
    if (filled_ > 0) {
      current_ = static_cast<std::uint8_t>(
          (current_ << (8 - filled_)) | ((1u << (8 - filled_)) - 1));
      out_.push_back(current_);
    }
    return std::move(out_);
  }

 private:
  Bytes out_;
  std::uint8_t current_ = 0;
  int filled_ = 0;
};

}  // namespace

Bytes huffman_encode(std::string_view text) {
  BitWriter writer;
  const auto& cs = codes();
  for (unsigned char c : text) {
    writer.write(cs[c].bits, cs[c].length);
  }
  return writer.finish();
}

std::size_t huffman_encoded_size(std::string_view text) {
  std::size_t bits = 0;
  const auto& cs = codes();
  for (unsigned char c : text) bits += cs[c].length;
  return (bits + 7) / 8;
}

std::string huffman_decode(std::span<const std::uint8_t> data) {
  const auto& tree = decode_tree();
  std::string out;
  int node = 0;
  int depth = 0;
  for (std::uint8_t byte : data) {
    for (int i = 7; i >= 0; --i) {
      const int b = (byte >> i) & 1;
      const int next = tree[static_cast<std::size_t>(node)].branch[b];
      if (next < 0) throw HpackError("invalid Huffman sequence");
      node = next;
      ++depth;
      const int sym = tree[static_cast<std::size_t>(node)].symbol;
      if (sym >= 0) {
        if (sym == 256) throw HpackError("unexpected EOS symbol");
        out += static_cast<char>(sym);
        node = 0;
        depth = 0;
      }
    }
  }
  // Trailing bits must be a prefix of EOS (all 1s) shorter than a byte;
  // our padding is at most 7 bits, so depth < 8 suffices as a check.
  if (depth >= 8) throw HpackError("excessive Huffman padding");
  return out;
}

// --- encoder -------------------------------------------------------------------

void HpackEncoder::disable_dynamic_table() {
  pending_table_update_ = true;
  pending_table_size_ = 0;
  table_.set_max_size(0);
}

void HpackEncoder::encode_string(Bytes& out, std::string_view text) {
  const std::size_t huffman_size = huffman_encoded_size(text);
  if (huffman_size < text.size()) {
    encode_integer(out, 7, 0x80, huffman_size);
    const Bytes encoded = huffman_encode(text);
    out.insert(out.end(), encoded.begin(), encoded.end());
  } else {
    encode_integer(out, 7, 0x00, text.size());
    out.insert(out.end(), text.begin(), text.end());
  }
}

void HpackEncoder::encode_field(Bytes& out, const HeaderField& field) {
  ++stats_.fields;
  // 1. Full match in static table -> indexed.
  const auto& st = static_table();
  std::optional<std::size_t> static_name_match;
  for (std::size_t i = 0; i < st.size(); ++i) {
    if (st[i].name == field.name) {
      if (st[i].value == field.value) {
        encode_integer(out, 7, 0x80, i + 1);
        ++stats_.indexed_static;
        return;
      }
      if (!static_name_match) static_name_match = i + 1;
    }
  }
  // 2. Full match in dynamic table -> indexed.
  bool name_only = false;
  if (const auto idx = table_.find(field, &name_only)) {
    if (!name_only) {
      encode_integer(out, 7, 0x80, st.size() + *idx);
      ++stats_.indexed_dynamic;
      return;
    }
  }
  ++stats_.literals;
  // 3. Literal with incremental indexing.
  std::size_t name_index = 0;
  if (static_name_match) {
    name_index = *static_name_match;
  } else if (const auto idx = table_.find(field, &name_only);
             idx && name_only) {
    name_index = st.size() + *idx;
  }
  encode_integer(out, 6, 0x40, name_index);
  if (name_index == 0) encode_string(out, field.name);
  encode_string(out, field.value);
  if (table_.max_size() > 0) {
    table_.insert(field);
    ++stats_.table_inserts;
  }
}

Bytes HpackEncoder::encode(const std::vector<HeaderField>& headers) {
  Bytes out;
  if (pending_table_update_) {
    encode_integer(out, 5, 0x20, pending_table_size_);
    pending_table_update_ = false;
  }
  for (const auto& field : headers) encode_field(out, field);
  return out;
}

// --- decoder --------------------------------------------------------------------

HeaderField HpackDecoder::lookup(std::size_t index) const {
  const auto& st = static_table();
  if (index == 0) throw HpackError("index 0");
  if (index <= st.size()) return st[index - 1];
  return table_.at(index - st.size());
}

std::string HpackDecoder::decode_string(dns::ByteReader& r) {
  std::uint8_t flags = 0;
  const std::uint64_t length = decode_integer(r, 7, &flags);
  const Bytes raw = r.bytes(length);
  if (flags & 0x80) return huffman_decode(raw);
  return dns::to_string(raw);
}

std::vector<HeaderField> HpackDecoder::decode(
    std::span<const std::uint8_t> block) {
  std::vector<HeaderField> out;
  dns::ByteReader r(block);
  while (!r.exhausted()) {
    const std::uint8_t first = r.peek_at(r.offset());
    if (first & 0x80) {
      // Indexed field.
      const std::uint64_t index = decode_integer(r, 7);
      out.push_back(lookup(index));
    } else if (first & 0x40) {
      // Literal with incremental indexing.
      const std::uint64_t name_index = decode_integer(r, 6);
      HeaderField field;
      field.name = name_index == 0 ? decode_string(r)
                                   : lookup(name_index).name;
      field.value = decode_string(r);
      if (table_.max_size() > 0) table_.insert(field);
      out.push_back(std::move(field));
    } else if (first & 0x20) {
      // Dynamic table size update.
      const std::uint64_t new_size = decode_integer(r, 5);
      table_.set_max_size(new_size);
    } else {
      // Literal without indexing / never indexed (0x00 / 0x10 prefix).
      const std::uint64_t name_index = decode_integer(r, 4);
      HeaderField field;
      field.name = name_index == 0 ? decode_string(r)
                                   : lookup(name_index).name;
      field.value = decode_string(r);
      out.push_back(std::move(field));
    }
  }
  return out;
}

}  // namespace dohperf::http2
