#include "http2/connection.hpp"

#include <algorithm>
#include <cassert>

namespace dohperf::http2 {

Http2Connection::Http2Connection(
    std::unique_ptr<simnet::ByteStream> transport, Role role,
    Http2Config config)
    : transport_(std::move(transport)), role_(role), config_(config),
      encoder_(config.header_table_size), decoder_(config.header_table_size),
      next_stream_id_(role == Role::kClient ? 1 : 2) {
  if (!config_.enable_hpack_dynamic_table) encoder_.disable_dynamic_table();
  simnet::ByteStream::Handlers h;
  h.on_open = [this]() { on_transport_open(); };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_transport_data(d); };
  h.on_close = [this]() { on_transport_close(); };
  transport_->set_handlers(std::move(h));
  if (transport_->is_open()) on_transport_open();
}

void Http2Connection::on_transport_open() {
  if (transport_open_) return;
  transport_open_ = true;
  send_preface_and_settings();
  while (!pending_pings_.empty()) {
    auto cb = std::move(pending_pings_.front());
    pending_pings_.pop_front();
    ping(std::move(cb));
  }
  // Flush requests queued before the transport opened.
  while (!queued_requests_.empty()) {
    auto [msg, handler] = std::move(queued_requests_.front());
    queued_requests_.pop_front();
    request(std::move(msg), std::move(handler));
  }
}

void Http2Connection::send_preface_and_settings() {
  if (settings_sent_) return;
  settings_sent_ = true;
  if (role_ == Role::kClient) {
    Bytes preface(kConnectionPreface.begin(), kConnectionPreface.end());
    counters_.mgmt_bytes_sent += preface.size();
    cork();
    cork_chain_.emplace_back(std::move(preface));
    send_settings(/*ack=*/false);
    uncork();
    return;
  }
  send_settings(/*ack=*/false);
}

void Http2Connection::send_frame(Frame frame) {
  // Dropping frames once the transport is gone mirrors a real server whose
  // late responses hit a closed socket (e.g. a delayed answer racing a
  // client disconnect).
  if (!transport_->is_open()) return;
  // Byte attribution per the Fig 5 convention (see H2Counters).
  switch (frame.type) {
    case FrameType::kHeaders:
    case FrameType::kContinuation:
      counters_.header_bytes_sent += frame.wire_size();
      break;
    case FrameType::kData:
      counters_.body_bytes_sent += frame.payload.size();
      counters_.mgmt_bytes_sent += kFrameHeaderBytes;
      break;
    default:
      counters_.mgmt_bytes_sent += frame.wire_size();
      break;
  }
  // {9-byte header, payload slice}: the payload (for DATA frames, a view of
  // the response body) crosses into the transport without being copied.
  BufferSlice header{encode_frame_header(frame)};
  if (corked_) {
    cork_chain_.push_back(std::move(header));
    if (!frame.payload.empty()) cork_chain_.push_back(std::move(frame.payload));
  } else {
    const BufferSlice pieces[2] = {std::move(header), std::move(frame.payload)};
    transport_->send_chain(std::span<const BufferSlice>(
        pieces, pieces[1].empty() ? 1 : 2));
  }
}

void Http2Connection::cork() { corked_ = true; }

void Http2Connection::uncork() {
  corked_ = false;
  if (!cork_chain_.empty()) {
    const std::vector<BufferSlice> chain = std::move(cork_chain_);
    cork_chain_.clear();
    if (transport_->is_open()) transport_->send_chain(chain);
  }
}

void Http2Connection::send_settings(bool ack) {
  Frame frame;
  frame.type = FrameType::kSettings;
  frame.flags = ack ? kFlagAck : 0;
  if (!ack) {
    ByteWriter w;
    auto put = [&w](SettingId id, std::uint32_t value) {
      w.u16(static_cast<std::uint16_t>(id));
      w.u32(value);
    };
    put(SettingId::kHeaderTableSize,
        static_cast<std::uint32_t>(config_.header_table_size));
    put(SettingId::kEnablePush, 0);
    put(SettingId::kMaxConcurrentStreams, config_.max_concurrent_streams);
    put(SettingId::kInitialWindowSize, config_.initial_window_size);
    put(SettingId::kMaxFrameSize,
        static_cast<std::uint32_t>(config_.max_frame_size));
    frame.payload = w.take();
  }
  send_frame(std::move(frame));
}

void Http2Connection::send_window_update(std::uint32_t stream_id,
                                         std::uint32_t increment) {
  if (increment == 0) return;
  Frame frame;
  frame.type = FrameType::kWindowUpdate;
  frame.stream_id = stream_id;
  ByteWriter w;
  w.u32(increment);
  frame.payload = w.take();
  send_frame(std::move(frame));
}

void Http2Connection::send_headers(std::uint32_t stream_id,
                                   const std::vector<HeaderField>& headers,
                                   bool end_stream) {
  const BufferSlice block{encoder_.encode(headers)};
  // Split into HEADERS + CONTINUATION if the block exceeds the frame limit.
  std::size_t offset = 0;
  bool first = true;
  do {
    const std::size_t chunk =
        std::min(config_.max_frame_size, block.size() - offset);
    Frame frame;
    frame.type = first ? FrameType::kHeaders : FrameType::kContinuation;
    frame.stream_id = stream_id;
    frame.payload = block.subslice(offset, chunk);
    offset += chunk;
    const bool last = offset >= block.size();
    if (last) frame.flags |= kFlagEndHeaders;
    if (first && end_stream) frame.flags |= kFlagEndStream;
    send_frame(std::move(frame));
    first = false;
  } while (offset < block.size());
}

void Http2Connection::send_data(std::uint32_t stream_id, BufferSlice body,
                                bool end_stream) {
  auto& stream = streams_.at(stream_id);
  std::size_t offset = 0;
  while (offset < body.size()) {
    const std::int64_t window =
        std::min(connection_send_window_, stream.send_window);
    if (window <= 0) break;
    const std::size_t chunk =
        std::min({config_.max_frame_size, body.size() - offset,
                  static_cast<std::size_t>(window)});
    Frame frame;
    frame.type = FrameType::kData;
    frame.stream_id = stream_id;
    frame.payload = body.subslice(offset, chunk);
    offset += chunk;
    connection_send_window_ -= static_cast<std::int64_t>(chunk);
    stream.send_window -= static_cast<std::int64_t>(chunk);
    const bool last = offset >= body.size();
    if (last && end_stream) {
      frame.flags |= kFlagEndStream;
      stream.local_end = true;
    }
    send_frame(std::move(frame));
  }
  if (offset < body.size()) {
    // Flow-control blocked: stash the remainder as a view, no copy.
    stream.pending_body.push_back(body.subslice(offset));
  } else if (body.empty() && end_stream && !stream.local_end) {
    // Zero-length END_STREAM DATA frame.
    Frame frame;
    frame.type = FrameType::kData;
    frame.stream_id = stream_id;
    frame.flags = kFlagEndStream;
    stream.local_end = true;
    send_frame(std::move(frame));
  }
}

void Http2Connection::try_flush_blocked() {
  for (auto& [id, stream] : streams_) {
    if (!stream.pending_body.empty()) {
      std::vector<BufferSlice> chunks = std::move(stream.pending_body);
      stream.pending_body.clear();
      // A single stashed slice (the common case) goes back out zero-copy;
      // multiple stashes are flattened so re-chunking at window boundaries
      // matches the historical contiguous-buffer behaviour exactly.
      BufferSlice body = chunks.size() == 1
                             ? std::move(chunks.front())
                             : BufferSlice{simnet::coalesce(chunks)};
      send_data(id, std::move(body), /*end_stream=*/true);
    }
  }
}

void Http2Connection::request(H2Message message,
                              ResponseHandler on_response) {
  assert(role_ == Role::kClient);
  if (!transport_open_) {
    queued_requests_.emplace_back(std::move(message), std::move(on_response));
    return;
  }
  const std::uint32_t stream_id = next_stream_id_;
  next_stream_id_ += 2;
  Stream stream;
  stream.on_response = std::move(on_response);
  stream.send_window = peer_initial_window_;
  streams_.emplace(stream_id, std::move(stream));
  ++counters_.requests;

  const bool has_body = !message.body.empty();
  // HEADERS and DATA go out as separate writes (and thus separate TLS
  // records / TCP segments), matching the 2019-era Python/doh-proxy
  // stacks whose traffic the paper measured.
  send_headers(stream_id, message.headers, /*end_stream=*/!has_body);
  if (has_body) send_data(stream_id, std::move(message.body), true);
  if (stream_observer_) stream_observer_(stream_id, StreamEvent::kRequestSent);
}

void Http2Connection::ping(std::function<void()> on_ack) {
  if (!transport_open_) {
    // Nothing may precede the connection preface on the wire.
    pending_pings_.push_back(std::move(on_ack));
    return;
  }
  ping_handlers_.push_back(std::move(on_ack));
  Frame frame;
  frame.type = FrameType::kPing;
  frame.payload = Bytes(8, 0);
  send_frame(std::move(frame));
}

void Http2Connection::close(H2Error error) {
  if (goaway_sent_) return;
  goaway_sent_ = true;
  if (transport_->is_open() || transport_open_) {
    Frame frame;
    frame.type = FrameType::kGoaway;
    ByteWriter w;
    w.u32(next_stream_id_ > 2 ? next_stream_id_ - 2 : 0);
    w.u32(static_cast<std::uint32_t>(error));
    frame.payload = w.take();
    send_frame(std::move(frame));
  }
  transport_->close();
}

void Http2Connection::on_transport_data(std::span<const std::uint8_t> data) {
  reader_.feed(data);
  try {
    if (role_ == Role::kServer && !preface_done_) {
      if (!reader_.consume_preface()) return;
      preface_done_ = true;
      counters_.mgmt_bytes_received += kConnectionPreface.size();
    }
    while (auto frame = reader_.next(config_.max_frame_size)) {
      handle_frame(*frame);
    }
  } catch (const WireError&) {
    protocol_error();
  } catch (const HpackError&) {
    protocol_error();
  }
}

void Http2Connection::protocol_error() {
  close(H2Error::kProtocolError);
  if (on_error_) on_error_();
}

void Http2Connection::handle_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHeaders:
    case FrameType::kContinuation:
      counters_.header_bytes_received += frame.wire_size();
      handle_headers(frame);
      return;
    case FrameType::kData:
      counters_.body_bytes_received += frame.payload.size();
      counters_.mgmt_bytes_received += kFrameHeaderBytes;
      handle_data(frame);
      return;
    case FrameType::kSettings:
      counters_.mgmt_bytes_received += frame.wire_size();
      handle_settings(frame);
      return;
    case FrameType::kWindowUpdate:
      counters_.mgmt_bytes_received += frame.wire_size();
      handle_window_update(frame);
      return;
    case FrameType::kPing:
      counters_.mgmt_bytes_received += frame.wire_size();
      handle_ping(frame);
      return;
    case FrameType::kGoaway:
      counters_.mgmt_bytes_received += frame.wire_size();
      goaway_received_ = true;
      // A client with work in flight treats GOAWAY like a transport loss:
      // the peer is shutting down and will not answer those streams.
      if (role_ == Role::kClient && on_error_ &&
          (!streams_.empty() || !queued_requests_.empty())) {
        on_error_();
      }
      return;
    case FrameType::kRstStream:
    case FrameType::kPriority:
    case FrameType::kPushPromise:
      counters_.mgmt_bytes_received += frame.wire_size();
      return;  // tolerated, nothing to do in the experiments
  }
  throw WireError("unknown frame type");
}

void Http2Connection::handle_headers(const Frame& frame) {
  if (frame.stream_id == 0) throw WireError("HEADERS on stream 0");
  auto [it, inserted] = streams_.try_emplace(frame.stream_id);
  Stream& stream = it->second;
  if (inserted) {
    if (role_ == Role::kClient) throw WireError("server-initiated stream");
    stream.send_window = peer_initial_window_;
  }
  if (role_ == Role::kClient && !stream.response_began) {
    stream.response_began = true;
    if (stream_observer_) {
      stream_observer_(frame.stream_id, StreamEvent::kResponseBegan);
    }
  }

  // A header block split across HEADERS + CONTINUATION frames is one HPACK
  // unit: it must be reassembled before decoding (RFC 7540 §4.3).
  stream.header_block.insert(stream.header_block.end(),
                             frame.payload.begin(), frame.payload.end());
  if (frame.has_flag(kFlagEndHeaders)) {
    const auto fields = decoder_.decode(stream.header_block);
    stream.header_block.clear();
    stream.headers.insert(stream.headers.end(), fields.begin(), fields.end());
    stream.headers_done = true;
  }
  if (frame.has_flag(kFlagEndStream)) stream.remote_end = true;
  if (stream.headers_done && stream.remote_end) {
    stream_complete(frame.stream_id);
  }
}

void Http2Connection::handle_data(const Frame& frame) {
  const auto it = streams_.find(frame.stream_id);
  if (it == streams_.end()) throw WireError("DATA on unknown stream");
  Stream& stream = it->second;
  stream.body.insert(stream.body.end(), frame.payload.begin(),
                     frame.payload.end());
  // Replenish flow-control windows in bulk once half the window has been
  // consumed (like production stacks), not per frame.
  if (!frame.payload.empty()) {
    const std::uint64_t threshold = config_.initial_window_size / 2;
    conn_consumed_ += frame.payload.size();
    if (conn_consumed_ >= threshold) {
      send_window_update(0, static_cast<std::uint32_t>(conn_consumed_));
      conn_consumed_ = 0;
    }
    if (frame.has_flag(kFlagEndStream)) {
      stream_consumed_.erase(frame.stream_id);
    } else {
      auto& consumed = stream_consumed_[frame.stream_id];
      consumed += frame.payload.size();
      if (consumed >= threshold) {
        send_window_update(frame.stream_id,
                           static_cast<std::uint32_t>(consumed));
        consumed = 0;
      }
    }
  }
  if (frame.has_flag(kFlagEndStream)) {
    stream.remote_end = true;
    if (stream.headers_done) stream_complete(frame.stream_id);
  }
}

void Http2Connection::handle_settings(const Frame& frame) {
  if (frame.has_flag(kFlagAck)) return;
  ByteReader r(frame.payload);
  while (!r.exhausted()) {
    const auto id = static_cast<SettingId>(r.u16());
    const std::uint32_t value = r.u32();
    switch (id) {
      case SettingId::kInitialWindowSize: {
        const std::int64_t delta =
            static_cast<std::int64_t>(value) - peer_initial_window_;
        peer_initial_window_ = value;
        for (auto& [sid, stream] : streams_) stream.send_window += delta;
        break;
      }
      case SettingId::kMaxFrameSize:
        config_.max_frame_size = value;
        break;
      default:
        break;  // accepted, not modelled
    }
  }
  send_settings(/*ack=*/true);
  try_flush_blocked();
}

void Http2Connection::handle_window_update(const Frame& frame) {
  ByteReader r(frame.payload);
  const std::uint32_t increment = r.u32() & 0x7fffffff;
  if (frame.stream_id == 0) {
    connection_send_window_ += increment;
  } else {
    const auto it = streams_.find(frame.stream_id);
    if (it != streams_.end()) it->second.send_window += increment;
  }
  try_flush_blocked();
}

void Http2Connection::handle_ping(const Frame& frame) {
  if (frame.has_flag(kFlagAck)) {
    if (!ping_handlers_.empty()) {
      auto handler = std::move(ping_handlers_.front());
      ping_handlers_.pop_front();
      if (handler) handler();
    }
    return;
  }
  Frame pong;
  pong.type = FrameType::kPing;
  pong.flags = kFlagAck;
  pong.payload = frame.payload;
  send_frame(std::move(pong));
}

void Http2Connection::stream_complete(std::uint32_t stream_id) {
  auto node = streams_.extract(stream_id);
  Stream& stream = node.mapped();
  H2Message message;
  message.headers = std::move(stream.headers);
  message.body = std::move(stream.body);

  if (role_ == Role::kClient) {
    ++counters_.responses;
    if (stream_observer_) {
      stream_observer_(stream_id, StreamEvent::kStreamClosed);
    }
    if (stream.on_response) stream.on_response(message);
    return;
  }

  // Server: hand the request to the application. The responder re-creates
  // stream state so the (possibly delayed) answer can be sent on the same
  // stream id, independent of other streams.
  ++counters_.requests;
  Stream response_stream;
  response_stream.send_window = peer_initial_window_;
  streams_.emplace(stream_id, std::move(response_stream));
  if (!request_handler_) throw WireError("no request handler installed");
  request_handler_(message, [this, stream_id](H2Message response) {
    const auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;  // reset/closed meanwhile
    ++counters_.responses;
    const bool has_body = !response.body.empty();
    send_headers(stream_id, response.headers, !has_body);
    if (has_body) send_data(stream_id, std::move(response.body), true);
    // If flow control blocked part of the body, it flushes on
    // WINDOW_UPDATE; erase only when fully sent.
    if (streams_.at(stream_id).pending_body.empty()) {
      streams_.erase(stream_id);
    }
  });
}

void Http2Connection::on_transport_close() {
  // Requests still queued behind a transport that never opened (e.g. the
  // TCP SYN was refused) are just as dead as open streams.
  if (on_error_ && role_ == Role::kClient &&
      (!streams_.empty() || !queued_requests_.empty())) {
    on_error_();
  }
}

}  // namespace dohperf::http2
