// HPACK header compression (RFC 7541): indexed representations against the
// 61-entry static table, a dynamic table with size-based eviction, prefix
// integer coding and Huffman string coding.
//
// HPACK's dynamic table is what produces the paper's "differential headers"
// effect (Fig 5): on a persistent connection, repeated headers collapse to
// one-byte indexed representations after the first request.
//
// SUBSTITUTION NOTE: the Huffman code is a canonical Huffman code generated
// from a documented header-text symbol-weight model instead of the literal
// RFC 7541 Appendix B table. Both endpoints are in this repository, so no
// interop is required; compression ratios on real header strings are
// comparable (common header characters get 5-6 bit codes).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "dns/wire.hpp"

namespace dohperf::http2 {

using dns::Bytes;

struct HeaderField {
  std::string name;   ///< lowercase (HTTP/2 requirement)
  std::string value;

  bool operator==(const HeaderField&) const = default;

  /// RFC 7541 §4.1: table-accounting size of an entry.
  std::size_t table_size() const noexcept {
    return name.size() + value.size() + 32;
  }
};

class HpackError : public std::runtime_error {
 public:
  explicit HpackError(const std::string& what) : std::runtime_error(what) {}
};

/// The shared dynamic table logic (encoder and decoder each own one and the
/// representations keep them in lock-step).
class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  void insert(HeaderField field);
  /// 1-based index into the dynamic table (1 = most recent entry).
  const HeaderField& at(std::size_t index) const;
  std::size_t entry_count() const noexcept { return entries_.size(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t max_size() const noexcept { return max_size_; }
  void set_max_size(std::size_t max_size);

  /// Find an entry matching name+value, or name only; returns 1-based index.
  std::optional<std::size_t> find(const HeaderField& field,
                                  bool* name_only) const;

 private:
  void evict();

  std::size_t max_size_;
  std::size_t size_ = 0;
  std::deque<HeaderField> entries_;  ///< front = most recent
};

/// RFC 7541 §5.1 prefix integer coding.
void encode_integer(Bytes& out, std::uint8_t prefix_bits,
                    std::uint8_t first_byte_flags, std::uint64_t value);
std::uint64_t decode_integer(dns::ByteReader& r, std::uint8_t prefix_bits,
                             std::uint8_t* first_byte_flags = nullptr);

/// Huffman string coding (canonical code; see substitution note above).
Bytes huffman_encode(std::string_view text);
std::string huffman_decode(std::span<const std::uint8_t> data);
/// Encoded size without producing the bytes (for the shorter-of-two choice).
std::size_t huffman_encoded_size(std::string_view text);

/// How each encoded field was represented — the dynamic-table hit counters
/// behind the paper's "differential headers" effect (Fig 5): on a
/// persistent connection, repeated headers collapse to indexed_dynamic.
struct HpackEncoderStats {
  std::uint64_t fields = 0;           ///< header fields encoded in total
  std::uint64_t indexed_static = 0;   ///< full match in the static table
  std::uint64_t indexed_dynamic = 0;  ///< full match in the dynamic table
  std::uint64_t literals = 0;         ///< literal representations
  std::uint64_t table_inserts = 0;    ///< entries added to the dynamic table
};

class HpackEncoder {
 public:
  explicit HpackEncoder(std::size_t max_table_size = 4096)
      : table_(max_table_size) {}

  /// Encode a header list into one header block.
  Bytes encode(const std::vector<HeaderField>& headers);

  /// Disable the dynamic table (encodes a 0 size update on the next block);
  /// used by the fig5 HPACK ablation.
  void disable_dynamic_table();

  const DynamicTable& table() const noexcept { return table_; }
  const HpackEncoderStats& stats() const noexcept { return stats_; }

 private:
  void encode_field(Bytes& out, const HeaderField& field);
  void encode_string(Bytes& out, std::string_view text);

  DynamicTable table_;
  HpackEncoderStats stats_;
  bool pending_table_update_ = false;
  std::size_t pending_table_size_ = 0;
};

class HpackDecoder {
 public:
  explicit HpackDecoder(std::size_t max_table_size = 4096)
      : table_(max_table_size) {}

  /// Decode one complete header block.
  std::vector<HeaderField> decode(std::span<const std::uint8_t> block);

  const DynamicTable& table() const noexcept { return table_; }

 private:
  HeaderField lookup(std::size_t index) const;
  std::string decode_string(dns::ByteReader& r);

  DynamicTable table_;
};

/// The RFC 7541 Appendix A static table (1-based, 61 entries).
const std::vector<HeaderField>& static_table();

}  // namespace dohperf::http2
