// Client-side session cache enabling TLS resumption across connections
// (one of the amortization mechanisms for persistent-vs-fresh DoH costs).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "tlssim/types.hpp"
#include "dns/wire.hpp"

namespace dohperf::tlssim {

struct Session {
  dns::Bytes ticket;
  TlsVersion version = TlsVersion::kTls13;
};

/// Stores one session per server name, like a browser's TLS session cache.
class SessionCache {
 public:
  void store(const std::string& server_name, Session session);
  std::optional<Session> lookup(const std::string& server_name) const;
  void clear() { sessions_.clear(); }
  std::size_t size() const noexcept { return sessions_.size(); }

 private:
  std::map<std::string, Session> sessions_;
};

}  // namespace dohperf::tlssim
