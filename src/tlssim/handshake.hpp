// TLS handshake message encodings.
//
// Messages use a compact field encoding (both endpoints are ours) padded
// with zeros to realistic wire sizes, so the byte accounting matches what a
// real handshake puts on the network while the contents stay synthetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/wire.hpp"
#include "tlssim/types.hpp"

namespace dohperf::tlssim {

using dns::Bytes;
using dns::ByteReader;
using dns::ByteWriter;
using dns::WireError;

enum class HsType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kEncryptedExtensions = 8,
  kCertificate = 11,
  kServerKeyExchange = 12,
  kServerHelloDone = 14,
  kCertificateVerify = 15,
  kClientKeyExchange = 16,
  kFinished = 20,
};

/// Realistic message sizes (bytes of handshake message body, excluding the
/// 4-byte message header). Sources: typical captures of TLS 1.2/1.3
/// handshakes with ECDHE + RSA-2048 certificates.
constexpr std::size_t kClientHelloBody = 250;
constexpr std::size_t kServerHello13Body = 120;
constexpr std::size_t kServerHello12Body = 90;
constexpr std::size_t kEncryptedExtensionsBody = 40;
constexpr std::size_t kCertificateVerifyBody = 264;
constexpr std::size_t kServerKeyExchangeBody = 300;
constexpr std::size_t kServerHelloDoneBody = 4;
constexpr std::size_t kClientKeyExchangeBody = 70;
constexpr std::size_t kFinishedBody = 40;
constexpr std::size_t kNewSessionTicketBody = 200;

struct ClientHello {
  TlsVersion min_version = TlsVersion::kTls12;
  TlsVersion max_version = TlsVersion::kTls13;
  std::string sni;
  std::vector<std::string> alpn;
  Bytes session_ticket;  ///< empty = no resumption attempt
};

struct ServerHello {
  TlsVersion version = TlsVersion::kTls13;
  std::string alpn;      ///< empty = no ALPN negotiated
  bool resumed = false;  ///< server accepted the offered ticket
};

struct CertificateMsg {
  std::string subject;
  std::uint8_t certificate_count = 2;
  bool ct_logged = true;
  bool ocsp_must_staple = false;
  std::uint32_t chain_bytes = 2500;  ///< padded body size
};

struct NewSessionTicketMsg {
  Bytes ticket;
};

/// A parsed handshake message: type plus whichever struct applies. Messages
/// with no interesting fields (Finished, SKE, SHD, CKE, EE) carry nothing.
struct HandshakeMessage {
  HsType type = HsType::kFinished;
  std::optional<ClientHello> client_hello;
  std::optional<ServerHello> server_hello;
  std::optional<CertificateMsg> certificate;
  std::optional<NewSessionTicketMsg> ticket;
};

// Encoders append one complete message (4-byte header + padded body).
void encode_client_hello(ByteWriter& w, const ClientHello& ch);
void encode_server_hello(ByteWriter& w, const ServerHello& sh);
void encode_certificate(ByteWriter& w, const CertificateMsg& cert);
void encode_new_session_ticket(ByteWriter& w, const NewSessionTicketMsg& t);
/// Field-free messages (Finished, EncryptedExtensions, SKE, SHD, CKE, CV).
void encode_plain(ByteWriter& w, HsType type, std::size_t body_size);

/// Decode one message at the reader's position.
HandshakeMessage decode_handshake(ByteReader& r);

}  // namespace dohperf::tlssim
