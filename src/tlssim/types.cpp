#include "tlssim/types.hpp"

namespace dohperf::tlssim {

std::string to_string(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls10: return "TLS 1.0";
    case TlsVersion::kTls11: return "TLS 1.1";
    case TlsVersion::kTls12: return "TLS 1.2";
    case TlsVersion::kTls13: return "TLS 1.3";
  }
  return "TLS ?";
}

CertificateChain CertificateChain::cloudflare() {
  CertificateChain c;
  c.subject = "cloudflare-dns.com";
  c.wire_bytes = 1960;  // as measured in the paper, §4
  c.certificate_count = 2;
  c.ct_logged = true;
  return c;
}

CertificateChain CertificateChain::google() {
  CertificateChain c;
  c.subject = "dns.google.com";
  c.wire_bytes = 3101;  // as measured in the paper, §4
  c.certificate_count = 2;
  c.ct_logged = true;
  return c;
}

CertificateChain CertificateChain::generic(std::string subject,
                                           std::size_t wire_bytes) {
  CertificateChain c;
  c.subject = std::move(subject);
  c.wire_bytes = wire_bytes;
  return c;
}

}  // namespace dohperf::tlssim
