#include "tlssim/context.hpp"

namespace dohperf::tlssim {

void SessionCache::store(const std::string& server_name, Session session) {
  sessions_[server_name] = std::move(session);
}

std::optional<Session> SessionCache::lookup(
    const std::string& server_name) const {
  const auto it = sessions_.find(server_name);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dohperf::tlssim
