#include "tlssim/handshake.hpp"

namespace dohperf::tlssim {

namespace {

/// Write the 4-byte handshake header (type + 24-bit length).
void write_header(ByteWriter& w, HsType type, std::size_t body_len) {
  if (body_len > 0xffffff) throw WireError("handshake message too large");
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>((body_len >> 16) & 0xff));
  w.u16(static_cast<std::uint16_t>(body_len & 0xffff));
}

/// Pad `w` with zeros until the body that started at `body_start` reaches
/// `target` bytes.
void pad_body(ByteWriter& w, std::size_t body_start, std::size_t target) {
  while (w.size() - body_start < target) w.u8(0);
}

void write_lv_string(ByteWriter& w, const std::string& s) {
  if (s.size() > 0xffff) throw WireError("string too long");
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.string(s);
}

std::string read_lv_string(ByteReader& r) {
  const std::uint16_t len = r.u16();
  return r.string(len);
}

}  // namespace

void encode_client_hello(ByteWriter& w, const ClientHello& ch) {
  ByteWriter body;
  body.u16(static_cast<std::uint16_t>(ch.min_version));
  body.u16(static_cast<std::uint16_t>(ch.max_version));
  write_lv_string(body, ch.sni);
  body.u8(static_cast<std::uint8_t>(ch.alpn.size()));
  for (const auto& proto : ch.alpn) write_lv_string(body, proto);
  body.u16(static_cast<std::uint16_t>(ch.session_ticket.size()));
  body.bytes(ch.session_ticket);

  const std::size_t body_len = std::max(body.size(), kClientHelloBody);
  write_header(w, HsType::kClientHello, body_len);
  const std::size_t start = w.size();
  w.bytes(body.data());
  pad_body(w, start, body_len);
}

void encode_server_hello(ByteWriter& w, const ServerHello& sh) {
  ByteWriter body;
  body.u16(static_cast<std::uint16_t>(sh.version));
  write_lv_string(body, sh.alpn);
  body.u8(sh.resumed ? 1 : 0);

  const std::size_t target = sh.version == TlsVersion::kTls13
                                 ? kServerHello13Body
                                 : kServerHello12Body;
  const std::size_t body_len = std::max(body.size(), target);
  write_header(w, HsType::kServerHello, body_len);
  const std::size_t start = w.size();
  w.bytes(body.data());
  pad_body(w, start, body_len);
}

void encode_certificate(ByteWriter& w, const CertificateMsg& cert) {
  ByteWriter body;
  write_lv_string(body, cert.subject);
  body.u8(cert.certificate_count);
  body.u8(cert.ct_logged ? 1 : 0);
  body.u8(cert.ocsp_must_staple ? 1 : 0);
  body.u32(cert.chain_bytes);

  // The Certificate message's size is dominated by the chain itself; pad
  // the body to exactly the configured chain size (plus a small framing
  // allowance already included in chain_bytes).
  const std::size_t body_len =
      std::max<std::size_t>(body.size(), cert.chain_bytes);
  write_header(w, HsType::kCertificate, body_len);
  const std::size_t start = w.size();
  w.bytes(body.data());
  pad_body(w, start, body_len);
}

void encode_new_session_ticket(ByteWriter& w, const NewSessionTicketMsg& t) {
  ByteWriter body;
  body.u16(static_cast<std::uint16_t>(t.ticket.size()));
  body.bytes(t.ticket);

  const std::size_t body_len = std::max(body.size(), kNewSessionTicketBody);
  write_header(w, HsType::kNewSessionTicket, body_len);
  const std::size_t start = w.size();
  w.bytes(body.data());
  pad_body(w, start, body_len);
}

void encode_plain(ByteWriter& w, HsType type, std::size_t body_size) {
  write_header(w, type, body_size);
  const std::size_t start = w.size();
  pad_body(w, start, body_size);
}

HandshakeMessage decode_handshake(ByteReader& r) {
  HandshakeMessage msg;
  msg.type = static_cast<HsType>(r.u8());
  const std::uint32_t hi = r.u8();
  const std::uint32_t lo = r.u16();
  const std::size_t body_len = (hi << 16) | lo;
  const std::size_t body_end = r.offset() + body_len;
  if (body_len > r.remaining()) throw WireError("truncated handshake message");

  switch (msg.type) {
    case HsType::kClientHello: {
      ClientHello ch;
      ch.min_version = static_cast<TlsVersion>(r.u16());
      ch.max_version = static_cast<TlsVersion>(r.u16());
      ch.sni = read_lv_string(r);
      const std::uint8_t n_alpn = r.u8();
      for (std::uint8_t i = 0; i < n_alpn; ++i) {
        ch.alpn.push_back(read_lv_string(r));
      }
      const std::uint16_t ticket_len = r.u16();
      ch.session_ticket = r.bytes(ticket_len);
      msg.client_hello = std::move(ch);
      break;
    }
    case HsType::kServerHello: {
      ServerHello sh;
      sh.version = static_cast<TlsVersion>(r.u16());
      sh.alpn = read_lv_string(r);
      sh.resumed = r.u8() != 0;
      msg.server_hello = std::move(sh);
      break;
    }
    case HsType::kCertificate: {
      CertificateMsg cert;
      cert.subject = read_lv_string(r);
      cert.certificate_count = r.u8();
      cert.ct_logged = r.u8() != 0;
      cert.ocsp_must_staple = r.u8() != 0;
      cert.chain_bytes = r.u32();
      msg.certificate = std::move(cert);
      break;
    }
    case HsType::kNewSessionTicket: {
      NewSessionTicketMsg t;
      const std::uint16_t len = r.u16();
      t.ticket = r.bytes(len);
      msg.ticket = std::move(t);
      break;
    }
    default:
      break;  // field-free message
  }
  r.seek(body_end);  // skip padding
  return msg;
}

}  // namespace dohperf::tlssim
