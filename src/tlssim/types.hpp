// TLS simulation: versions, certificate chains and wire-size constants.
//
// SUBSTITUTION NOTE (see DESIGN.md): no real cryptography is performed.
// The simulation reproduces what the paper measures — handshake flights,
// certificate bytes on the wire, and per-record framing overhead — with
// realistic sizes. Message *contents* are synthetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dohperf::tlssim {

enum class TlsVersion : std::uint16_t {
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  kTls13 = 0x0304,
};

std::string to_string(TlsVersion v);

/// Record content types (RFC 8446 §5.1).
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kHandshakeFailure = 40,
  kDecodeError = 50,
  kProtocolVersion = 70,
  kNoApplicationProtocol = 120,
};

/// Every TLS record carries a 5-byte header (type, version, length).
constexpr std::size_t kRecordHeaderBytes = 5;
/// AEAD tag appended to every encrypted TLS 1.3 record (AES-128-GCM).
constexpr std::size_t kAeadTagBytes = 16;
/// TLS 1.2 AES-GCM: 8-byte explicit nonce + 16-byte tag per record.
constexpr std::size_t kTls12RecordOverhead = 24;
/// Maximum plaintext fragment per record (RFC 8446 §5.1).
constexpr std::size_t kMaxFragment = 16384;

/// A simulated X.509 chain. `wire_bytes` is the total size of the
/// certificate_list as it appears in the Certificate handshake message.
/// The paper measured Cloudflare transmitting two certificates worth
/// 1,960 bytes and Google two certificates worth 3,101 bytes (§4).
struct CertificateChain {
  std::string subject;
  std::size_t wire_bytes = 2500;
  int certificate_count = 2;
  bool ct_logged = true;           ///< appears in Certificate Transparency logs
  bool ocsp_must_staple = false;   ///< certificate demands OCSP stapling

  static CertificateChain cloudflare();
  static CertificateChain google();
  static CertificateChain generic(std::string subject,
                                  std::size_t wire_bytes = 2500);
};

struct TlsCounters {
  std::uint64_t handshake_bytes_sent = 0;   ///< records carrying handshake/CCS/alert
  std::uint64_t handshake_bytes_received = 0;
  std::uint64_t record_overhead_sent = 0;   ///< headers + AEAD expansion on app data
  std::uint64_t record_overhead_received = 0;
  std::uint64_t app_bytes_sent = 0;         ///< application plaintext
  std::uint64_t app_bytes_received = 0;
  std::uint64_t records_sent = 0;
  std::uint64_t records_received = 0;

  /// Bytes attributable to the TLS layer itself (Fig 5 "TLS" bar):
  /// everything except the application plaintext.
  std::uint64_t overhead_bytes() const noexcept {
    return handshake_bytes_sent + handshake_bytes_received +
           record_overhead_sent + record_overhead_received;
  }
};

}  // namespace dohperf::tlssim
