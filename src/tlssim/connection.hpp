// The TLS connection state machine (client and server roles), layered over
// any ByteStream and exposing a ByteStream itself.
//
// Supported flows:
//   * TLS 1.3 full (1-RTT) and PSK resumption
//   * TLS 1.2 full (2-RTT) and ticket resumption
//   * version negotiation with alert on failure (used by the survey's
//     TLS-version walk, Table 2)
//   * ALPN selection (h2 vs http/1.1)
//   * session ticket issuance and client caching
#pragma once

#include <deque>
#include <memory>
#include <set>

#include "simnet/stream.hpp"
#include "tlssim/context.hpp"
#include "tlssim/handshake.hpp"
#include "tlssim/types.hpp"

namespace dohperf::tlssim {

using simnet::BufferSlice;
using simnet::ByteStream;

struct ClientConfig {
  TlsVersion min_version = TlsVersion::kTls12;
  TlsVersion max_version = TlsVersion::kTls13;
  std::string sni;
  std::vector<std::string> alpn;         ///< e.g. {"h2", "http/1.1"}
  SessionCache* session_cache = nullptr; ///< enables resumption when set
};

struct ServerConfig {
  std::set<TlsVersion> versions = {TlsVersion::kTls12, TlsVersion::kTls13};
  std::vector<std::string> alpn_preference = {"h2", "http/1.1"};
  CertificateChain chain = CertificateChain::generic("example.net");
  bool issue_session_tickets = true;
  /// Session-ticket key generation. A restarted server process loses its
  /// ticket keys; bumping the epoch makes every previously issued ticket
  /// unresumable, so clients fall back to a full handshake.
  std::uint64_t ticket_epoch = 0;
};

enum class TlsRole { kClient, kServer };

class TlsConnection final : public ByteStream {
 public:
  /// Client: starts the handshake as soon as the transport opens.
  TlsConnection(std::unique_ptr<ByteStream> transport, ClientConfig config);

  /// Server: `config` must outlive the connection (shared across accepts).
  TlsConnection(std::unique_ptr<ByteStream> transport,
                const ServerConfig* config);

  // ByteStream interface. on_open fires when the handshake completes;
  // send() before that queues plaintext.
  void set_handlers(Handlers handlers) override;
  void send(BufferSlice data) override;
  void send_chain(std::span<const BufferSlice> chain) override;
  void close() override;  ///< close_notify then transport close
  bool is_open() const override;

  // Introspection (valid once established, or after failure).
  bool established() const noexcept { return established_; }
  bool failed() const noexcept { return failed_; }
  bool closed() const noexcept { return closed_; }
  std::optional<AlertDescription> failure_alert() const noexcept {
    return failure_alert_;
  }
  TlsVersion version() const noexcept { return version_; }
  const std::string& alpn() const noexcept { return alpn_; }
  bool resumed() const noexcept { return resumed_; }
  /// Client side: the certificate the server presented (full handshake only).
  const std::optional<CertificateMsg>& peer_certificate() const noexcept {
    return peer_certificate_;
  }

  const TlsCounters& counters() const noexcept { return counters_; }

  /// Fires when the underlying transport opens — the instant the TCP
  /// handshake finished and the first TLS flight departs. Observability
  /// instrumentation uses it to split connection setup into a
  /// tcp_handshake and a tls_handshake span.
  void set_transport_open_hook(std::function<void()> hook) {
    transport_open_hook_ = std::move(hook);
  }

  /// Fires the instant the handshake completes, before the on_open handler.
  /// Unlike Handlers (which an HTTP layer takes over), this hook stays with
  /// whoever installed it — observability uses it to close the
  /// tls_handshake span.
  void set_established_hook(std::function<void()> hook) {
    established_hook_ = std::move(hook);
  }

  /// The underlying transport (e.g. to reach TCP counters).
  ByteStream& transport() noexcept { return *transport_; }

 private:
  void on_transport_open();
  void on_transport_data(std::span<const std::uint8_t> data);
  void on_transport_close();

  void send_client_hello();
  void handle_client_hello(const ClientHello& ch);
  void handle_server_hello(const ServerHello& sh);
  void handle_handshake_message(const HandshakeMessage& msg);
  void handle_record(ContentType type, std::span<const std::uint8_t> body);
  void process_rx_buffer();

  /// Wrap and transmit one record. `body` is the plaintext; AEAD expansion
  /// is appended when the connection's send direction is encrypted.
  void send_record(ContentType type, Bytes body);
  /// Chain form: the record body is the concatenation of `body` (totalling
  /// `body_len` bytes). Application payload slices are referenced, not
  /// copied — the record goes to the transport as {header, body..., tag}.
  void send_record_chain(ContentType type, std::span<const BufferSlice> body,
                         std::size_t body_len);
  void send_alert(AlertDescription desc, bool fatal);
  void send_change_cipher_spec();
  void finish_handshake();
  void fail(AlertDescription desc);
  void flush_pending_app_data();
  std::size_t send_tag_bytes() const noexcept;
  std::size_t recv_tag_bytes() const noexcept;
  Bytes expected_ticket() const;

  std::unique_ptr<ByteStream> transport_;
  TlsRole role_;
  ClientConfig client_config_;
  const ServerConfig* server_config_ = nullptr;
  Handlers handlers_;
  TlsCounters counters_;
  std::function<void()> transport_open_hook_;
  std::function<void()> established_hook_;

  Bytes rx_buffer_;
  /// Consumed prefix of rx_buffer_: records are parsed at this cursor and
  /// the prefix reclaimed lazily, instead of an O(n) front-erase per record.
  std::size_t rx_offset_ = 0;
  std::deque<BufferSlice> pending_app_data_;

  TlsVersion version_ = TlsVersion::kTls13;
  std::string alpn_;
  bool resumed_ = false;
  bool established_ = false;
  bool failed_ = false;
  bool closed_ = false;
  std::optional<AlertDescription> failure_alert_;
  std::optional<CertificateMsg> peer_certificate_;

  /// Cipher state per direction: once true, records gain AEAD expansion.
  bool send_encrypted_ = false;
  bool recv_encrypted_ = false;

  // Handshake progress flags.
  bool sent_finished_ = false;
  bool received_finished_ = false;
  bool received_server_hello_done_ = false;
};

}  // namespace dohperf::tlssim
