#include "tlssim/connection.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace dohperf::tlssim {

namespace {

bool version_le(TlsVersion a, TlsVersion b) noexcept {
  return static_cast<std::uint16_t>(a) <= static_cast<std::uint16_t>(b);
}

/// Shared all-zero buffer for the synthetic AEAD expansion; every record's
/// tag is a subslice of this, so encryption overhead never allocates.
const BufferSlice& zero_tag_bytes() {
  static const BufferSlice zeros{Bytes(kTls12RecordOverhead, 0)};
  return zeros;
}

}  // namespace

TlsConnection::TlsConnection(std::unique_ptr<ByteStream> transport,
                             ClientConfig config)
    : transport_(std::move(transport)), role_(TlsRole::kClient),
      client_config_(std::move(config)) {
  Handlers h;
  h.on_open = [this]() { on_transport_open(); };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_transport_data(d); };
  h.on_close = [this]() { on_transport_close(); };
  transport_->set_handlers(std::move(h));
}

TlsConnection::TlsConnection(std::unique_ptr<ByteStream> transport,
                             const ServerConfig* config)
    : transport_(std::move(transport)), role_(TlsRole::kServer),
      server_config_(config) {
  assert(config != nullptr);
  Handlers h;
  h.on_open = []() {};  // server waits for the ClientHello
  h.on_data = [this](std::span<const std::uint8_t> d) { on_transport_data(d); };
  h.on_close = [this]() { on_transport_close(); };
  transport_->set_handlers(std::move(h));
}

void TlsConnection::set_handlers(Handlers handlers) {
  handlers_ = std::move(handlers);
  if (established_) {
    if (const auto on_open = handlers_.on_open) on_open();
  }
}

std::size_t TlsConnection::send_tag_bytes() const noexcept {
  if (!send_encrypted_) return 0;
  return version_ == TlsVersion::kTls13 ? kAeadTagBytes + 1
                                        : kTls12RecordOverhead;
}

std::size_t TlsConnection::recv_tag_bytes() const noexcept {
  if (!recv_encrypted_) return 0;
  return version_ == TlsVersion::kTls13 ? kAeadTagBytes + 1
                                        : kTls12RecordOverhead;
}

Bytes TlsConnection::expected_ticket() const {
  assert(role_ == TlsRole::kServer);
  // Epoch 0 keeps the legacy ticket bytes so pre-mobility traces are
  // byte-identical; any bump (server restart) changes the expected value
  // and silently rejects stale tickets.
  if (server_config_->ticket_epoch == 0) {
    return dns::to_bytes("TKT|" + server_config_->chain.subject);
  }
  return dns::to_bytes("TKT|" + server_config_->chain.subject + "|" +
                       std::to_string(server_config_->ticket_epoch));
}

void TlsConnection::send_record(ContentType type, Bytes body) {
  const BufferSlice slice{std::move(body)};
  send_record_chain(type, std::span<const BufferSlice>(&slice, 1),
                    slice.size());
}

void TlsConnection::send_record_chain(ContentType type,
                                      std::span<const BufferSlice> body,
                                      std::size_t body_len) {
  // CCS records are never encrypted (middlebox-compatibility framing).
  const std::size_t tag =
      type == ContentType::kChangeCipherSpec ? 0 : send_tag_bytes();
  const std::size_t record_len = body_len + tag;
  if (record_len > kMaxFragment + 256) throw WireError("record too large");

  ByteWriter header;
  header.u8(static_cast<std::uint8_t>(type));
  header.u16(0x0303);  // legacy record version
  header.u16(static_cast<std::uint16_t>(record_len));

  ++counters_.records_sent;
  const std::size_t wire = kRecordHeaderBytes + record_len;
  if (type == ContentType::kApplicationData) {
    counters_.app_bytes_sent += body_len;
    counters_.record_overhead_sent += kRecordHeaderBytes + tag;
  } else {
    counters_.handshake_bytes_sent += wire;
  }

  // One logical write per record: {header, plaintext slices, synthetic tag}.
  // The transport appends all pieces before segmenting, so the wire is
  // byte-identical to the old single contiguous record buffer.
  std::vector<BufferSlice> record;
  record.reserve(body.size() + 2);
  record.emplace_back(header.take());
  for (const auto& slice : body) {
    if (!slice.empty()) record.push_back(slice);
  }
  if (tag > 0) record.push_back(zero_tag_bytes().subslice(0, tag));
  transport_->send_chain(record);
}

void TlsConnection::send_alert(AlertDescription desc, bool fatal) {
  ByteWriter body;
  body.u8(fatal ? 2 : 1);
  body.u8(static_cast<std::uint8_t>(desc));
  send_record(ContentType::kAlert, body.take());
}

void TlsConnection::send_change_cipher_spec() {
  send_record(ContentType::kChangeCipherSpec, Bytes{1});
}

void TlsConnection::on_transport_open() {
  if (transport_open_hook_) transport_open_hook_();
  if (role_ == TlsRole::kClient) send_client_hello();
}

void TlsConnection::send_client_hello() {
  ClientHello ch;
  ch.min_version = client_config_.min_version;
  ch.max_version = client_config_.max_version;
  ch.sni = client_config_.sni;
  ch.alpn = client_config_.alpn;
  if (client_config_.session_cache != nullptr) {
    if (const auto session =
            client_config_.session_cache->lookup(client_config_.sni)) {
      ch.session_ticket = session->ticket;
    }
  }
  ByteWriter w;
  encode_client_hello(w, ch);
  send_record(ContentType::kHandshake, w.take());
}

void TlsConnection::on_transport_data(std::span<const std::uint8_t> data) {
  rx_buffer_.insert(rx_buffer_.end(), data.begin(), data.end());
  // Hardening: bytes that don't parse as TLS (garbage to the port, a
  // truncated/oversized record, an out-of-place handshake message) must
  // never propagate an exception into the transport layer — answer with a
  // fatal decode_error alert and tear the connection down deterministically.
  try {
    process_rx_buffer();
  } catch (const WireError&) {
    if (!failed_ && !closed_) fail(AlertDescription::kDecodeError);
  }
}

void TlsConnection::process_rx_buffer() {
  for (;;) {
    if (closed_ || failed_) break;
    const std::size_t avail = rx_buffer_.size() - rx_offset_;
    if (avail < kRecordHeaderBytes) break;
    const auto record_at = rx_buffer_.begin() +
                           static_cast<std::ptrdiff_t>(rx_offset_);
    const std::size_t record_len =
        (static_cast<std::size_t>(record_at[3]) << 8) | record_at[4];
    if (avail < kRecordHeaderBytes + record_len) break;

    const auto type = static_cast<ContentType>(record_at[0]);
    ++counters_.records_received;

    // Strip the synthetic AEAD expansion for encrypted record types.
    const std::size_t tag = type == ContentType::kChangeCipherSpec
                                ? 0
                                : recv_tag_bytes();
    if (record_len < tag) throw WireError("record shorter than AEAD tag");
    const std::size_t body_len = record_len - tag;

    const std::size_t wire = kRecordHeaderBytes + record_len;
    if (type == ContentType::kApplicationData) {
      counters_.app_bytes_received += body_len;
      counters_.record_overhead_received += kRecordHeaderBytes + tag;
    } else {
      counters_.handshake_bytes_received += wire;
    }

    // Copy out the body and advance the cursor before dispatching (handlers
    // may re-enter by sending data). The consumed prefix is reclaimed below
    // instead of front-erasing per record.
    Bytes body(record_at + kRecordHeaderBytes,
               record_at +
                   static_cast<std::ptrdiff_t>(kRecordHeaderBytes + body_len));
    rx_offset_ += kRecordHeaderBytes + record_len;
    handle_record(type, body);
  }
  if (rx_offset_ == rx_buffer_.size()) {
    rx_buffer_.clear();
    rx_offset_ = 0;
  } else if (rx_offset_ >= 4096) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() +
                         static_cast<std::ptrdiff_t>(rx_offset_));
    rx_offset_ = 0;
  }
}

void TlsConnection::handle_record(ContentType type,
                                  std::span<const std::uint8_t> body) {
  switch (type) {
    case ContentType::kChangeCipherSpec:
      // In TLS 1.2 the peer's CCS switches its direction to encrypted.
      if (version_ != TlsVersion::kTls13) recv_encrypted_ = true;
      return;
    case ContentType::kAlert: {
      if (body.size() < 2) throw WireError("short alert");
      const auto desc = static_cast<AlertDescription>(body[1]);
      if (desc == AlertDescription::kCloseNotify) {
        closed_ = true;
        // Complete the TCP teardown from our side too, as real TLS stacks
        // do on close_notify — otherwise the peer lingers in FIN_WAIT_2.
        transport_->close();
        if (const auto on_close = handlers_.on_close) on_close();
      } else {
        failed_ = true;
        failure_alert_ = desc;
        if (handlers_.on_close) handlers_.on_close();
      }
      return;
    }
    case ContentType::kApplicationData: {
      if (handlers_.on_data) handlers_.on_data(body);
      return;
    }
    case ContentType::kHandshake: {
      ByteReader r(body);
      while (!r.exhausted()) {
        handle_handshake_message(decode_handshake(r));
        if (failed_ || closed_) return;
      }
      return;
    }
  }
  throw WireError("unknown record type");
}

void TlsConnection::handle_client_hello(const ClientHello& ch) {
  assert(role_ == TlsRole::kServer);
  // --- version negotiation --------------------------------------------------
  std::optional<TlsVersion> chosen;
  for (const TlsVersion v : server_config_->versions) {
    if (version_le(ch.min_version, v) && version_le(v, ch.max_version)) {
      if (!chosen || version_le(*chosen, v)) chosen = v;
    }
  }
  if (!chosen) {
    fail(AlertDescription::kHandshakeFailure);
    return;
  }
  version_ = *chosen;

  // --- ALPN -------------------------------------------------------------------
  alpn_.clear();
  if (!ch.alpn.empty()) {
    for (const auto& preferred : server_config_->alpn_preference) {
      if (std::find(ch.alpn.begin(), ch.alpn.end(), preferred) !=
          ch.alpn.end()) {
        alpn_ = preferred;
        break;
      }
    }
    if (alpn_.empty()) {
      fail(AlertDescription::kNoApplicationProtocol);
      return;
    }
  }

  // --- resumption --------------------------------------------------------------
  resumed_ = server_config_->issue_session_tickets &&
             !ch.session_ticket.empty() &&
             ch.session_ticket == expected_ticket();

  // --- server flight -------------------------------------------------------------
  ServerHello sh;
  sh.version = version_;
  sh.alpn = alpn_;
  sh.resumed = resumed_;
  {
    ByteWriter w;
    encode_server_hello(w, sh);
    send_record(ContentType::kHandshake, w.take());
  }

  if (version_ == TlsVersion::kTls13) {
    send_change_cipher_spec();
    send_encrypted_ = true;
    ByteWriter flight;
    encode_plain(flight, HsType::kEncryptedExtensions,
                 kEncryptedExtensionsBody);
    if (!resumed_) {
      CertificateMsg cert;
      cert.subject = server_config_->chain.subject;
      cert.certificate_count =
          static_cast<std::uint8_t>(server_config_->chain.certificate_count);
      cert.ct_logged = server_config_->chain.ct_logged;
      cert.ocsp_must_staple = server_config_->chain.ocsp_must_staple;
      cert.chain_bytes =
          static_cast<std::uint32_t>(server_config_->chain.wire_bytes);
      encode_certificate(flight, cert);
      encode_plain(flight, HsType::kCertificateVerify, kCertificateVerifyBody);
    }
    encode_plain(flight, HsType::kFinished, kFinishedBody);
    send_record(ContentType::kHandshake, flight.take());
    sent_finished_ = true;
    recv_encrypted_ = true;  // client's Finished arrives encrypted
  } else {
    // TLS 1.2 and below.
    if (resumed_) {
      send_change_cipher_spec();
      send_encrypted_ = true;
      ByteWriter w;
      encode_plain(w, HsType::kFinished, kFinishedBody);
      send_record(ContentType::kHandshake, w.take());
      sent_finished_ = true;
    } else {
      ByteWriter flight;
      CertificateMsg cert;
      cert.subject = server_config_->chain.subject;
      cert.certificate_count =
          static_cast<std::uint8_t>(server_config_->chain.certificate_count);
      cert.ct_logged = server_config_->chain.ct_logged;
      cert.ocsp_must_staple = server_config_->chain.ocsp_must_staple;
      cert.chain_bytes =
          static_cast<std::uint32_t>(server_config_->chain.wire_bytes);
      encode_certificate(flight, cert);
      encode_plain(flight, HsType::kServerKeyExchange, kServerKeyExchangeBody);
      encode_plain(flight, HsType::kServerHelloDone, kServerHelloDoneBody);
      send_record(ContentType::kHandshake, flight.take());
    }
  }
}

void TlsConnection::handle_server_hello(const ServerHello& sh) {
  assert(role_ == TlsRole::kClient);
  if (!version_le(client_config_.min_version, sh.version) ||
      !version_le(sh.version, client_config_.max_version)) {
    fail(AlertDescription::kProtocolVersion);
    return;
  }
  version_ = sh.version;
  alpn_ = sh.alpn;
  resumed_ = sh.resumed;
  if (version_ == TlsVersion::kTls13) {
    // Everything after the ServerHello arrives encrypted.
    recv_encrypted_ = true;
  }
}

void TlsConnection::handle_handshake_message(const HandshakeMessage& msg) {
  switch (msg.type) {
    case HsType::kClientHello:
      if (role_ != TlsRole::kServer) throw WireError("unexpected ClientHello");
      handle_client_hello(*msg.client_hello);
      return;

    case HsType::kServerHello:
      if (role_ != TlsRole::kClient) throw WireError("unexpected ServerHello");
      handle_server_hello(*msg.server_hello);
      return;

    case HsType::kCertificate:
      peer_certificate_ = msg.certificate;
      return;

    case HsType::kEncryptedExtensions:
    case HsType::kCertificateVerify:
    case HsType::kServerKeyExchange:
      return;  // nothing to act on in the simulation

    case HsType::kServerHelloDone: {
      // TLS 1.2 full handshake: client sends its second flight.
      assert(role_ == TlsRole::kClient);
      received_server_hello_done_ = true;
      ByteWriter cke;
      encode_plain(cke, HsType::kClientKeyExchange, kClientKeyExchangeBody);
      send_record(ContentType::kHandshake, cke.take());
      send_change_cipher_spec();
      send_encrypted_ = true;
      ByteWriter fin;
      encode_plain(fin, HsType::kFinished, kFinishedBody);
      send_record(ContentType::kHandshake, fin.take());
      sent_finished_ = true;
      return;
    }

    case HsType::kClientKeyExchange:
      return;  // server: wait for CCS + Finished

    case HsType::kFinished: {
      received_finished_ = true;
      if (role_ == TlsRole::kClient) {
        if (version_ == TlsVersion::kTls13) {
          // Respond with CCS + our Finished, then we are up.
          send_change_cipher_spec();
          send_encrypted_ = true;
          ByteWriter fin;
          encode_plain(fin, HsType::kFinished, kFinishedBody);
          send_record(ContentType::kHandshake, fin.take());
          sent_finished_ = true;
          finish_handshake();
        } else if (resumed_ && !sent_finished_) {
          // TLS 1.2 resumption: server finished first; reply in kind.
          send_change_cipher_spec();
          send_encrypted_ = true;
          ByteWriter fin;
          encode_plain(fin, HsType::kFinished, kFinishedBody);
          send_record(ContentType::kHandshake, fin.take());
          sent_finished_ = true;
          finish_handshake();
        } else {
          // TLS 1.2 full handshake: server's Finished completes it.
          finish_handshake();
        }
      } else {
        // Server receiving the client's Finished.
        if (version_ != TlsVersion::kTls13 && !resumed_) {
          // Full TLS 1.2: reply with our CCS + Finished.
          send_change_cipher_spec();
          send_encrypted_ = true;
          ByteWriter fin;
          encode_plain(fin, HsType::kFinished, kFinishedBody);
          send_record(ContentType::kHandshake, fin.take());
          sent_finished_ = true;
        }
        finish_handshake();
        // Issue a session ticket for future resumption.
        if (server_config_->issue_session_tickets) {
          NewSessionTicketMsg t;
          t.ticket = expected_ticket();
          ByteWriter w;
          encode_new_session_ticket(w, t);
          send_record(ContentType::kHandshake, w.take());
        }
      }
      return;
    }

    case HsType::kNewSessionTicket: {
      if (role_ == TlsRole::kClient &&
          client_config_.session_cache != nullptr) {
        client_config_.session_cache->store(
            client_config_.sni, Session{msg.ticket->ticket, version_});
      }
      return;
    }
  }
  throw WireError("unknown handshake message");
}

void TlsConnection::finish_handshake() {
  if (established_) return;
  established_ = true;
  if (established_hook_) established_hook_();
  // Copy before invoking: the handler may replace our handlers (e.g. an
  // HTTP layer attaching itself on open), which would otherwise destroy
  // the std::function we are executing.
  if (const auto on_open = handlers_.on_open) on_open();
  flush_pending_app_data();
}

void TlsConnection::fail(AlertDescription desc) {
  failed_ = true;
  failure_alert_ = desc;
  send_alert(desc, /*fatal=*/true);
  transport_->close();
  if (handlers_.on_close) handlers_.on_close();
}

void TlsConnection::send(BufferSlice data) {
  if (failed_ || closed_) {
    throw std::logic_error("send on failed/closed TLS connection");
  }
  if (!established_) {
    pending_app_data_.push_back(std::move(data));
    return;
  }
  // Fragment into records; each fragment is a zero-copy subslice of the
  // application's buffer.
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(kMaxFragment, data.size() - offset);
    const BufferSlice fragment = data.subslice(offset, chunk);
    send_record_chain(ContentType::kApplicationData,
                      std::span<const BufferSlice>(&fragment, 1),
                      fragment.size());
    offset += chunk;
  }
}

void TlsConnection::send_chain(std::span<const BufferSlice> chain) {
  if (failed_ || closed_) {
    throw std::logic_error("send on failed/closed TLS connection");
  }
  if (!established_) {
    // Pre-handshake sends must flush later exactly like one contiguous
    // buffer, so coalesce the chain into a single queued slice.
    pending_app_data_.emplace_back(simnet::coalesce(chain));
    return;
  }
  // One logical write: pack records up to kMaxFragment across slice
  // boundaries, exactly where a contiguous buffer would fragment.
  std::vector<BufferSlice> record;
  std::size_t record_len = 0;
  for (std::size_t idx = 0, offset = 0; idx < chain.size();) {
    const BufferSlice& slice = chain[idx];
    if (offset >= slice.size()) {
      ++idx;
      offset = 0;
      continue;
    }
    const std::size_t take =
        std::min(kMaxFragment - record_len, slice.size() - offset);
    record.push_back(slice.subslice(offset, take));
    record_len += take;
    offset += take;
    if (record_len == kMaxFragment) {
      send_record_chain(ContentType::kApplicationData, record, record_len);
      record.clear();
      record_len = 0;
    }
  }
  if (record_len > 0) {
    send_record_chain(ContentType::kApplicationData, record, record_len);
  }
}

void TlsConnection::flush_pending_app_data() {
  while (!pending_app_data_.empty()) {
    BufferSlice data = std::move(pending_app_data_.front());
    pending_app_data_.pop_front();
    send(std::move(data));
  }
}

void TlsConnection::close() {
  if (closed_ || failed_) return;
  closed_ = true;
  if (established_) send_alert(AlertDescription::kCloseNotify, false);
  transport_->close();
}

bool TlsConnection::is_open() const {
  return established_ && !closed_ && !failed_;
}

void TlsConnection::on_transport_close() {
  if (closed_) return;
  closed_ = true;
  // The peer closed (or half-closed) the transport: close our side so the
  // TCP state machines on both ends can finish and free their ports.
  transport_->close();
  if (const auto on_close = handlers_.on_close) on_close();
}

}  // namespace dohperf::tlssim
