// The metrics registry: named counters, gauges and histograms with
// deterministic iteration order (ordered maps only — DET003-clean), so a
// metrics snapshot serializes byte-identically across identically seeded
// runs. Metric names form a stable contract documented in EXPERIMENTS.md
// ("Observability" section); benches and tests key on them.
//
// Two write paths share one export shape:
//   * the name-keyed slow path (`add("cache.hits")`) — an ordered-map
//     lookup per call, fine for cold/startup code;
//   * pre-registered MetricId handles (`register_counter` once, then
//     `add(id)`) — a dense-slot array write, for hot loops (tier dispatch,
//     cache lookups, per-packet taps, shard inner loops).
// Slot writes are folded lazily into the ordered maps on any read
// (sync-on-read), so exports, merge_from and render stay byte-identical to
// the name-keyed path regardless of which mix of paths produced the data.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/json_value.hpp"
#include "stats/cdf.hpp"

namespace dohperf::obs {

/// Histogram snapshot: fixed quantiles over a stats::Cdf sample, the same
/// presentation the paper's figures use.
struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

enum class MetricKind : std::uint8_t { kNone, kCounter, kGauge, kHistogram };

/// Opaque handle from Registry::register_*; default-constructed = invalid
/// (all operations through it are no-ops). Valid only for the registry that
/// issued it.
class MetricId {
 public:
  MetricId() = default;
  bool valid() const noexcept { return kind_ != MetricKind::kNone; }

 private:
  friend class Registry;
  MetricId(MetricKind kind, std::uint32_t index) noexcept
      : kind_(kind), index_(index) {}

  MetricKind kind_ = MetricKind::kNone;
  std::uint32_t index_ = 0;
};

class Registry {
 public:
  // ---- Pre-registered fast path -----------------------------------------
  // Registering the same name twice returns the same handle; registration
  // alone leaves no trace in exports (only touched metrics serialize).

  MetricId register_counter(const std::string& name);
  MetricId register_gauge(const std::string& name);
  MetricId register_histogram(const std::string& name);

  /// Increment a pre-registered counter: one dense-slot write, no lookup.
  void add(MetricId id, std::uint64_t delta = 1) {
    if (id.kind_ != MetricKind::kCounter) return;
    CounterSlot& slot = counter_slots_[id.index_];
    slot.pending += delta;
    slot.touched = true;
    slots_dirty_ = true;
  }

  /// Set a pre-registered gauge (last write wins across both paths).
  void set_gauge(MetricId id, std::int64_t value) {
    if (id.kind_ != MetricKind::kGauge) return;
    GaugeSlot& slot = gauge_slots_[id.index_];
    slot.value = value;
    slot.dirty = true;
    slots_dirty_ = true;
  }

  /// Record one observation against a pre-registered histogram.
  void observe(MetricId id, double value) {
    if (id.kind_ != MetricKind::kHistogram) return;
    hist_slots_[id.index_].pending.push_back(value);
    slots_dirty_ = true;
  }

  // ---- Name-keyed slow path ---------------------------------------------

  /// Increment a counter (created at 0 on first touch).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Set a gauge to an absolute value (e.g. circuit-breaker state).
  void set_gauge(const std::string& name, std::int64_t value);

  /// Record one histogram observation (fixed-quantile export).
  void observe(const std::string& name, double value);

  // ---- Reads / exports (sync slot writes first) -------------------------

  /// Point reads; absent names read as 0 / empty.
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  const stats::Cdf* histogram(const std::string& name) const;
  HistogramSummary histogram_summary(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    sync();
    return counters_;
  }
  const std::map<std::string, std::int64_t>& gauges() const {
    sync();
    return gauges_;
  }
  const std::map<std::string, stats::Cdf>& histograms() const {
    sync();
    return histograms_;
  }

  bool empty() const {
    sync();
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Reset all values; registrations (and their handles) stay valid.
  void clear();

  /// Fold another registry into this one: counters add, gauges take the
  /// other's (later) value, histogram samples concatenate. Sharded benches
  /// give every shard a private registry and merge them in shard-index
  /// order, so the combined registry is identical at any --jobs value.
  void merge_from(const Registry& other);

  /// Deterministic snapshot:
  ///   {"schema":"dohperf-metrics-v1","counters":{...},"gauges":{...},
  ///    "histograms":{name:{"count":..,"min":..,"p25":..,...}}}
  dns::JsonValue to_json() const;

  /// Human-readable listing, one `name value` row per line, sorted.
  std::string render() const;

 private:
  struct CounterSlot {
    std::string name;
    std::uint64_t pending = 0;
    bool touched = false;
  };
  struct GaugeSlot {
    std::string name;
    std::int64_t value = 0;
    bool dirty = false;
  };
  struct HistSlot {
    std::string name;
    std::vector<double> pending;
  };

  /// Fold pending slot writes into the ordered maps (no-op when clean).
  void sync() const;

  // Mutable: sync-on-read folds slot state into the maps from const reads.
  mutable std::map<std::string, std::uint64_t> counters_;
  mutable std::map<std::string, std::int64_t> gauges_;
  mutable std::map<std::string, stats::Cdf> histograms_;

  mutable std::vector<CounterSlot> counter_slots_;
  mutable std::vector<GaugeSlot> gauge_slots_;
  mutable std::vector<HistSlot> hist_slots_;
  mutable bool slots_dirty_ = false;

  std::map<std::string, std::uint32_t> counter_ids_;
  std::map<std::string, std::uint32_t> gauge_ids_;
  std::map<std::string, std::uint32_t> hist_ids_;
};

}  // namespace dohperf::obs
