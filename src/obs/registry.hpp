// The metrics registry: named counters, gauges and histograms with
// deterministic iteration order (ordered maps only — DET003-clean), so a
// metrics snapshot serializes byte-identically across identically seeded
// runs. Metric names form a stable contract documented in EXPERIMENTS.md
// ("Observability" section); benches and tests key on them.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "dns/json_value.hpp"
#include "stats/cdf.hpp"

namespace dohperf::obs {

/// Histogram snapshot: fixed quantiles over a stats::Cdf sample, the same
/// presentation the paper's figures use.
struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

class Registry {
 public:
  /// Increment a counter (created at 0 on first touch).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Set a gauge to an absolute value (e.g. circuit-breaker state).
  void set_gauge(const std::string& name, std::int64_t value);

  /// Record one histogram observation (fixed-quantile export).
  void observe(const std::string& name, double value);

  /// Point reads; absent names read as 0 / empty.
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  const stats::Cdf* histogram(const std::string& name) const;
  HistogramSummary histogram_summary(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, std::int64_t>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, stats::Cdf>& histograms() const noexcept {
    return histograms_;
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Fold another registry into this one: counters add, gauges take the
  /// other's (later) value, histogram samples concatenate. Sharded benches
  /// give every shard a private registry and merge them in shard-index
  /// order, so the combined registry is identical at any --jobs value.
  void merge_from(const Registry& other);

  /// Deterministic snapshot:
  ///   {"schema":"dohperf-metrics-v1","counters":{...},"gauges":{...},
  ///    "histograms":{name:{"count":..,"min":..,"p25":..,...}}}
  dns::JsonValue to_json() const;

  /// Human-readable listing, one `name value` row per line, sorted.
  std::string render() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, stats::Cdf> histograms_;
};

}  // namespace dohperf::obs
