#include "obs/export.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

namespace dohperf::obs {

namespace {

std::string attr_to_text(const AttrValue& value) {
  std::ostringstream os;
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    os << *s;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? "true" : "false");
  } else {
    os << std::get<double>(value);
  }
  return os.str();
}

std::string format_ms(simnet::TimeUs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.3f", simnet::to_ms(t));
  return std::string(buf);
}

}  // namespace

dns::JsonValue attr_to_json(const AttrValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return dns::JsonValue(*i);
  }
  if (const auto* s = std::get_if<std::string>(&value)) {
    return dns::JsonValue(*s);
  }
  if (const auto* b = std::get_if<bool>(&value)) {
    return dns::JsonValue(*b);
  }
  return dns::JsonValue(std::get<double>(value));
}

std::string render_timeline(const Tracer& tracer) {
  const std::vector<Span>& spans = tracer.spans();
  // children[p] = span ids whose parent is p (0 = roots), in begin order.
  std::vector<std::vector<SpanId>> children(spans.size() + 1);
  for (const Span& s : spans) {
    const SpanId parent = s.parent <= spans.size() ? s.parent : 0;
    children[parent].push_back(s.id);
  }

  std::ostringstream os;
  const auto render = [&](const auto& self, SpanId id, int depth) -> void {
    const Span& s = spans[id - 1];
    for (int i = 0; i < depth; ++i) os << "  ";
    os << '[' << format_ms(s.start) << "ms +";
    if (s.open) {
      os << "     open";
    } else {
      os << format_ms(s.duration()) << "ms";
    }
    os << "] " << s.name;
    for (const Attr& a : s.attrs()) {
      os << ' ' << a.key << '=' << attr_to_text(a.value);
    }
    os << '\n';
    for (const SpanId child : children[id]) self(self, child, depth + 1);
  };
  for (const SpanId root : children[0]) render(render, root, 0);
  return os.str();
}

dns::JsonValue chrome_trace(const Tracer& tracer) {
  const std::vector<Span>& spans = tracer.spans();
  // Each subtree lands on the tid of its root span so concurrent
  // resolutions occupy separate tracks in the viewer.
  std::vector<SpanId> root_of(spans.size() + 1, 0);
  for (const Span& s : spans) {
    const bool has_parent = s.parent != 0 && s.parent <= spans.size();
    root_of[s.id] = has_parent ? root_of[s.parent] : s.id;
  }

  dns::JsonArray events;
  events.reserve(spans.size());
  for (const Span& s : spans) {
    dns::JsonObject e;
    e["ph"] = dns::JsonValue("X");
    e["name"] = dns::JsonValue(std::string(s.name));
    e["cat"] = dns::JsonValue("dohperf");
    e["ts"] = dns::JsonValue(static_cast<std::int64_t>(s.start));
    e["dur"] = dns::JsonValue(static_cast<std::int64_t>(s.duration()));
    e["pid"] = dns::JsonValue(std::int64_t{1});
    e["tid"] = dns::JsonValue(static_cast<std::int64_t>(root_of[s.id]));
    dns::JsonObject args;
    for (const Attr& a : s.attrs()) {
      args[std::string(a.key)] = attr_to_json(a.value);
    }
    if (s.open) args["open"] = dns::JsonValue(true);
    e["args"] = dns::JsonValue(std::move(args));
    events.push_back(dns::JsonValue(std::move(e)));
  }

  dns::JsonObject root;
  root["displayTimeUnit"] = dns::JsonValue("ms");
  root["traceEvents"] = dns::JsonValue(std::move(events));
  return dns::JsonValue(std::move(root));
}

std::string chrome_trace_json(const Tracer& tracer) {
  return chrome_trace(tracer).dump();
}

}  // namespace dohperf::obs
