#include "obs/bridge.hpp"

namespace dohperf::obs {

void NetMetricsBridge::on_packet(simnet::TimeUs /*when*/,
                                 const simnet::Packet& packet, bool dropped) {
  if (registry_ == nullptr) return;
  const std::uint64_t wire = packet.wire_size();
  if (dropped) {
    registry_->add(dropped_);
    registry_->add(dropped_bytes_, wire);
    return;
  }
  registry_->add(packets_);
  registry_->add(bytes_, wire);
  registry_->add(header_bytes_, packet.header_size());
  registry_->add(packet.is_tcp() ? tcp_bytes_ : udp_bytes_, wire);
}

void publish_arena_stats(Registry& registry,
                         const simnet::ShardMemoryStats& stats) {
  registry.set_gauge("mem.arena_bytes",
                     static_cast<std::int64_t>(stats.arena_bytes));
  registry.set_gauge("mem.arena_chunks",
                     static_cast<std::int64_t>(stats.arena_chunks));
  registry.set_gauge("mem.arena_allocs",
                     static_cast<std::int64_t>(stats.arena_allocs));
  registry.set_gauge("mem.freelist_hits",
                     static_cast<std::int64_t>(stats.freelist_hits));
  registry.set_gauge("mem.huge_allocs",
                     static_cast<std::int64_t>(stats.huge_allocs));
  registry.set_gauge("mem.global_allocs",
                     static_cast<std::int64_t>(stats.global_allocs));
}

}  // namespace dohperf::obs
