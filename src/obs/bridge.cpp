#include "obs/bridge.hpp"

namespace dohperf::obs {

void NetMetricsBridge::on_packet(simnet::TimeUs /*when*/,
                                 const simnet::Packet& packet, bool dropped) {
  if (registry_ == nullptr) return;
  const std::uint64_t wire = packet.wire_size();
  if (dropped) {
    registry_->add("net.dropped");
    registry_->add("net.dropped_bytes", wire);
    return;
  }
  registry_->add("net.packets");
  registry_->add("net.bytes", wire);
  registry_->add("net.header_bytes", packet.header_size());
  registry_->add(packet.is_tcp() ? "net.tcp_bytes" : "net.udp_bytes", wire);
}

}  // namespace dohperf::obs
