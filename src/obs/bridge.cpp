#include "obs/bridge.hpp"

namespace dohperf::obs {

void NetMetricsBridge::on_packet(simnet::TimeUs /*when*/,
                                 const simnet::Packet& packet, bool dropped) {
  if (registry_ == nullptr) return;
  const std::uint64_t wire = packet.wire_size();
  if (dropped) {
    registry_->add(dropped_);
    registry_->add(dropped_bytes_, wire);
    return;
  }
  registry_->add(packets_);
  registry_->add(bytes_, wire);
  registry_->add(header_bytes_, packet.header_size());
  registry_->add(packet.is_tcp() ? tcp_bytes_ : udp_bytes_, wire);
}

}  // namespace dohperf::obs
