#include "obs/span.hpp"

namespace dohperf::obs {

std::string_view NameTable::intern(std::string_view s) {
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->first;
  const auto inserted =
      ids_.emplace(std::string(s), static_cast<std::uint32_t>(ids_.size()));
  return inserted.first->first;
}

Attr* AttrArena::alloc(std::size_t n) {
  if (chunks_.empty() || chunks_.back().cap - used_in_last_ < n) {
    wasted_ += chunks_.empty() ? 0 : chunks_.back().cap - used_in_last_;
    const std::size_t cap = n > kChunk ? n : kChunk;
    chunks_.push_back(Chunk{std::make_unique<Attr[]>(cap), cap});
    used_in_last_ = 0;
    capacity_ += cap;
  }
  Attr* slice = chunks_.back().slots.get() + used_in_last_;
  used_in_last_ += n;
  return slice;
}

Attr* AttrArena::grow(Attr* old_data, std::size_t size, std::size_t old_cap,
                      std::size_t new_cap) {
  Attr* fresh = alloc(new_cap);
  for (std::size_t i = 0; i < size; ++i) {
    fresh[i] = std::move(old_data[i]);
  }
  wasted_ += old_cap;
  return fresh;
}

const AttrValue* Span::attr(std::string_view key) const noexcept {
  for (const Attr& a : attrs()) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

SpanId Tracer::begin(SpanId parent, std::string_view name) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = names_.intern(name);
  span.start = now();
  spans_.push_back(span);
  return span.id;
}

void Tracer::end(SpanId id) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.open) return;  // double close: first close wins
  span.open = false;
  span.end = now();
}

Attr& Tracer::push_slot(Span& span) {
  if (span.attrs_size == span.attrs_cap) {
    const std::uint32_t new_cap = span.attrs_cap == 0 ? 4 : span.attrs_cap * 2;
    span.attrs_data = span.attrs_cap == 0
                          ? arena_.alloc(new_cap)
                          : arena_.grow(span.attrs_data, span.attrs_size,
                                        span.attrs_cap, new_cap);
    span.attrs_cap = new_cap;
  }
  return span.attrs_data[span.attrs_size++];
}

void Tracer::set_attr(SpanId id, std::string_view key, AttrValue value) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  for (std::uint32_t i = 0; i < span.attrs_size; ++i) {
    Attr& a = span.attrs_data[i];
    if (a.key == key) {
      a.value = std::move(value);
      return;
    }
  }
  Attr& slot = push_slot(span);
  slot.key = names_.intern(key);
  slot.value = std::move(value);
}

void Tracer::add_attr(SpanId id, std::string_view key, std::int64_t delta) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  for (std::uint32_t i = 0; i < span.attrs_size; ++i) {
    Attr& a = span.attrs_data[i];
    if (a.key == key) {
      if (const auto* v = std::get_if<std::int64_t>(&a.value)) {
        a.value = *v + delta;
      } else {
        a.value = delta;
      }
      return;
    }
  }
  Attr& slot = push_slot(span);
  slot.key = names_.intern(key);
  slot.value = AttrValue{delta};
}

std::size_t Tracer::open_spans() const noexcept {
  std::size_t open = 0;
  for (const Span& s : spans_) {
    if (s.open) ++open;
  }
  return open;
}

PoolStats Tracer::pool_stats() const noexcept {
  PoolStats stats;
  stats.spans = spans_.size();
  stats.span_capacity = spans_.capacity();
  for (const Span& s : spans_) stats.attr_entries += s.attrs_size;
  stats.attr_capacity = arena_.capacity();
  stats.attr_wasted = arena_.wasted();
  stats.interned_names = names_.size();
  return stats;
}

}  // namespace dohperf::obs
