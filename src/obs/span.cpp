#include "obs/span.hpp"

namespace dohperf::obs {

const AttrValue* Span::attr(const std::string& key) const noexcept {
  for (const Attr& a : attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

SpanId Tracer::begin(SpanId parent, std::string name) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.start = now();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::end(SpanId id) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.open) return;  // double close: first close wins
  span.open = false;
  span.end = now();
}

void Tracer::set_attr(SpanId id, const std::string& key, AttrValue value) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  for (Attr& a : span.attrs) {
    if (a.key == key) {
      a.value = std::move(value);
      return;
    }
  }
  span.attrs.push_back(Attr{key, std::move(value)});
}

void Tracer::add_attr(SpanId id, const std::string& key, std::int64_t delta) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  for (Attr& a : span.attrs) {
    if (a.key == key) {
      if (const auto* v = std::get_if<std::int64_t>(&a.value)) {
        a.value = *v + delta;
      } else {
        a.value = delta;
      }
      return;
    }
  }
  span.attrs.push_back(Attr{key, AttrValue{delta}});
}

std::size_t Tracer::open_spans() const noexcept {
  std::size_t open = 0;
  for (const Span& s : spans_) {
    if (s.open) ++open;
  }
  return open;
}

}  // namespace dohperf::obs
