// Trace exporters:
//   * render_timeline() — a per-query flame-style indented text view
//   * chrome_trace()    — Chrome trace_event JSON; load the file into
//     chrome://tracing or https://ui.perfetto.dev to browse any run
// Both walk spans in begin order and serialize attributes in insertion
// order, so output is byte-identical across identically seeded runs.
#pragma once

#include <string>

#include "dns/json_value.hpp"
#include "obs/span.hpp"

namespace dohperf::obs {

/// Indented text timeline, roots in begin order:
///   [   0.000ms +  42.318ms] resolution transport=doh-h2 query=example.com
///     [   0.000ms +  31.002ms] connect
///       [   0.000ms +  10.482ms] tcp_handshake
/// Open spans render `+open` instead of a duration.
std::string render_timeline(const Tracer& tracer);

/// Chrome trace_event document:
///   {"displayTimeUnit":"ms","traceEvents":[{"ph":"X","name":...,
///    "cat":...,"ts":<us>,"dur":<us>,"pid":1,"tid":<root span id>,
///    "args":{...}}, ...]}
/// Complete ("X") events; spans still open at export time get dur 0 and
/// args.open=true. Each root span (and its subtree) lands on its own tid
/// so concurrent resolutions occupy separate tracks.
dns::JsonValue chrome_trace(const Tracer& tracer);

/// chrome_trace() serialized compactly (what --trace writes).
std::string chrome_trace_json(const Tracer& tracer);

/// Serialize one attribute value for JSON export.
dns::JsonValue attr_to_json(const AttrValue& value);

}  // namespace dohperf::obs
