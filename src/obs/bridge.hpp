// The simnet tap → metrics bridge: a PacketTap that folds every packet on
// the fabric into registry counters, giving any run wire-level totals
// (packets, bytes, drops by layer) next to its client-side accounting —
// the cross-check the paper performed between tcpdump captures and
// application logs.
//
// Counters written (see the metric-name contract in EXPERIMENTS.md):
//   net.packets        packets put on the wire (delivered)
//   net.bytes          wire bytes of delivered packets
//   net.header_bytes   IP+transport header share of delivered bytes
//   net.tcp_bytes      delivered bytes on TCP segments
//   net.udp_bytes      delivered bytes on UDP datagrams
//   net.dropped        packets discarded by the loss model
//   net.dropped_bytes  wire bytes of those discarded packets
#pragma once

#include "obs/registry.hpp"
#include "simnet/arena.hpp"
#include "simnet/packet.hpp"

namespace dohperf::obs {

/// Publish per-shard arena accounting (aggregated by the shard runner)
/// as the mem.* gauge family — see the metric-name contract in
/// EXPERIMENTS.md. In binaries without the allocator hooks every gauge is
/// legitimately zero.
void publish_arena_stats(Registry& registry,
                         const simnet::ShardMemoryStats& stats);

class NetMetricsBridge final : public simnet::PacketTap {
 public:
  /// `registry` must outlive the bridge; null disables (null-sink path).
  /// The net.* counters are pre-registered here so the per-packet hot path
  /// is pure dense-slot writes (no map lookups).
  explicit NetMetricsBridge(Registry* registry) : registry_(registry) {
    if (registry_ == nullptr) return;
    packets_ = registry_->register_counter("net.packets");
    bytes_ = registry_->register_counter("net.bytes");
    header_bytes_ = registry_->register_counter("net.header_bytes");
    tcp_bytes_ = registry_->register_counter("net.tcp_bytes");
    udp_bytes_ = registry_->register_counter("net.udp_bytes");
    dropped_ = registry_->register_counter("net.dropped");
    dropped_bytes_ = registry_->register_counter("net.dropped_bytes");
  }

  void on_packet(simnet::TimeUs when, const simnet::Packet& packet,
                 bool dropped) override;

 private:
  Registry* registry_;
  MetricId packets_;
  MetricId bytes_;
  MetricId header_bytes_;
  MetricId tcp_bytes_;
  MetricId udp_bytes_;
  MetricId dropped_;
  MetricId dropped_bytes_;
};

}  // namespace dohperf::obs
