// Cross-layer span tracing on the virtual clock — the per-query timeline
// behind the paper's attribution story (§3 resolution time, §4/Fig 5 layer
// costs). A Tracer records hierarchical spans (resolution → connect →
// tcp_handshake / tls_handshake / quic_handshake → request → response, plus
// retry / fallback / cache_lookup children) with typed attributes; a
// lightweight SpanContext threads the tracer (and metrics registry) through
// transports, the resolver engine and the browser fetch scheduler.
//
// Determinism: spans are stored in begin order, attributes in insertion
// order, and all timestamps come from the virtual clock — two identically
// seeded runs export byte-identical traces. Instrumentation is zero-cost
// when no tracer is attached: every SpanContext helper reduces to one
// null-pointer test (the null-sink fast path).
//
// Storage is pooled for production rates (bench/obs_overhead): span names
// and attribute keys are interned once into a stable NameTable (string_view
// lookups, no per-begin allocation), and attribute records live in a
// chunked arena owned by the tracer, so begin()/end()/set_attr() on hot
// paths stop hitting the allocator after warm-up.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "simnet/event_loop.hpp"
#include "simnet/time.hpp"

namespace dohperf::obs {

class Registry;

/// 1-based index into the tracer's span table; 0 = "no span".
using SpanId = std::uint64_t;

/// Typed attribute values. Strings for enumerations (transport, reason),
/// integers for counts and bytes, bool for flags, double for ratios.
using AttrValue = std::variant<std::int64_t, std::string, bool, double>;

struct Attr {
  std::string_view key;  ///< interned — points into the tracer's NameTable
  AttrValue value;
};

/// Interns strings once and hands out views into node-stable storage
/// (std::map keys never move), so spans and attrs can hold string_views
/// that stay valid for the table's lifetime.
class NameTable {
 public:
  /// Return a stable view equal to `s`, interning it on first sight.
  std::string_view intern(std::string_view s);
  std::size_t size() const noexcept { return ids_.size(); }

 private:
  std::map<std::string, std::uint32_t, std::less<>> ids_;
};

/// Pool/arena occupancy self-metrics (bench/obs_overhead reports these).
struct PoolStats {
  std::size_t spans = 0;           ///< span records held
  std::size_t span_capacity = 0;   ///< span table slots allocated
  std::size_t attr_entries = 0;    ///< live attribute slots across all spans
  std::size_t attr_capacity = 0;   ///< attribute slots allocated in chunks
  std::size_t attr_wasted = 0;     ///< slots abandoned by growth/chunk tails
  std::size_t interned_names = 0;  ///< distinct names + keys interned
};

/// Chunked arena for per-span attribute arrays. Each span owns a contiguous
/// slice; growth doubles the slice (old slots are abandoned, counted as
/// wasted). Slices never move once handed out except through grow().
class AttrArena {
 public:
  /// Allocate a fresh slice of `n` slots.
  Attr* alloc(std::size_t n);
  /// Grow a slice from old_cap to new_cap, moving `size` live entries.
  /// Returns the new slice; the old one is abandoned (counted wasted).
  Attr* grow(Attr* old_data, std::size_t size, std::size_t old_cap,
             std::size_t new_cap);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t wasted() const noexcept { return wasted_; }

 private:
  static constexpr std::size_t kChunk = 1024;

  struct Chunk {
    std::unique_ptr<Attr[]> slots;
    std::size_t cap = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t used_in_last_ = 0;  ///< slots handed out from chunks_.back()
  std::size_t capacity_ = 0;      ///< total slots across chunks
  std::size_t wasted_ = 0;        ///< tail + abandoned-by-growth slots
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root span
  std::string_view name;  ///< interned in the tracer's NameTable
  simnet::TimeUs start = 0;
  simnet::TimeUs end = 0;
  bool open = true;  ///< end not yet recorded

  /// Attributes in insertion order (deterministic).
  std::span<const Attr> attrs() const noexcept {
    return {attrs_data, attrs_size};
  }
  simnet::TimeUs duration() const noexcept { return open ? 0 : end - start; }
  /// Attribute lookup; returns nullptr when absent.
  const AttrValue* attr(std::string_view key) const noexcept;

  // Arena slice — managed by the owning Tracer; treat as private.
  Attr* attrs_data = nullptr;
  std::uint32_t attrs_size = 0;
  std::uint32_t attrs_cap = 0;
};

/// Records spans against a bindable virtual clock. One tracer can span
/// several simulations (benches re-bind per scenario); span ids stay unique
/// across bindings so one export holds the whole run.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const simnet::EventLoop& loop) : clock_(&loop) {}

  /// (Re-)attach the virtual clock the next spans read their times from.
  void bind(const simnet::EventLoop& loop) noexcept { clock_ = &loop; }

  /// Pre-size the span table (pool warm-up for hot loops).
  void reserve(std::size_t spans) { spans_.reserve(spans); }

  /// Open a span under `parent` (0 = root). Never returns 0.
  SpanId begin(SpanId parent, std::string_view name);

  /// Close a span. Closing out of order, twice, or with id 0 is a no-op
  /// for every span but the target — tolerated by design (timeout paths
  /// close parents before children).
  void end(SpanId id);

  /// Set (or overwrite) a typed attribute; id 0 is a no-op. Attributes may
  /// be set after the span has closed (lazy cost finalization does this).
  void set_attr(SpanId id, std::string_view key, AttrValue value);

  /// Accumulate into an integer attribute (missing key starts at 0).
  void add_attr(SpanId id, std::string_view key, std::int64_t delta);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::size_t size() const noexcept { return spans_.size(); }
  bool empty() const noexcept { return spans_.empty(); }
  /// The span record for an id returned by begin().
  const Span& span(SpanId id) const { return spans_.at(id - 1); }

  /// Number of spans still open (test/diagnostic aid).
  std::size_t open_spans() const noexcept;

  /// Pool/arena/interning occupancy (obs.pool.* self-metrics).
  PoolStats pool_stats() const noexcept;

 private:
  simnet::TimeUs now() const noexcept { return clock_ ? clock_->now() : 0; }
  /// Ensure `span` has room for one more attr; returns the write slot.
  Attr& push_slot(Span& span);

  const simnet::EventLoop* clock_ = nullptr;
  std::vector<Span> spans_;
  NameTable names_;
  AttrArena arena_;
};

/// The propagation handle threaded through client configs: a tracer, the
/// parent span new spans hang under, and the metrics registry. Copyable,
/// two pointers and an id; default-constructed = observability off.
struct SpanContext {
  Tracer* tracer = nullptr;
  SpanId parent = 0;
  Registry* metrics = nullptr;

  explicit operator bool() const noexcept { return tracer != nullptr; }

  /// Open a child span under this context's parent; 0 when no tracer.
  SpanId begin(std::string_view name) const {
    return tracer ? tracer->begin(parent, name) : 0;
  }
  void end(SpanId id) const {
    if (tracer) tracer->end(id);
  }
  void set_attr(SpanId id, std::string_view key, AttrValue value) const {
    if (tracer) tracer->set_attr(id, key, std::move(value));
  }
  void add_attr(SpanId id, std::string_view key, std::int64_t delta) const {
    if (tracer) tracer->add_attr(id, key, delta);
  }
  /// A context whose children hang under `span` (same tracer/registry).
  SpanContext child(SpanId span) const {
    return SpanContext{tracer, span, metrics};
  }
};

}  // namespace dohperf::obs
