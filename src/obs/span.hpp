// Cross-layer span tracing on the virtual clock — the per-query timeline
// behind the paper's attribution story (§3 resolution time, §4/Fig 5 layer
// costs). A Tracer records hierarchical spans (resolution → connect →
// tcp_handshake / tls_handshake / quic_handshake → request → response, plus
// retry / fallback / cache_lookup children) with typed attributes; a
// lightweight SpanContext threads the tracer (and metrics registry) through
// transports, the resolver engine and the browser fetch scheduler.
//
// Determinism: spans are stored in begin order, attributes in insertion
// order, and all timestamps come from the virtual clock — two identically
// seeded runs export byte-identical traces. Instrumentation is zero-cost
// when no tracer is attached: every SpanContext helper reduces to one
// null-pointer test (the null-sink fast path).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "simnet/event_loop.hpp"
#include "simnet/time.hpp"

namespace dohperf::obs {

class Registry;

/// 1-based index into the tracer's span table; 0 = "no span".
using SpanId = std::uint64_t;

/// Typed attribute values. Strings for enumerations (transport, reason),
/// integers for counts and bytes, bool for flags, double for ratios.
using AttrValue = std::variant<std::int64_t, std::string, bool, double>;

struct Attr {
  std::string key;
  AttrValue value;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root span
  std::string name;
  simnet::TimeUs start = 0;
  simnet::TimeUs end = 0;
  bool open = true;              ///< end not yet recorded
  std::vector<Attr> attrs;       ///< insertion order (deterministic)

  simnet::TimeUs duration() const noexcept { return open ? 0 : end - start; }
  /// Attribute lookup; returns nullptr when absent.
  const AttrValue* attr(const std::string& key) const noexcept;
};

/// Records spans against a bindable virtual clock. One tracer can span
/// several simulations (benches re-bind per scenario); span ids stay unique
/// across bindings so one export holds the whole run.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const simnet::EventLoop& loop) : clock_(&loop) {}

  /// (Re-)attach the virtual clock the next spans read their times from.
  void bind(const simnet::EventLoop& loop) noexcept { clock_ = &loop; }

  /// Open a span under `parent` (0 = root). Never returns 0.
  SpanId begin(SpanId parent, std::string name);

  /// Close a span. Closing out of order, twice, or with id 0 is a no-op
  /// for every span but the target — tolerated by design (timeout paths
  /// close parents before children).
  void end(SpanId id);

  /// Set (or overwrite) a typed attribute; id 0 is a no-op. Attributes may
  /// be set after the span has closed (lazy cost finalization does this).
  void set_attr(SpanId id, const std::string& key, AttrValue value);

  /// Accumulate into an integer attribute (missing key starts at 0).
  void add_attr(SpanId id, const std::string& key, std::int64_t delta);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::size_t size() const noexcept { return spans_.size(); }
  bool empty() const noexcept { return spans_.empty(); }
  /// The span record for an id returned by begin().
  const Span& span(SpanId id) const { return spans_.at(id - 1); }

  /// Number of spans still open (test/diagnostic aid).
  std::size_t open_spans() const noexcept;

 private:
  simnet::TimeUs now() const noexcept { return clock_ ? clock_->now() : 0; }

  const simnet::EventLoop* clock_ = nullptr;
  std::vector<Span> spans_;
};

/// The propagation handle threaded through client configs: a tracer, the
/// parent span new spans hang under, and the metrics registry. Copyable,
/// two pointers and an id; default-constructed = observability off.
struct SpanContext {
  Tracer* tracer = nullptr;
  SpanId parent = 0;
  Registry* metrics = nullptr;

  explicit operator bool() const noexcept { return tracer != nullptr; }

  /// Open a child span under this context's parent; 0 when no tracer.
  SpanId begin(std::string name) const {
    return tracer ? tracer->begin(parent, std::move(name)) : 0;
  }
  void end(SpanId id) const {
    if (tracer) tracer->end(id);
  }
  void set_attr(SpanId id, const std::string& key, AttrValue value) const {
    if (tracer) tracer->set_attr(id, key, std::move(value));
  }
  void add_attr(SpanId id, const std::string& key, std::int64_t delta) const {
    if (tracer) tracer->add_attr(id, key, delta);
  }
  /// A context whose children hang under `span` (same tracer/registry).
  SpanContext child(SpanId span) const {
    return SpanContext{tracer, span, metrics};
  }
};

}  // namespace dohperf::obs
