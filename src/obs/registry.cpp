#include "obs/registry.hpp"

#include <sstream>

namespace dohperf::obs {

void Registry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void Registry::set_gauge(const std::string& name, std::int64_t value) {
  gauges_[name] = value;
}

void Registry::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

std::uint64_t Registry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Registry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const stats::Cdf* Registry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

HistogramSummary Registry::histogram_summary(const std::string& name) const {
  HistogramSummary s;
  const stats::Cdf* cdf = histogram(name);
  if (cdf == nullptr || cdf->empty()) return s;
  s.count = cdf->count();
  s.min = cdf->sorted_values().front();
  s.p25 = cdf->quantile(0.25);
  s.p50 = cdf->quantile(0.50);
  s.p75 = cdf->quantile(0.75);
  s.p90 = cdf->quantile(0.90);
  s.max = cdf->quantile(1.0);
  return s;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;
  }
  for (const auto& [name, cdf] : other.histograms_) {
    histograms_[name].add_all(cdf.sorted_values());
  }
}

dns::JsonValue Registry::to_json() const {
  dns::JsonObject root;
  root["schema"] = dns::JsonValue("dohperf-metrics-v1");

  dns::JsonObject counters;
  for (const auto& [name, value] : counters_) {
    counters[name] = dns::JsonValue(static_cast<std::int64_t>(value));
  }
  root["counters"] = dns::JsonValue(std::move(counters));

  dns::JsonObject gauges;
  for (const auto& [name, value] : gauges_) {
    gauges[name] = dns::JsonValue(value);
  }
  root["gauges"] = dns::JsonValue(std::move(gauges));

  dns::JsonObject histograms;
  for (const auto& [name, cdf] : histograms_) {
    const HistogramSummary s = histogram_summary(name);
    dns::JsonObject h;
    h["count"] = dns::JsonValue(static_cast<std::int64_t>(s.count));
    h["min"] = dns::JsonValue(s.min);
    h["p25"] = dns::JsonValue(s.p25);
    h["p50"] = dns::JsonValue(s.p50);
    h["p75"] = dns::JsonValue(s.p75);
    h["p90"] = dns::JsonValue(s.p90);
    h["max"] = dns::JsonValue(s.max);
    histograms[name] = dns::JsonValue(std::move(h));
  }
  root["histograms"] = dns::JsonValue(std::move(histograms));
  return dns::JsonValue(std::move(root));
}

std::string Registry::render() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << ' ' << value << '\n';
  }
  for (const auto& [name, cdf] : histograms_) {
    const HistogramSummary s = histogram_summary(name);
    os << name << " n=" << s.count << " p50=" << s.p50 << " p90=" << s.p90
       << " max=" << s.max << '\n';
  }
  return os.str();
}

}  // namespace dohperf::obs
