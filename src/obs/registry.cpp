#include "obs/registry.hpp"

#include <sstream>

namespace dohperf::obs {

MetricId Registry::register_counter(const std::string& name) {
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) {
    return MetricId(MetricKind::kCounter, it->second);
  }
  const auto index = static_cast<std::uint32_t>(counter_slots_.size());
  counter_slots_.push_back(CounterSlot{name, 0, false});
  counter_ids_.emplace(name, index);
  return MetricId(MetricKind::kCounter, index);
}

MetricId Registry::register_gauge(const std::string& name) {
  const auto it = gauge_ids_.find(name);
  if (it != gauge_ids_.end()) {
    return MetricId(MetricKind::kGauge, it->second);
  }
  const auto index = static_cast<std::uint32_t>(gauge_slots_.size());
  gauge_slots_.push_back(GaugeSlot{name, 0, false});
  gauge_ids_.emplace(name, index);
  return MetricId(MetricKind::kGauge, index);
}

MetricId Registry::register_histogram(const std::string& name) {
  const auto it = hist_ids_.find(name);
  if (it != hist_ids_.end()) {
    return MetricId(MetricKind::kHistogram, it->second);
  }
  const auto index = static_cast<std::uint32_t>(hist_slots_.size());
  hist_slots_.push_back(HistSlot{name, {}});
  hist_ids_.emplace(name, index);
  return MetricId(MetricKind::kHistogram, index);
}

void Registry::sync() const {
  if (!slots_dirty_) return;
  for (CounterSlot& slot : counter_slots_) {
    if (!slot.touched) continue;
    counters_[slot.name] += slot.pending;
    slot.pending = 0;
    slot.touched = false;
  }
  for (GaugeSlot& slot : gauge_slots_) {
    if (!slot.dirty) continue;
    gauges_[slot.name] = slot.value;
    slot.dirty = false;
  }
  for (HistSlot& slot : hist_slots_) {
    if (slot.pending.empty()) continue;
    histograms_[slot.name].add_all(slot.pending);
    slot.pending.clear();
  }
  slots_dirty_ = false;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void Registry::set_gauge(const std::string& name, std::int64_t value) {
  // Last write wins across both paths: fold older slot writes in first so a
  // stale dirty slot cannot overwrite this value at the next sync.
  sync();
  gauges_[name] = value;
}

void Registry::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

std::uint64_t Registry::counter(const std::string& name) const {
  sync();
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Registry::gauge(const std::string& name) const {
  sync();
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const stats::Cdf* Registry::histogram(const std::string& name) const {
  sync();
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

HistogramSummary Registry::histogram_summary(const std::string& name) const {
  HistogramSummary s;
  const stats::Cdf* cdf = histogram(name);
  if (cdf == nullptr || cdf->empty()) return s;
  s.count = cdf->count();
  s.min = cdf->sorted_values().front();
  s.p25 = cdf->quantile(0.25);
  s.p50 = cdf->quantile(0.50);
  s.p75 = cdf->quantile(0.75);
  s.p90 = cdf->quantile(0.90);
  s.p95 = cdf->quantile(0.95);
  s.p99 = cdf->quantile(0.99);
  s.max = cdf->quantile(1.0);
  return s;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  for (CounterSlot& slot : counter_slots_) {
    slot.pending = 0;
    slot.touched = false;
  }
  for (GaugeSlot& slot : gauge_slots_) {
    slot.value = 0;
    slot.dirty = false;
  }
  for (HistSlot& slot : hist_slots_) slot.pending.clear();
  slots_dirty_ = false;
}

void Registry::merge_from(const Registry& other) {
  sync();
  other.sync();
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;
  }
  for (const auto& [name, cdf] : other.histograms_) {
    histograms_[name].add_all(cdf.sorted_values());
  }
}

dns::JsonValue Registry::to_json() const {
  sync();
  dns::JsonObject root;
  root["schema"] = dns::JsonValue("dohperf-metrics-v1");

  dns::JsonObject counters;
  for (const auto& [name, value] : counters_) {
    counters[name] = dns::JsonValue(static_cast<std::int64_t>(value));
  }
  root["counters"] = dns::JsonValue(std::move(counters));

  dns::JsonObject gauges;
  for (const auto& [name, value] : gauges_) {
    gauges[name] = dns::JsonValue(value);
  }
  root["gauges"] = dns::JsonValue(std::move(gauges));

  dns::JsonObject histograms;
  for (const auto& [name, cdf] : histograms_) {
    const HistogramSummary s = histogram_summary(name);
    dns::JsonObject h;
    h["count"] = dns::JsonValue(static_cast<std::int64_t>(s.count));
    h["min"] = dns::JsonValue(s.min);
    h["p25"] = dns::JsonValue(s.p25);
    h["p50"] = dns::JsonValue(s.p50);
    h["p75"] = dns::JsonValue(s.p75);
    h["p90"] = dns::JsonValue(s.p90);
    h["p95"] = dns::JsonValue(s.p95);
    h["p99"] = dns::JsonValue(s.p99);
    h["max"] = dns::JsonValue(s.max);
    histograms[name] = dns::JsonValue(std::move(h));
  }
  root["histograms"] = dns::JsonValue(std::move(histograms));
  return dns::JsonValue(std::move(root));
}

std::string Registry::render() const {
  sync();
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << ' ' << value << '\n';
  }
  for (const auto& [name, cdf] : histograms_) {
    const HistogramSummary s = histogram_summary(name);
    os << name << " n=" << s.count << " p50=" << s.p50 << " p90=" << s.p90
       << " max=" << s.max << '\n';
  }
  return os.str();
}

}  // namespace dohperf::obs
