#include "obs/sampling.hpp"

namespace dohperf::obs {

SamplingTracer::SamplingTracer(Tracer& tracer, Registry* metrics,
                               SamplingConfig config)
    : tracer_(tracer), metrics_(metrics), config_(config) {
  if (metrics_ != nullptr) {
    sampled_ = metrics_->register_counter("obs.spans_sampled");
    dropped_ = metrics_->register_counter("obs.spans_dropped");
  }
}

}  // namespace dohperf::obs
