// Deterministic trace sampling — production-rate observability. A
// SamplingTracer fronts a Tracer with a keep/drop decision per *root* span:
// kept roots record their full subtree at full fidelity, dropped roots hand
// out a null-tracer SpanContext so the whole subtree reduces to the
// existing one-null-check fast path (metrics still flow).
//
// The decision is a pure function of (seed, sample key): a seeded
// SplitMix64 hash of the caller-supplied key (e.g. the query ordinal), so
// the sampled subset is byte-identical across runs, across `--jobs N` shard
// partitions, and independent of the order contexts are requested in.
//
// Self-metrics (metric-name contract, EXPERIMENTS.md):
//   obs.spans_sampled   root spans kept (full subtree recorded)
//   obs.spans_dropped   root spans dropped (null-sink fast path)
#pragma once

#include <cstdint>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "stats/rng.hpp"

namespace dohperf::obs {

struct SamplingConfig {
  /// Keep 1 in `period` roots on average; 0 or 1 keeps every root.
  std::uint64_t period = 64;
  /// Folded into the per-key hash; two tracers with the same seed and
  /// period make identical decisions for every key.
  std::uint64_t seed = 0;
};

class SamplingTracer {
 public:
  /// `tracer` must outlive this object; `metrics` may be null (no
  /// self-metrics, sampling decisions unaffected).
  SamplingTracer(Tracer& tracer, Registry* metrics,
                 SamplingConfig config = {});

  /// The pure decision function: true iff a root with `key` is recorded.
  /// Static so tests (and shards) can evaluate it without a tracer.
  static bool keep(const SamplingConfig& config, std::uint64_t key) noexcept {
    if (config.period <= 1) return true;
    stats::SplitMix64 rng(config.seed ^ key);
    return rng.next_below(config.period) == 0;
  }
  bool keep(std::uint64_t key) const noexcept { return keep(config_, key); }

  /// The root context for one unit of work (query, page load, ...): a full
  /// tracing context when `key` is kept, the null-sink fast path when
  /// dropped. Counts obs.spans_sampled / obs.spans_dropped either way.
  SpanContext root_context(std::uint64_t key) {
    const bool kept = keep(config_, key);
    if (metrics_ != nullptr) metrics_->add(kept ? sampled_ : dropped_);
    return SpanContext{kept ? &tracer_ : nullptr, 0, metrics_};
  }

  const SamplingConfig& config() const noexcept { return config_; }
  Tracer& tracer() noexcept { return tracer_; }

 private:
  Tracer& tracer_;
  Registry* metrics_;
  SamplingConfig config_;
  MetricId sampled_;
  MetricId dropped_;
};

}  // namespace dohperf::obs
