// The resolver engine: answer policy shared by all server front-ends
// (UDP, DoT, DoH), mirroring the paper's CoreDNS configuration — a fixed
// answer for every name — plus injectable delays (the §3 experiment delays
// 1 in 25 queries by 1000 ms) and a cache/upstream model for §5.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "dns/message.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resolver/query_handler.hpp"
#include "simnet/event_loop.hpp"
#include "stats/rng.hpp"

namespace dohperf::resolver {

/// Delay every `every_n`-th query by `delay` (0 disables).
struct DelayPolicy {
  std::uint64_t every_n = 0;
  simnet::TimeUs delay = simnet::ms(1000);
};

/// Server-side fault injection, sampled per query from the engine's seeded
/// RNG: error rcodes model a broken recursive backend, a stall models the
/// worst failure a connection-oriented transport can see — the server
/// accepts the query and never answers, leaving the client to time out.
struct FaultPolicy {
  double servfail_rate = 0.0;  ///< P(answer SERVFAIL)
  double refused_rate = 0.0;   ///< P(answer REFUSED)
  double stall_rate = 0.0;     ///< P(accept, never answer)
};

/// Recursive-resolution model: each query hits the cache with probability
/// `cache_hit_ratio`; misses pay an upstream round trip sampled from a
/// log-normal distribution (heavy tail, like real recursive latency).
struct UpstreamModel {
  double cache_hit_ratio = 1.0;        ///< 1.0 = authoritative/fixed answer
  double upstream_mu_ms = 3.0;         ///< log-normal location (log of ms)
  double upstream_sigma = 0.8;
  simnet::TimeUs processing = simnet::us(100);  ///< per-query server work
};

struct EngineConfig {
  std::string fixed_address = "192.0.2.1";  ///< answer for every A query
  std::uint32_t ttl = 300;
  /// SOA MINIMUM advertised in negative responses (RFC 2308): clients
  /// derive their negative-cache TTL as min(SOA TTL, SOA MINIMUM).
  std::uint32_t soa_minimum = 60;
  /// Number of A records per answer. Google's resolver typically returns
  /// several addresses where Cloudflare returns fewer, which is part of
  /// why Google's DoH bodies run larger (§4).
  int answer_count = 1;
  /// Attach an EDNS Client Subnet option to responses (RFC 7871). Google
  /// supports ECS; Cloudflare deliberately does not.
  bool ecs_option = false;
  DelayPolicy delay_policy;
  FaultPolicy faults;
  UpstreamModel upstream;
  std::uint64_t seed = 42;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct EngineStats {
  std::uint64_t queries = 0;
  std::uint64_t delayed = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t injected_servfail = 0;
  std::uint64_t injected_refused = 0;
  std::uint64_t stalled = 0;
  std::uint64_t negative_answers = 0;  ///< NXDOMAIN/NODATA (SOA attached)
};

/// Asynchronous query handler; the continuation runs on the event loop
/// after the configured processing/delay time.
class Engine final : public QueryHandler {
 public:
  using Continuation = QueryHandler::Continuation;

  Engine(simnet::EventLoop& loop, EngineConfig config);

  /// Handle a query; `done` fires with the response after the simulated
  /// processing time (plus injected delay when the policy strikes).
  /// The engine ignores the request context — overload control lives in
  /// RecursiveTier, which consumes it before delegating here.
  void handle(const dns::Message& query, const QueryContext& context,
              Continuation done) override;

  /// Context-free convenience overload for callers that predate the tier.
  void handle(const dns::Message& query, Continuation done) {
    handle(query, QueryContext{}, std::move(done));
  }

  /// Zone override: answer `name` with a specific address instead of the
  /// fixed one (used by the browser experiments where each origin has a
  /// distinct server node).
  void add_record(const dns::Name& name, const std::string& address);

  /// Zone override: answer `name` with NXDOMAIN plus the SOA authority
  /// record negative caching derives its TTL from (RFC 2308).
  void add_nxdomain(const dns::Name& name);

  const EngineStats& stats() const noexcept { return stats_; }
  const EngineConfig& config() const noexcept { return config_; }

 private:
  /// Re-register the engine.* handles when the registry changes.
  void bind_obs_ids();

  dns::Message answer(const dns::Message& query) const;
  /// The SOA record negative responses carry (RFC 2308): owner is the
  /// query name's parent zone, MINIMUM comes from config.soa_minimum.
  dns::ResourceRecord soa_record(const dns::Name& qname) const;
  simnet::TimeUs next_service_time();

  simnet::EventLoop& loop_;
  EngineConfig config_;
  EngineStats stats_;
  obs::MetricId m_queries_;
  obs::MetricId m_delayed_;
  obs::MetricId m_cache_misses_;
  obs::MetricId m_stalled_;
  obs::MetricId m_servfail_injected_;
  obs::MetricId m_refused_injected_;
  obs::MetricId m_negative_answers_;
  obs::Registry* bound_metrics_ = nullptr;
  stats::LogNormalSampler upstream_latency_;
  stats::SplitMix64 cache_rng_;
  stats::SplitMix64 fault_rng_;
  std::map<dns::Name, std::string> zone_;
  std::map<dns::Name, bool> nxdomain_;  ///< names answered NXDOMAIN
};

}  // namespace dohperf::resolver
