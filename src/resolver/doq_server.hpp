// DNS-over-QUIC front-end (RFC 9250) — EXTENSION. One query per stream,
// answered on the same stream; because streams are independent, a delayed
// query never blocks others (no server-side ordering choice to make, unlike
// DoT/RFC 7766).
#pragma once

#include <map>
#include <memory>

#include "quicsim/endpoint.hpp"
#include "resolver/query_handler.hpp"
#include "tlssim/types.hpp"

namespace dohperf::resolver {

struct DoqServerConfig {
  tlssim::ServerConfig tls;
  quicsim::QuicConnectionConfig quic;
};

class DoqServer {
 public:
  DoqServer(simnet::Host& host, QueryHandler& handler,
            DoqServerConfig config = {}, std::uint16_t port = 853);

  DoqServer(const DoqServer&) = delete;
  DoqServer& operator=(const DoqServer&) = delete;

  simnet::Address address() const { return server_->address(); }
  std::size_t connection_count() const { return server_->connection_count(); }

 private:
  struct StreamState {
    dns::Bytes rx;
  };
  /// Per-connection stream buffers, dropped when the connection closes.
  struct ConnState : std::enable_shared_from_this<ConnState> {
    std::map<std::uint64_t, StreamState> streams;
  };

  void on_accept(quicsim::QuicConnection& conn);
  void on_query(quicsim::QuicConnection& conn, std::uint64_t stream_id,
                const dns::Bytes& wire);

  simnet::Host& host_;
  QueryHandler& handler_;
  DoqServerConfig config_;
  std::unique_ptr<quicsim::QuicServer> server_;
  std::map<const quicsim::QuicConnection*, std::shared_ptr<ConnState>>
      states_;
};

}  // namespace dohperf::resolver
