// Plain DNS-over-TCP front-end (RFC 7766): two-byte length framing over
// TCP port 53, no TLS. This is the classic truncation-fallback transport
// and the substrate of "connection-oriented DNS" (Zhu et al., the paper's
// reference [26]); the library implements it both for completeness and as
// an extra comparison point between UDP and the encrypted transports.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "resolver/query_handler.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"

namespace dohperf::resolver {

struct TcpDnsServerConfig {
  /// Like DoT: most servers answer in order; out-of-order requires
  /// per-query state.
  bool out_of_order = false;
  /// Hardening: a length prefix larger than this (or zero) is treated as a
  /// malformed peer and the connection is closed deterministically instead
  /// of buffering up to 64 KiB per frame. Queries never approach this.
  std::size_t max_message_bytes = 4096;
};

class TcpDnsServer {
 public:
  TcpDnsServer(simnet::Host& host, QueryHandler& handler,
               TcpDnsServerConfig config = {}, std::uint16_t port = 53);
  ~TcpDnsServer();

  TcpDnsServer(const TcpDnsServer&) = delete;
  TcpDnsServer& operator=(const TcpDnsServer&) = delete;

  simnet::Address address() const { return {host_.id(), port_}; }
  std::size_t session_count() const noexcept { return sessions_.size(); }
  /// Connections dropped for unparseable or oversized frames.
  std::uint64_t malformed() const noexcept { return malformed_; }

 private:
  struct Session {
    std::unique_ptr<simnet::TcpByteStream> stream;
    simnet::Bytes rx;
    std::uint64_t next_assigned = 0;
    std::uint64_t next_to_send = 0;
    std::map<std::uint64_t, dns::Bytes> ready;
    bool dead = false;
    simnet::NodeId peer = 0;  ///< requesting client, for QueryContext
    std::weak_ptr<Session> self;
  };

  void on_accept(std::shared_ptr<simnet::TcpConnection> conn);
  void on_data(Session& session, std::span<const std::uint8_t> data);
  void answer(Session& session, std::uint64_t sequence, dns::Bytes wire);
  void prune();

  simnet::Host& host_;
  QueryHandler& handler_;
  TcpDnsServerConfig config_;
  std::uint16_t port_;
  std::uint64_t malformed_ = 0;
  std::vector<std::shared_ptr<Session>> sessions_;
};

}  // namespace dohperf::resolver
