// Plain DNS-over-TCP front-end (RFC 7766): two-byte length framing over
// TCP port 53, no TLS. This is the classic truncation-fallback transport
// and the substrate of "connection-oriented DNS" (Zhu et al., the paper's
// reference [26]); the library implements it both for completeness and as
// an extra comparison point between UDP and the encrypted transports.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "resolver/engine.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"

namespace dohperf::resolver {

struct TcpDnsServerConfig {
  /// Like DoT: most servers answer in order; out-of-order requires
  /// per-query state.
  bool out_of_order = false;
};

class TcpDnsServer {
 public:
  TcpDnsServer(simnet::Host& host, Engine& engine,
               TcpDnsServerConfig config = {}, std::uint16_t port = 53);
  ~TcpDnsServer();

  TcpDnsServer(const TcpDnsServer&) = delete;
  TcpDnsServer& operator=(const TcpDnsServer&) = delete;

  simnet::Address address() const { return {host_.id(), port_}; }
  std::size_t session_count() const noexcept { return sessions_.size(); }

 private:
  struct Session {
    std::unique_ptr<simnet::TcpByteStream> stream;
    simnet::Bytes rx;
    std::uint64_t next_assigned = 0;
    std::uint64_t next_to_send = 0;
    std::map<std::uint64_t, dns::Bytes> ready;
    bool dead = false;
    std::weak_ptr<Session> self;
  };

  void on_accept(std::shared_ptr<simnet::TcpConnection> conn);
  void on_data(Session& session, std::span<const std::uint8_t> data);
  void answer(Session& session, std::uint64_t sequence, dns::Bytes wire);
  void prune();

  simnet::Host& host_;
  Engine& engine_;
  TcpDnsServerConfig config_;
  std::uint16_t port_;
  std::vector<std::shared_ptr<Session>> sessions_;
};

}  // namespace dohperf::resolver
