#include "resolver/tcp_dns_server.hpp"

namespace dohperf::resolver {

namespace {

dns::Bytes frame(const dns::Bytes& message) {
  dns::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(message.size()));
  w.bytes(message);
  return w.take();
}

}  // namespace

TcpDnsServer::TcpDnsServer(simnet::Host& host, QueryHandler& handler,
                           TcpDnsServerConfig config, std::uint16_t port)
    : host_(host), handler_(handler), config_(config), port_(port) {
  host_.tcp_listen(port_, [this](std::shared_ptr<simnet::TcpConnection> c) {
    on_accept(std::move(c));
  });
}

TcpDnsServer::~TcpDnsServer() { host_.tcp_stop_listening(port_); }

void TcpDnsServer::on_accept(std::shared_ptr<simnet::TcpConnection> conn) {
  prune();
  auto session = std::make_shared<Session>();
  session->self = session;
  session->peer = conn->remote().node;
  session->stream = std::make_unique<simnet::TcpByteStream>(std::move(conn));
  Session* raw = session.get();
  simnet::ByteStream::Handlers h;
  h.on_data = [this, raw](std::span<const std::uint8_t> d) {
    on_data(*raw, d);
  };
  h.on_close = [raw]() {
    raw->dead = true;
    // The peer closed (or half-closed): close our side so both TCP state
    // machines can finish.
    raw->stream->close();
  };
  session->stream->set_handlers(std::move(h));
  sessions_.push_back(std::move(session));
}

void TcpDnsServer::on_data(Session& session,
                           std::span<const std::uint8_t> data) {
  session.rx.insert(session.rx.end(), data.begin(), data.end());
  while (session.rx.size() >= 2) {
    const std::size_t len =
        (static_cast<std::size_t>(session.rx[0]) << 8) | session.rx[1];
    // Hardening: a zero-length or oversized frame is a malformed peer;
    // close deterministically rather than buffering or asserting.
    if (len == 0 || len > config_.max_message_bytes) {
      ++malformed_;
      session.stream->close();
      session.dead = true;
      return;
    }
    if (session.rx.size() < 2 + len) break;
    dns::Bytes wire(session.rx.begin() + 2,
                    session.rx.begin() + static_cast<std::ptrdiff_t>(2 + len));
    session.rx.erase(session.rx.begin(),
                     session.rx.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message query;
    try {
      query = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      ++malformed_;
      session.stream->close();
      session.dead = true;
      return;
    }
    const std::uint64_t sequence = session.next_assigned++;
    std::weak_ptr<Session> weak = session.self;
    const QueryContext context{session.peer, Transport::kTcp};
    handler_.handle(query, context,
                    [this, weak, sequence](dns::Message response) {
                      if (const auto s = weak.lock()) {
                        answer(*s, sequence, response.encode());
                      }
                    });
  }
}

void TcpDnsServer::answer(Session& session, std::uint64_t sequence,
                          dns::Bytes wire) {
  if (session.dead || !session.stream->is_open()) return;
  if (config_.out_of_order) {
    session.stream->send(frame(wire));
    return;
  }
  session.ready.emplace(sequence, std::move(wire));
  while (true) {
    const auto it = session.ready.find(session.next_to_send);
    if (it == session.ready.end()) break;
    session.stream->send(frame(it->second));
    session.ready.erase(it);
    ++session.next_to_send;
  }
}

void TcpDnsServer::prune() {
  std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
    return s->dead || !s->stream->is_open();
  });
}

}  // namespace dohperf::resolver
