#include "resolver/doq_server.hpp"

namespace dohperf::resolver {

DoqServer::DoqServer(simnet::Host& host, QueryHandler& handler,
                     DoqServerConfig config, std::uint16_t port)
    : host_(host), handler_(handler), config_(std::move(config)) {
  server_ = std::make_unique<quicsim::QuicServer>(
      host_, port, &config_.tls,
      [this](quicsim::QuicConnection& conn) { on_accept(conn); },
      config_.quic);
}

void DoqServer::on_accept(quicsim::QuicConnection& conn) {
  auto state = std::make_shared<ConnState>();
  states_.emplace(&conn, state);

  quicsim::QuicConnection* conn_ptr = &conn;
  conn.set_on_stream_data([this, conn_ptr, state](
                              std::uint64_t stream_id,
                              std::span<const std::uint8_t> data, bool fin) {
    auto& stream = state->streams[stream_id];
    stream.rx.insert(stream.rx.end(), data.begin(), data.end());
    if (!fin) return;
    // Complete query: 2-byte length prefix + DNS message.
    if (stream.rx.size() < 2) return;
    const std::size_t len =
        (static_cast<std::size_t>(stream.rx[0]) << 8) | stream.rx[1];
    if (stream.rx.size() < 2 + len) return;
    const dns::Bytes wire(stream.rx.begin() + 2,
                          stream.rx.begin() +
                              static_cast<std::ptrdiff_t>(2 + len));
    state->streams.erase(stream_id);
    on_query(*conn_ptr, stream_id, wire);
  });
  conn.set_on_closed([this, conn_ptr]() { states_.erase(conn_ptr); });
}

void DoqServer::on_query(quicsim::QuicConnection& conn,
                         std::uint64_t stream_id, const dns::Bytes& wire) {
  dns::Message query;
  try {
    query = dns::Message::decode(wire);
  } catch (const dns::WireError&) {
    conn.close(/*error_code=*/2);  // DOQ_PROTOCOL_ERROR
    return;
  }
  quicsim::QuicConnection* conn_ptr = &conn;
  // The continuation may outlive the connection (the QUIC server reaps
  // closed connections); the states_ entry is erased on close, so its
  // presence guarantees conn_ptr is alive and open.
  // quicsim exposes no peer address, so the context carries client 0; the
  // overload bench drives the tier over UDP/TCP/DoT/DoH only.
  const QueryContext context{0, Transport::kDoq};
  handler_.handle(query, context,
                  [this, conn_ptr, stream_id](dns::Message response) {
                    if (states_.find(conn_ptr) == states_.end()) return;
                    const dns::Bytes wire = response.encode();
                    dns::ByteWriter framed;
                    framed.u16(static_cast<std::uint16_t>(wire.size()));
                    framed.bytes(wire);
                    conn_ptr->send_stream(stream_id, framed.take(),
                                          /*fin=*/true);
                  });
}

}  // namespace dohperf::resolver
