#include "resolver/recursive_tier.hpp"

#include <string>

#include "obs/registry.hpp"

namespace dohperf::resolver {

namespace {

const char* shed_metric(int reason) {
  switch (reason) {
    case 0: return "tier.shed.queue_full";
    case 1: return "tier.shed.deadline";
    case 2: return "tier.shed.admission";
    case 3: return "tier.shed.fairness";
    case 4: return "tier.shed.retry_budget";
  }
  return "tier.shed.other";
}

const char* shed_reason_name(int reason) {
  switch (reason) {
    case 0: return "queue_full";
    case 1: return "deadline";
    case 2: return "admission";
    case 3: return "fairness";
    case 4: return "retry_budget";
  }
  return "other";
}

}  // namespace

RecursiveTier::RecursiveTier(simnet::EventLoop& loop, QueryHandler& upstream,
                             TierConfig config)
    : loop_(loop), upstream_(upstream), config_(std::move(config)) {
  if (config_.admission_enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_.fairness_enabled) {
    fairness_ = std::make_unique<FairnessArbiter>(config_.fairness);
  }
  if (config_.retry_budget_enabled) {
    retry_budget_ = std::make_unique<RetryBudget>(config_.retry_ratio_permille,
                                                  config_.retry_reserve_milli,
                                                  config_.retry_cap_milli);
  }
}

void RecursiveTier::count(obs::MetricId id, std::uint64_t delta) {
  if (config_.obs.metrics != nullptr) config_.obs.metrics->add(id, delta);
}

void RecursiveTier::set_gauge(obs::MetricId id, std::int64_t value) {
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->set_gauge(id, value);
  }
}

void RecursiveTier::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_requests_ = r->register_counter("tier.requests");
  for (int t = 0; t < 5; ++t) {
    m_requests_transport_[t] = r->register_counter(
        std::string("tier.requests.") +
        transport_name(static_cast<Transport>(t)));
  }
  m_served_ = r->register_counter("tier.served");
  m_cache_hits_ = r->register_counter("tier.cache_hits");
  m_cache_misses_ = r->register_counter("tier.cache_misses");
  m_cache_evictions_ = r->register_counter("tier.cache_evictions");
  m_retries_detected_ = r->register_counter("tier.retries_detected");
  m_coalesced_ = r->register_counter("tier.coalesced");
  m_upstream_timeouts_ = r->register_counter("tier.upstream_timeouts");
  m_fairness_admitted_ = r->register_counter("fairness.admitted");
  m_fairness_throttled_ = r->register_counter("fairness.throttled");
  for (int s = 0; s < 5; ++s) {
    m_shed_[s] = r->register_counter(shed_metric(s));
  }
  m_queue_depth_ = r->register_gauge("tier.queue_depth");
  m_inflight_ = r->register_gauge("tier.inflight");
  m_admission_limit_ = r->register_gauge("tier.admission_limit");
  m_latency_ms_ = r->register_histogram("tier.latency_ms");
  m_queue_wait_ms_ = r->register_histogram("tier.queue_wait_ms");
}

void RecursiveTier::shed(const dns::Message& query,
                         const QueryContext& context, Continuation done,
                         ShedReason reason) {
  const int r = static_cast<int>(reason);
  switch (reason) {
    case ShedReason::kQueueFull: ++stats_.shed_queue_full; break;
    case ShedReason::kDeadline: ++stats_.shed_deadline; break;
    case ShedReason::kAdmission: ++stats_.shed_admission; break;
    case ShedReason::kFairness: ++stats_.shed_fairness; break;
    case ShedReason::kRetryBudget: ++stats_.shed_retry_budget; break;
  }
  count(m_shed_[r]);
  ++stats_.per_client[context.client].shed;
  if (config_.obs) {
    const obs::SpanId span = config_.obs.begin("shed");
    config_.obs.set_attr(span, "reason", std::string(shed_reason_name(r)));
    config_.obs.set_attr(span, "client",
                         static_cast<std::int64_t>(context.client));
    config_.obs.set_attr(span, "transport",
                         std::string(transport_name(context.transport)));
    config_.obs.end(span);
  }
  dns::Message error = dns::Message::make_error(
      query, config_.shed_refused ? dns::Rcode::kRefused
                                  : dns::Rcode::kServFail);
  // Always answer asynchronously so front-ends never see re-entrant
  // completions (matches the engine's scheduling contract).
  loop_.schedule_in(0, [done = std::move(done),
                        error = std::move(error)]() mutable {
    done(std::move(error));
  });
}

void RecursiveTier::deliver(Job& job, const dns::Message& response) {
  dns::Message copy = response;
  copy.id = job.query.id;
  ++stats_.served;
  ++stats_.per_client[job.context.client].served;
  count(m_served_);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->observe(m_latency_ms_,
                                 simnet::to_ms(loop_.now() - job.arrived));
  }
  job.done(std::move(copy));
}

std::optional<dns::Message> RecursiveTier::cache_lookup(
    const Key& key, const dns::Message& query) {
  if (!config_.cache_enabled) return std::nullopt;
  const auto it = cache_.find(key);
  if (it == cache_.end() || it->second.expires <= loop_.now()) {
    return std::nullopt;
  }
  dns::Message copy = it->second.response;
  copy.id = query.id;
  return copy;
}

void RecursiveTier::cache_insert(const Key& key,
                                 const dns::Message& response) {
  if (!config_.cache_enabled) return;
  const dns::Rcode rcode = response.flags.rcode;
  if (rcode != dns::Rcode::kNoError && rcode != dns::Rcode::kNxDomain) {
    return;  // never cache SERVFAIL/REFUSED (including our own sheds)
  }
  // TTL: minimum over answer records; negative answers use the SOA MINIMUM
  // rule of RFC 2308. No TTL source => uncacheable.
  std::uint32_t ttl = 0;
  bool have_ttl = false;
  for (const auto& rr : response.answers) {
    ttl = have_ttl ? std::min(ttl, rr.ttl) : rr.ttl;
    have_ttl = true;
  }
  if (!have_ttl) {
    for (const auto& rr : response.authorities) {
      if (rr.type != dns::RType::kSOA) continue;
      const auto& soa = std::get<dns::SoaRdata>(rr.rdata);
      ttl = std::min(rr.ttl, soa.minimum);
      have_ttl = true;
      break;
    }
  }
  if (!have_ttl || ttl == 0) return;
  if (cache_.find(key) == cache_.end() &&
      cache_.size() >= config_.cache_entries) {
    // Evict the earliest-expiring entry (ties break on key order — both
    // deterministic). Linear scan; population caches stay small.
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.expires < victim->second.expires) victim = it;
    }
    cache_.erase(victim);
    ++stats_.cache_evictions;
    count(m_cache_evictions_);
  }
  cache_[key] = CacheEntry{response, loop_.now() + simnet::seconds(ttl)};
  ++stats_.cache_insertions;
}

bool RecursiveTier::detect_retry(const Key& key,
                                 const QueryContext& context) {
  const simnet::TimeUs now = loop_.now();
  if (--seen_prune_countdown_ == 0) {
    seen_prune_countdown_ = 256;
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (now - it->second > config_.retry_window) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const auto seen_key = std::make_pair(context.client, key);
  const auto it = seen_.find(seen_key);
  const bool retry =
      it != seen_.end() && now - it->second <= config_.retry_window;
  seen_[seen_key] = now;
  return retry;
}

void RecursiveTier::handle(const dns::Message& query,
                           const QueryContext& context, Continuation done) {
  ++stats_.requests;
  ++stats_.per_client[context.client].requests;
  bind_obs_ids();
  count(m_requests_);
  count(m_requests_transport_[static_cast<std::size_t>(context.transport)]);

  obs::SpanId span = 0;
  if (config_.obs) {
    span = config_.obs.begin("admission_check");
    config_.obs.set_attr(span, "client",
                         static_cast<std::int64_t>(context.client));
    config_.obs.set_attr(span, "transport",
                         std::string(transport_name(context.transport)));
  }
  const auto decide = [&](const char* decision) {
    if (span != 0) {
      config_.obs.set_attr(span, "decision", std::string(decision));
      config_.obs.end(span);
    }
  };

  if (query.questions.empty()) {
    decide("formerr");
    dns::Message error = dns::Message::make_error(query, dns::Rcode::kFormErr);
    loop_.schedule_in(0, [done = std::move(done),
                          error = std::move(error)]() mutable {
      done(std::move(error));
    });
    return;
  }
  const Key key{query.questions.front().qname,
                query.questions.front().qtype};

  // 1. Per-client fairness. Hits consume worker time too, so the arbiter
  //    sees every request, not just misses.
  if (fairness_) {
    const bool admitted = fairness_->admit(context.client, loop_.now());
    count(admitted ? m_fairness_admitted_ : m_fairness_throttled_);
    if (!admitted) {
      decide("shed_fairness");
      shed(query, context, std::move(done), ShedReason::kFairness);
      return;
    }
  }

  Job job;
  job.query = query;
  job.context = context;
  job.done = std::move(done);
  job.arrived = loop_.now();

  // 2. Shared cache; hits still queue for a worker (hit_processing).
  job.cached = cache_lookup(key, query);
  if (job.cached.has_value()) {
    ++stats_.cache_hits;
    count(m_cache_hits_);
    decide("hit");
  } else {
    ++stats_.cache_misses;
    count(m_cache_misses_);
    // 3. Retry budget, misses only: a repeat (client, name, type) among
    //    misses inside retry_window is a retransmission/re-issue — the
    //    original is still queued/in flight, or was shed/failed (a repeat
    //    of an *answered* query would have hit the cache, so hot names do
    //    not false-positive as long as retry_window < TTL). A detected
    //    retry must withdraw from the shared budget; shedding it here,
    //    before it can occupy a slot, is what breaks the storm.
    if (retry_budget_) {
      if (detect_retry(key, context)) {
        ++stats_.retries_detected;
        count(m_retries_detected_);
        if (!retry_budget_->try_withdraw()) {
          decide("shed_retry_budget");
          shed(job.query, job.context, std::move(job.done),
               ShedReason::kRetryBudget);
          return;
        }
      } else {
        retry_budget_->deposit();
      }
    }
    // 4. Coalesce onto an in-flight resolution of the same (name, type):
    //    joiners wait for the answer without consuming a service slot.
    if (config_.coalesce) {
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        ++stats_.coalesced;
        count(m_coalesced_);
        decide("coalesced");
        it->second.waiters.push_back(std::move(job));
        return;
      }
    }
    decide("admitted");
  }

  // 5. Admission controller: bound outstanding work (queued + in flight).
  if (admission_ && queue_.size() + inflight_ >= admission_->limit()) {
    shed(job.query, job.context, std::move(job.done),
         ShedReason::kAdmission);
    return;
  }

  // 6. Hard queue bound.
  if (config_.bound_queue && queue_.size() >= config_.queue_capacity) {
    shed(job.query, job.context, std::move(job.done),
         ShedReason::kQueueFull);
    return;
  }

  queue_.push_back(std::move(job));
  if (queue_.size() > stats_.queue_peak) stats_.queue_peak = queue_.size();
  set_gauge(m_queue_depth_, static_cast<std::int64_t>(queue_.size()));
  pump();
}

void RecursiveTier::pump() {
  while (inflight_ < config_.workers && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    set_gauge(m_queue_depth_, static_cast<std::int64_t>(queue_.size()));
    const simnet::TimeUs waited = loop_.now() - job.arrived;
    // Deadline-aware shedding: if the client has (probably) given up by the
    // time service would finish, answering is wasted work.
    if (config_.deadline > 0 &&
        waited + config_.expected_service > config_.deadline) {
      shed(job.query, job.context, std::move(job.done),
           ShedReason::kDeadline);
      continue;
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->observe(m_queue_wait_ms_, simnet::to_ms(waited));
    }
    dispatch(std::move(job));
  }
  if (admission_) {
    set_gauge(m_admission_limit_,
              static_cast<std::int64_t>(admission_->limit()));
  }
}

void RecursiveTier::dispatch(Job job) {
  ++inflight_;
  if (inflight_ > stats_.inflight_peak) stats_.inflight_peak = inflight_;
  set_gauge(m_inflight_, static_cast<std::int64_t>(inflight_));

  if (job.cached.has_value()) {
    // Serve from cache after the hit-processing cost; the slot is held for
    // that long, which is what makes hits part of the capacity model.
    loop_.schedule_in(config_.hit_processing, [this, job = std::move(job)]()
                          mutable {
      if (admission_) admission_->record(loop_.now() - job.arrived);
      deliver(job, *job.cached);
      --inflight_;
      set_gauge(m_inflight_, static_cast<std::int64_t>(inflight_));
      pump();
    });
    return;
  }

  const Key key{job.query.questions.front().qname,
                job.query.questions.front().qtype};
  auto& pending = pending_[key];
  pending.settled = std::make_shared<bool>(false);
  const std::shared_ptr<bool> settled = pending.settled;
  const dns::Message query = job.query;
  const QueryContext context = job.context;
  pending.waiters.push_back(std::move(job));

  if (config_.service_timeout > 0) {
    loop_.schedule_in(config_.service_timeout, [this, key, settled]() {
      if (*settled) return;
      ++stats_.upstream_timeouts;
      count(m_upstream_timeouts_);
      dns::Message timeout_error;
      // Synthesize SERVFAIL from the first waiter's query below.
      complete(key, std::move(timeout_error), /*timed_out=*/true);
    });
  }

  upstream_.handle(query, context,
                   [this, key, settled](dns::Message response) {
                     if (*settled) return;  // timeout already reclaimed slot
                     complete(key, std::move(response), /*timed_out=*/false);
                   });
}

void RecursiveTier::complete(const Key& key, dns::Message response,
                             bool timed_out) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  *pending.settled = true;

  if (timed_out) {
    response = dns::Message::make_error(pending.waiters.front().query,
                                        dns::Rcode::kServFail);
  } else {
    cache_insert(key, response);
  }
  if (admission_ && !pending.waiters.empty()) {
    // One sample per back-end round trip, from the dispatching job.
    admission_->record(loop_.now() - pending.waiters.front().arrived);
  }
  for (auto& waiter : pending.waiters) {
    deliver(waiter, response);
  }
  --inflight_;
  set_gauge(m_inflight_, static_cast<std::int64_t>(inflight_));
  pump();
}

}  // namespace dohperf::resolver
