// The seam between transport front-ends and resolution back-ends: every
// server (UDP/TCP/DoT/DoH/DoQ) hands decoded queries to a QueryHandler and
// forwards whatever response comes back. resolver::Engine implements it
// directly; resolver::RecursiveTier wraps an Engine with a shared cache and
// overload control and implements the same interface, so front-ends are
// oblivious to whether they talk to a bare engine or the full tier.
#pragma once

#include <cstdint>
#include <functional>

#include "dns/message.hpp"

namespace dohperf::resolver {

/// Transport the query arrived over; the tier keys per-transport metrics
/// (and the DoH-vs-UDP server-cost comparison) off this tag.
enum class Transport : std::uint8_t { kUdp, kTcp, kDot, kDoh, kDoq };

inline const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kUdp: return "udp";
    case Transport::kTcp: return "tcp";
    case Transport::kDot: return "dot";
    case Transport::kDoh: return "doh";
    case Transport::kDoq: return "doq";
  }
  return "unknown";
}

/// Per-query request context the front-end attaches: which simulated client
/// sent it (the peer node id) and over which transport. Overload control
/// uses `client` for fairness and retry-storm detection.
struct QueryContext {
  std::uint64_t client = 0;  ///< simnet::NodeId of the requesting peer
  Transport transport = Transport::kUdp;
};

class QueryHandler {
 public:
  using Continuation = std::function<void(dns::Message response)>;

  virtual ~QueryHandler() = default;

  /// Handle `query`; `done` fires later on the event loop with the
  /// response. Implementations may shed: the continuation then receives a
  /// REFUSED/SERVFAIL answer instead of a resolution.
  virtual void handle(const dns::Message& query, const QueryContext& context,
                      Continuation done) = 0;
};

}  // namespace dohperf::resolver
