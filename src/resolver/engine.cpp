#include "resolver/engine.hpp"

#include <cmath>

#include "obs/registry.hpp"

namespace dohperf::resolver {

Engine::Engine(simnet::EventLoop& loop, EngineConfig config)
    : loop_(loop), config_(std::move(config)),
      upstream_latency_(std::log(config_.upstream.upstream_mu_ms),
                        config_.upstream.upstream_sigma, config_.seed),
      cache_rng_(config_.seed ^ 0x9e3779b97f4a7c15ULL),
      fault_rng_(config_.seed ^ 0xc2b2ae3d27d4eb4fULL) {}

void Engine::add_record(const dns::Name& name, const std::string& address) {
  zone_[name] = address;
}

void Engine::add_nxdomain(const dns::Name& name) {
  nxdomain_[name] = true;
}

dns::ResourceRecord Engine::soa_record(const dns::Name& qname) const {
  dns::SoaRdata soa;
  const dns::Name zone =
      qname.label_count() > 1 ? qname.parent() : qname;
  soa.mname = zone.child("ns1");
  soa.rname = zone.child("hostmaster");
  soa.serial = 1;
  soa.refresh = 3600;
  soa.retry = 600;
  soa.expire = 86400;
  soa.minimum = config_.soa_minimum;
  return dns::ResourceRecord{zone, dns::RType::kSOA, dns::RClass::kIN,
                             config_.ttl, soa};
}

dns::Message Engine::answer(const dns::Message& query) const {
  if (query.questions.empty()) {
    return dns::Message::make_error(query, dns::Rcode::kFormErr);
  }
  const auto& q = query.questions.front();
  if (nxdomain_.find(q.qname) != nxdomain_.end()) {
    // RFC 2308: negative responses carry the zone SOA in the authority
    // section so resolvers can derive a negative-cache TTL.
    dns::Message response =
        dns::Message::make_error(query, dns::Rcode::kNxDomain);
    response.authorities.push_back(soa_record(q.qname));
    return response;
  }
  if (q.qtype != dns::RType::kA) {
    // Only A queries are exercised by the experiments; others answer
    // NODATA (NOERROR, no answers) with the SOA negative caching needs.
    dns::Message response = dns::Message::make_response(query, {});
    response.authorities.push_back(soa_record(q.qname));
    return response;
  }
  const auto it = zone_.find(q.qname);
  const std::string& address =
      it != zone_.end() ? it->second : config_.fixed_address;
  std::vector<dns::ResourceRecord> answers;
  dns::ARdata rdata = dns::ARdata::parse(address);
  for (int i = 0; i < std::max(1, config_.answer_count); ++i) {
    answers.push_back(dns::ResourceRecord{q.qname, dns::RType::kA,
                                          dns::RClass::kIN, config_.ttl,
                                          rdata});
    // Subsequent records advertise adjacent addresses.
    rdata.addr[3] = static_cast<std::uint8_t>(rdata.addr[3] + 1);
  }
  dns::Message response = dns::Message::make_response(query, std::move(answers));
  if (config_.ecs_option && !response.additionals.empty()) {
    for (auto& rr : response.additionals) {
      if (rr.type != dns::RType::kOPT) continue;
      auto& opt = std::get<dns::OptRdata>(rr.rdata);
      dns::EdnsOption ecs;
      ecs.code = 8;  // RFC 7871 CLIENT-SUBNET
      ecs.data = dns::Bytes{0x00, 0x01, 0x18, 0x00, 0xc0, 0x00, 0x02};
      opt.options.push_back(std::move(ecs));
    }
  }
  return response;
}

simnet::TimeUs Engine::next_service_time() {
  simnet::TimeUs t = config_.upstream.processing;
  if (config_.upstream.cache_hit_ratio < 1.0 &&
      cache_rng_.next_double() >= config_.upstream.cache_hit_ratio) {
    ++stats_.cache_misses;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_cache_misses_);
    }
    t += simnet::from_sec(upstream_latency_.sample() / 1e3);
  }
  return t;
}

void Engine::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_queries_ = r->register_counter("engine.queries");
  m_delayed_ = r->register_counter("engine.delayed");
  m_cache_misses_ = r->register_counter("engine.cache_misses");
  m_stalled_ = r->register_counter("engine.stalled");
  m_servfail_injected_ = r->register_counter("engine.servfail_injected");
  m_refused_injected_ = r->register_counter("engine.refused_injected");
  m_negative_answers_ = r->register_counter("engine.negative_answers");
}

void Engine::handle(const dns::Message& query, const QueryContext& context,
                    Continuation done) {
  (void)context;  // policy-free back-end: the tier consumes the context
  ++stats_.queries;
  bind_obs_ids();
  obs::Registry* metrics = config_.obs.metrics;
  if (metrics != nullptr) metrics->add(m_queries_);
  simnet::TimeUs service = next_service_time();
  const auto& dp = config_.delay_policy;
  if (dp.every_n > 0 && stats_.queries % dp.every_n == 0) {
    ++stats_.delayed;
    if (metrics != nullptr) metrics->add(m_delayed_);
    service += dp.delay;
  }

  // Fault injection: one uniform draw decides among stall / SERVFAIL /
  // REFUSED so the rates partition [0, 1) and compose predictably.
  const auto& fp = config_.faults;
  if (fp.stall_rate > 0.0 || fp.servfail_rate > 0.0 ||
      fp.refused_rate > 0.0) {
    const double u = fault_rng_.next_double();
    if (u < fp.stall_rate) {
      ++stats_.stalled;
      if (metrics != nullptr) metrics->add(m_stalled_);
      return;  // accept-then-never-answer: the continuation is dropped
    }
    if (u < fp.stall_rate + fp.servfail_rate) {
      ++stats_.injected_servfail;
      if (metrics != nullptr) metrics->add(m_servfail_injected_);
      dns::Message error = dns::Message::make_error(query, dns::Rcode::kServFail);
      loop_.schedule_in(service, [done = std::move(done),
                                  error = std::move(error)]() mutable {
        done(std::move(error));
      });
      return;
    }
    if (u < fp.stall_rate + fp.servfail_rate + fp.refused_rate) {
      ++stats_.injected_refused;
      if (metrics != nullptr) metrics->add(m_refused_injected_);
      dns::Message error = dns::Message::make_error(query, dns::Rcode::kRefused);
      loop_.schedule_in(service, [done = std::move(done),
                                  error = std::move(error)]() mutable {
        done(std::move(error));
      });
      return;
    }
  }

  dns::Message response = answer(query);
  if (response.flags.rcode == dns::Rcode::kNxDomain ||
      (response.flags.rcode == dns::Rcode::kNoError &&
       response.answers.empty() && !response.questions.empty())) {
    ++stats_.negative_answers;
    if (metrics != nullptr) metrics->add(m_negative_answers_);
  }
  loop_.schedule_in(service, [done = std::move(done),
                              response = std::move(response)]() mutable {
    done(std::move(response));
  });
}

}  // namespace dohperf::resolver
