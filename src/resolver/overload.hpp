// Overload-control building blocks for the recursive tier, written as pure
// deterministic units (integer milli-token arithmetic, virtual time only)
// so they can be tested against exact trajectories:
//
//   * TokenBucket          — classic leaky bucket in milli-tokens; the
//                            per-client fairness primitive.
//   * AdmissionController  — gradient/AIMD concurrency limit driven by the
//                            observed request latency versus the best
//                            (uncontended) latency seen so far.
//   * RetryBudget          — Finagle-style server-side retry budget: each
//                            first-try request deposits a fraction of a
//                            token, each detected retry withdraws a whole
//                            one; an exhausted budget sheds the retry and
//                            breaks the storm.
//   * FairnessArbiter      — a TokenBucket per client with deterministic
//                            per-client accounting.
#pragma once

#include <cstdint>
#include <map>

#include "simnet/time.hpp"

namespace dohperf::resolver {

/// Milli-token bucket: `rate_milli` tokens-per-second (x1000) refill up to
/// `burst_milli` capacity; one request normally costs 1000 milli-tokens.
/// All arithmetic is integral — the fractional refill remainder is carried
/// in `acc_` so long runs accrue no rounding drift.
class TokenBucket {
 public:
  TokenBucket(std::uint64_t rate_milli, std::uint64_t burst_milli)
      : rate_milli_(rate_milli), burst_milli_(burst_milli),
        balance_milli_(burst_milli) {}

  /// Take `cost_milli` tokens if available. `now` must be monotone.
  bool try_take(simnet::TimeUs now, std::uint64_t cost_milli = 1000) {
    refill(now);
    if (balance_milli_ < cost_milli) return false;
    balance_milli_ -= cost_milli;
    return true;
  }

  std::uint64_t balance_milli(simnet::TimeUs now) {
    refill(now);
    return balance_milli_;
  }

 private:
  void refill(simnet::TimeUs now) {
    if (now <= last_) return;
    acc_ += static_cast<std::uint64_t>(now - last_) * rate_milli_;
    last_ = now;
    balance_milli_ += acc_ / simnet::kUsPerSec;
    acc_ %= simnet::kUsPerSec;
    if (balance_milli_ >= burst_milli_) {
      balance_milli_ = burst_milli_;
      acc_ = 0;  // a full bucket holds no fractional credit
    }
  }

  std::uint64_t rate_milli_;
  std::uint64_t burst_milli_;
  std::uint64_t balance_milli_;
  std::uint64_t acc_ = 0;  ///< fractional refill remainder, in milli·us
  simnet::TimeUs last_ = 0;
};

/// Gradient/AIMD concurrency limit. The controller watches per-request
/// latency (queue wait + service) and compares a window average against the
/// best sample ever observed — the uncontended baseline. When the average
/// inflates past `inflate_permille`/1000 x best, queueing is building up:
/// multiplicative decrease. Otherwise: additive increase. The limit bounds
/// the tier's outstanding work (queued + in flight).
struct AdmissionConfig {
  std::size_t min_limit = 4;
  std::size_t max_limit = 1024;
  std::size_t initial_limit = 64;
  std::size_t window = 16;                 ///< samples per adjustment
  std::uint32_t inflate_permille = 2000;   ///< avg > best*2.0 => congested
  std::uint32_t decrease_permille = 800;   ///< limit *= 0.8 on congestion
  std::size_t increase_step = 1;           ///< +1 when healthy
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(config), limit_(config.initial_limit) {}

  std::size_t limit() const noexcept { return limit_; }
  simnet::TimeUs best_latency() const noexcept { return best_; }
  std::uint64_t decreases() const noexcept { return decreases_; }
  std::uint64_t increases() const noexcept { return increases_; }

  /// Record one completed request's total latency (wait + service).
  void record(simnet::TimeUs latency) {
    if (latency < 0) latency = 0;
    if (best_ == 0 || latency < best_) best_ = latency;
    window_sum_ += latency;
    if (++window_count_ < config_.window) return;
    const std::uint64_t avg =
        static_cast<std::uint64_t>(window_sum_) / config_.window;
    window_sum_ = 0;
    window_count_ = 0;
    const std::uint64_t threshold =
        static_cast<std::uint64_t>(best_) * config_.inflate_permille / 1000;
    if (avg > threshold) {
      ++decreases_;
      limit_ = limit_ * config_.decrease_permille / 1000;
      if (limit_ < config_.min_limit) limit_ = config_.min_limit;
    } else {
      ++increases_;
      limit_ += config_.increase_step;
      if (limit_ > config_.max_limit) limit_ = config_.max_limit;
    }
  }

 private:
  AdmissionConfig config_;
  std::size_t limit_;
  simnet::TimeUs best_ = 0;  ///< minimum latency ever seen (0 = none yet)
  simnet::TimeUs window_sum_ = 0;
  std::size_t window_count_ = 0;
  std::uint64_t decreases_ = 0;
  std::uint64_t increases_ = 0;
};

/// Server-side retry budget (the mechanism Finagle popularised): every
/// first-try request deposits `ratio_permille` milli-tokens, every detected
/// retry must withdraw 1000. While retries stay under ratio_permille/1000
/// of fresh traffic the budget never empties; a storm drains it and the
/// excess retries are shed before they consume service capacity.
class RetryBudget {
 public:
  RetryBudget(std::uint32_t ratio_permille, std::uint64_t reserve_milli,
              std::uint64_t cap_milli)
      : ratio_permille_(ratio_permille), cap_milli_(cap_milli),
        balance_milli_(reserve_milli < cap_milli ? reserve_milli : cap_milli) {}

  void deposit() {
    balance_milli_ += ratio_permille_;
    if (balance_milli_ > cap_milli_) balance_milli_ = cap_milli_;
  }

  bool try_withdraw() {
    if (balance_milli_ < 1000) return false;
    balance_milli_ -= 1000;
    return true;
  }

  std::uint64_t balance_milli() const noexcept { return balance_milli_; }

 private:
  std::uint32_t ratio_permille_;
  std::uint64_t cap_milli_;
  std::uint64_t balance_milli_;
};

/// Per-client token buckets with admitted/throttled accounting. Clients are
/// keyed by simnet node id in an ordered map so iteration (and therefore
/// any derived report) is deterministic.
struct FairnessConfig {
  std::uint64_t rate_milli = 0;   ///< per-client tokens/s x1000 (0 = off)
  std::uint64_t burst_milli = 0;  ///< per-client burst capacity x1000
};

class FairnessArbiter {
 public:
  struct ClientShare {
    std::uint64_t admitted = 0;
    std::uint64_t throttled = 0;
  };

  explicit FairnessArbiter(FairnessConfig config) : config_(config) {}

  /// True when `client` may proceed at `now`; false counts as throttled.
  bool admit(std::uint64_t client, simnet::TimeUs now) {
    auto [it, inserted] = buckets_.try_emplace(
        client, TokenBucket(config_.rate_milli, config_.burst_milli));
    auto& share = shares_[client];
    if (it->second.try_take(now)) {
      ++share.admitted;
      return true;
    }
    ++share.throttled;
    return false;
  }

  const std::map<std::uint64_t, ClientShare>& shares() const noexcept {
    return shares_;
  }

 private:
  FairnessConfig config_;
  std::map<std::uint64_t, TokenBucket> buckets_;
  std::map<std::uint64_t, ClientShare> shares_;
};

}  // namespace dohperf::resolver
