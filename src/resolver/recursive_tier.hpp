// The shared recursive tier: one resolver serving a whole simulated client
// population across every transport front-end. Wraps a back-end
// QueryHandler (normally resolver::Engine) with:
//
//   * a shared positive/negative cache with TTL-driven hit-rate dynamics
//     (cache hits still consume worker time — `hit_processing` — so the
//     tier saturates realistically under load);
//   * request coalescing: concurrent misses for one (name, type) join the
//     in-flight resolution instead of each occupying a worker;
//   * a bounded FIFO request queue in front of `workers` service slots,
//     with deadline-aware shedding at dequeue (a request whose remaining
//     client budget cannot cover the expected service time is answered
//     REFUSED instead of wasting a slot);
//   * a gradient/AIMD admission controller bounding outstanding work;
//   * per-client token-bucket fairness (one hot tenant cannot starve the
//     population);
//   * a server-side retry budget: retransmissions/re-issues detected by
//     (client, name, type) recurrence *among cache misses* within
//     `retry_window` withdraw from a Finagle-style budget and are shed once
//     it empties, breaking retry-storm metastability. (A repeat of an
//     answered query is a cache hit, so hot names do not false-positive
//     while retry_window stays below the TTL.)
//
// Shedding answers REFUSED by default (RFC 1035 "server refuses to
// perform"), which clients must not treat as a resolution — the resilience
// stack never caches it and the circuit breaker counts it as unhealthy.
//
// Metric-name contract (EXPERIMENTS.md "Observability"): tier.requests[.*],
// tier.cache_hits/misses, tier.coalesced, tier.served, tier.shed.*,
// tier.retries_detected, gauges tier.queue_depth / tier.inflight /
// tier.admission_limit, histograms tier.queue_wait_ms / tier.latency_ms,
// fairness.admitted / fairness.throttled; spans `admission_check` / `shed`.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dns/message.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resolver/overload.hpp"
#include "resolver/query_handler.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::resolver {

struct TierConfig {
  std::size_t workers = 4;  ///< concurrent service slots

  // --- shared cache -------------------------------------------------------
  bool cache_enabled = true;
  std::size_t cache_entries = 65536;  ///< evict earliest-expiring beyond this
  /// Worker time a cache hit costs (decode, lookup, encode). Non-zero so
  /// saturation physics include the hit path.
  simnet::TimeUs hit_processing = simnet::us(500);
  bool coalesce = true;  ///< join concurrent misses for one (name, type)

  // --- queue bounds + deadline shedding -----------------------------------
  bool bound_queue = false;
  std::size_t queue_capacity = 512;
  /// Assumed client patience. At dequeue, a request older than
  /// `deadline - expected_service` is shed (it cannot be answered in time).
  /// 0 disables deadline-aware shedding.
  simnet::TimeUs deadline = 0;
  simnet::TimeUs expected_service = simnet::ms(5);

  // --- admission control --------------------------------------------------
  bool admission_enabled = false;
  AdmissionConfig admission;

  // --- per-client fairness ------------------------------------------------
  bool fairness_enabled = false;
  FairnessConfig fairness;

  // --- server-side retry budget -------------------------------------------
  bool retry_budget_enabled = false;
  std::uint32_t retry_ratio_permille = 100;  ///< budget grows 10% of fresh
  std::uint64_t retry_reserve_milli = 10000;  ///< cold-start allowance
  std::uint64_t retry_cap_milli = 100000;
  simnet::TimeUs retry_window = simnet::seconds(2);

  /// Guard against a back-end that never answers (e.g. engine stall
  /// faults): after this long the slot is reclaimed and waiters get
  /// SERVFAIL. 0 disables.
  simnet::TimeUs service_timeout = 0;

  /// Shed with REFUSED (default) or SERVFAIL.
  bool shed_refused = true;

  obs::SpanContext obs;
};

struct TierClientStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
};

struct TierStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;  ///< answered by cache or back-end (not shed)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t retries_detected = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_fairness = 0;
  std::uint64_t shed_retry_budget = 0;
  std::uint64_t upstream_timeouts = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t queue_peak = 0;
  std::uint64_t inflight_peak = 0;
  std::map<std::uint64_t, TierClientStats> per_client;

  std::uint64_t sheds() const noexcept {
    return shed_queue_full + shed_deadline + shed_admission + shed_fairness +
           shed_retry_budget;
  }
};

class RecursiveTier final : public QueryHandler {
 public:
  /// `upstream` (normally an Engine) must outlive the tier.
  RecursiveTier(simnet::EventLoop& loop, QueryHandler& upstream,
                TierConfig config);

  void handle(const dns::Message& query, const QueryContext& context,
              Continuation done) override;

  const TierStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  std::size_t inflight() const noexcept { return inflight_; }
  /// Current admission limit (config initial value when disabled).
  std::size_t admission_limit() const noexcept {
    return admission_ ? admission_->limit() : config_.admission.initial_limit;
  }
  const FairnessArbiter* fairness() const noexcept { return fairness_.get(); }
  const RetryBudget* retry_budget() const noexcept {
    return retry_budget_.get();
  }

  /// Rebind the tracing/metrics sink (per-request sampling hands the tier a
  /// different context per query; metric handles re-bind automatically).
  void set_obs(const obs::SpanContext& obs) noexcept { config_.obs = obs; }

 private:
  using Key = std::pair<dns::Name, dns::RType>;

  enum class ShedReason {
    kQueueFull,
    kDeadline,
    kAdmission,
    kFairness,
    kRetryBudget,
  };

  struct Job {
    dns::Message query;
    QueryContext context;
    Continuation done;
    simnet::TimeUs arrived = 0;
    /// Cache hit captured at admission: answered after hit_processing
    /// without touching the back-end.
    std::optional<dns::Message> cached;
  };

  /// In-flight back-end resolution; `waiters` holds the dispatching job
  /// plus every coalesced joiner.
  struct Pending {
    std::vector<Job> waiters;
    std::shared_ptr<bool> settled;  ///< guards timeout vs completion race
  };

  void shed(const dns::Message& query, const QueryContext& context,
            Continuation done, ShedReason reason);
  void deliver(Job& job, const dns::Message& response);
  void pump();
  void dispatch(Job job);
  void complete(const Key& key, dns::Message response, bool timed_out);
  std::optional<dns::Message> cache_lookup(const Key& key,
                                           const dns::Message& query);
  void cache_insert(const Key& key, const dns::Message& response);
  /// True when the request is a retry (same client/name/type seen within
  /// retry_window). Updates the seen map either way.
  bool detect_retry(const Key& key, const QueryContext& context);
  void count(obs::MetricId id, std::uint64_t delta = 1);
  void set_gauge(obs::MetricId id, std::int64_t value);
  /// Re-register the tier.* / fairness.* handles when the registry changes.
  void bind_obs_ids();

  simnet::EventLoop& loop_;
  QueryHandler& upstream_;
  TierConfig config_;
  TierStats stats_;

  obs::Registry* bound_metrics_ = nullptr;
  obs::MetricId m_requests_;
  obs::MetricId m_requests_transport_[5];  ///< indexed by Transport
  obs::MetricId m_served_;
  obs::MetricId m_cache_hits_;
  obs::MetricId m_cache_misses_;
  obs::MetricId m_cache_evictions_;
  obs::MetricId m_retries_detected_;
  obs::MetricId m_coalesced_;
  obs::MetricId m_upstream_timeouts_;
  obs::MetricId m_fairness_admitted_;
  obs::MetricId m_fairness_throttled_;
  obs::MetricId m_shed_[5];  ///< indexed by ShedReason
  obs::MetricId m_queue_depth_;
  obs::MetricId m_inflight_;
  obs::MetricId m_admission_limit_;
  obs::MetricId m_latency_ms_;
  obs::MetricId m_queue_wait_ms_;

  std::deque<Job> queue_;
  std::size_t inflight_ = 0;
  std::map<Key, Pending> pending_;  ///< in-flight back-end resolutions

  struct CacheEntry {
    dns::Message response;
    simnet::TimeUs expires = 0;
  };
  std::map<Key, CacheEntry> cache_;

  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<FairnessArbiter> fairness_;
  std::unique_ptr<RetryBudget> retry_budget_;
  /// Last time each (client, name, type) was seen, for retry detection.
  std::map<std::pair<std::uint64_t, Key>, simnet::TimeUs> seen_;
  std::uint64_t seen_prune_countdown_ = 256;
};

}  // namespace dohperf::resolver
