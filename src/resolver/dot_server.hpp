// DNS-over-TLS front-end (RFC 7858): TLS on port 853, DNS messages framed
// with a two-byte length prefix.
//
// The ordering policy models the finding in §3: out-of-order responses are
// permitted by the RFC but require per-request state; of the public DoT
// deployments the paper checked, only Cloudflare implemented them. The
// default (in-order) therefore serializes responses in arrival order —
// which is exactly what produces DoT's head-of-line blocking in Figure 2.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "resolver/query_handler.hpp"
#include "simnet/host.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::resolver {

struct DotServerConfig {
  tlssim::ServerConfig tls;
  /// false (default): responses serialized in query order, like most
  /// 2019-era servers. true: respond as soon as ready (Cloudflare-style).
  bool out_of_order = false;
  /// Hardening: close on zero-length or oversized frames (see
  /// TcpDnsServerConfig::max_message_bytes).
  std::size_t max_message_bytes = 4096;
};

class DotServer {
 public:
  DotServer(simnet::Host& host, QueryHandler& handler, DotServerConfig config,
            std::uint16_t port = 853);
  ~DotServer();

  DotServer(const DotServer&) = delete;
  DotServer& operator=(const DotServer&) = delete;

  simnet::Address address() const { return {host_.id(), port_}; }
  std::size_t session_count() const noexcept { return sessions_.size(); }
  /// Connections dropped for unparseable or oversized frames.
  std::uint64_t malformed() const noexcept { return malformed_; }

  /// Simulate a crash + restart: RST every live connection and stop
  /// listening; the listener comes back after `downtime`.
  void restart(simnet::TimeUs downtime);
  bool listening() const noexcept { return listening_; }
  std::uint64_t restarts() const noexcept { return restarts_; }

 private:
  struct Session {
    std::unique_ptr<tlssim::TlsConnection> tls;
    std::weak_ptr<simnet::TcpConnection> tcp;  ///< for abortive restart
    simnet::Bytes rx;
    std::uint64_t next_assigned = 0;
    std::uint64_t next_to_send = 0;
    std::map<std::uint64_t, dns::Bytes> ready;  ///< in-order buffering
    bool dead = false;
    simnet::NodeId peer = 0;  ///< requesting client, for QueryContext
    std::weak_ptr<Session> self;  ///< for continuations that may outlive us
  };

  void listen();
  void on_accept(std::shared_ptr<simnet::TcpConnection> conn);
  void on_data(Session& session, std::span<const std::uint8_t> data);
  void answer(Session& session, std::uint64_t sequence, dns::Bytes wire);
  void prune();

  simnet::Host& host_;
  QueryHandler& handler_;
  DotServerConfig config_;
  std::uint16_t port_;
  std::uint64_t malformed_ = 0;
  bool listening_ = false;
  std::uint64_t restarts_ = 0;
  /// Guards the deferred re-listen against the server being destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<std::shared_ptr<Session>> sessions_;
};

}  // namespace dohperf::resolver
