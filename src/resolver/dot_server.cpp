#include "resolver/dot_server.hpp"

#include "simnet/stream.hpp"

namespace dohperf::resolver {

DotServer::DotServer(simnet::Host& host, QueryHandler& handler,
                     DotServerConfig config, std::uint16_t port)
    : host_(host), handler_(handler), config_(std::move(config)),
      port_(port) {
  listen();
}

DotServer::~DotServer() {
  *alive_ = false;
  if (listening_) host_.tcp_stop_listening(port_);
}

void DotServer::listen() {
  host_.tcp_listen(port_, [this](std::shared_ptr<simnet::TcpConnection> c) {
    on_accept(std::move(c));
  });
  listening_ = true;
}

void DotServer::restart(simnet::TimeUs downtime) {
  // Reset at the host level so connections still mid-handshake (not yet
  // delivered to on_accept) die with the crashed process too.
  host_.tcp_reset_port(port_);
  for (auto& session : sessions_) session->dead = true;
  prune();
  if (listening_) {
    host_.tcp_stop_listening(port_);
    listening_ = false;
  }
  ++restarts_;
  // The crashed process loses its session-ticket keys: tickets issued
  // before the restart must fall back to a full handshake.
  ++config_.tls.ticket_epoch;
  host_.loop().schedule_in(downtime,
                           [this, alive = std::weak_ptr<bool>(alive_)]() {
                             const auto a = alive.lock();
                             if (!a || !*a || listening_) return;
                             listen();
                           });
}

void DotServer::on_accept(std::shared_ptr<simnet::TcpConnection> conn) {
  prune();
  auto session = std::make_shared<Session>();
  Session* s = session.get();
  session->tcp = conn;
  session->peer = conn->remote().node;
  session->tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(std::move(conn)), &config_.tls);
  tlssim::TlsConnection::Handlers h;
  h.on_open = []() {};
  h.on_data = [this, s](std::span<const std::uint8_t> d) { on_data(*s, d); };
  h.on_close = [s]() { s->dead = true; };
  session->tls->set_handlers(std::move(h));
  session->self = session;
  sessions_.push_back(std::move(session));
}

void DotServer::on_data(Session& session, std::span<const std::uint8_t> data) {
  session.rx.insert(session.rx.end(), data.begin(), data.end());
  // RFC 7858 framing: u16 length prefix per DNS message.
  while (session.rx.size() >= 2) {
    const std::size_t len =
        (static_cast<std::size_t>(session.rx[0]) << 8) | session.rx[1];
    if (len == 0 || len > config_.max_message_bytes) {
      ++malformed_;
      session.tls->close();
      session.dead = true;
      return;
    }
    if (session.rx.size() < 2 + len) break;
    dns::Bytes wire(session.rx.begin() + 2,
                    session.rx.begin() + static_cast<std::ptrdiff_t>(2 + len));
    session.rx.erase(session.rx.begin(),
                     session.rx.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message query;
    try {
      query = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      ++malformed_;
      session.tls->close();
      session.dead = true;
      return;
    }
    const std::uint64_t sequence = session.next_assigned++;
    // The continuation may outlive the session (client closed meanwhile);
    // find the live session by address via the weak pointer.
    std::weak_ptr<Session> weak = session.self;
    const QueryContext context{session.peer, Transport::kDot};
    handler_.handle(query, context,
                    [this, weak, sequence](dns::Message response) {
                      if (const auto s = weak.lock()) {
                        answer(*s, sequence, response.encode());
                      }
                    });
  }
}

void DotServer::answer(Session& session, std::uint64_t sequence,
                       dns::Bytes wire) {
  if (session.dead) return;
  auto frame = [](const dns::Bytes& msg) {
    dns::ByteWriter w;
    w.u16(static_cast<std::uint16_t>(msg.size()));
    w.bytes(msg);
    return w.take();
  };
  if (config_.out_of_order) {
    session.tls->send(frame(wire));
    return;
  }
  // In-order: buffer until every earlier response has been sent. This is
  // the serialization that makes delayed queries block later ones (Fig 2).
  session.ready.emplace(sequence, std::move(wire));
  while (true) {
    const auto it = session.ready.find(session.next_to_send);
    if (it == session.ready.end()) break;
    session.tls->send(frame(it->second));
    session.ready.erase(it);
    ++session.next_to_send;
  }
}

void DotServer::prune() {
  std::erase_if(sessions_,
                [](const std::shared_ptr<Session>& s) { return s->dead; });
}

}  // namespace dohperf::resolver
