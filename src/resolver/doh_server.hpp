// DNS-over-HTTPS front-end (RFC 8484): TLS with ALPN on port 443, serving
// both HTTP/2 and HTTP/1.1 sessions. Supports:
//   * POST with application/dns-message bodies (RFC-mandated)
//   * GET with ?dns=<base64url> (RFC 8484 §4.1)
//   * GET with ?name=&type= returning application/dns-json
//     (the Google /resolve API shape, probed in Table 2)
// Paths and content types are configurable because the surveyed providers
// disagree on them (Table 1: /, /resolve, /dns-query, /family-filter).
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "http1/server.hpp"
#include "http2/connection.hpp"
#include "resolver/query_handler.hpp"
#include "simnet/host.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::resolver {

struct DohServerConfig {
  std::set<std::string> paths = {"/dns-query"};
  bool support_dns_message = true;
  bool support_dns_json = false;
  std::string server_header = "dohperf-resolver";
  /// Extra per-request latency of the HTTPS front-end: real DoH services
  /// terminate TLS at an edge proxy and hop to the resolver backend, which
  /// is why DoH resolution runs measurably slower than UDP to the same
  /// provider (§5). Zero for a co-located front-end.
  simnet::TimeUs frontend_delay = 0;
  tlssim::ServerConfig tls;
  /// Connection cap (0 = unlimited): accepting past the cap evicts the
  /// oldest-idle live session (RST) first — the standard defence against
  /// DoH's per-client connection-state cost.
  std::size_t max_sessions = 0;
  /// Hardening: request bodies beyond this answer 413 without resolving.
  std::size_t max_body_bytes = 4096;
};

/// A parsed-out DoH exchange, transport-agnostic (shared by h1 and h2).
struct DohExchange {
  std::string method;
  std::string path;          ///< path only, query string split off
  std::string query_string;  ///< after '?', possibly empty
  std::string accept;
  std::string content_type;
  dns::Bytes body;
};

struct DohResult {
  int status = 200;
  std::string content_type;
  dns::Bytes body;
};

class DohServer {
 public:
  DohServer(simnet::Host& host, QueryHandler& handler, DohServerConfig config,
            std::uint16_t port = 443);
  ~DohServer();

  DohServer(const DohServer&) = delete;
  DohServer& operator=(const DohServer&) = delete;

  simnet::Address address() const { return {host_.id(), port_}; }
  std::size_t session_count() const noexcept { return sessions_.size(); }
  /// High-water mark of concurrent sessions (the DoH server-state story).
  std::size_t peak_sessions() const noexcept { return peak_sessions_; }
  /// Sessions RST to make room under `max_sessions`.
  std::uint64_t evicted_sessions() const noexcept { return evicted_; }
  /// Requests rejected with 413 for oversized bodies.
  std::uint64_t oversized_bodies() const noexcept { return oversized_; }
  /// Modeled resident memory of the live sessions: per-connection TLS +
  /// HTTP state object sizes. UDP's equivalent is zero — this is the
  /// number the DoH-vs-UDP server-cost comparison reports.
  std::size_t memory_estimate_bytes() const noexcept;
  const DohServerConfig& config() const noexcept { return config_; }

  /// Simulate a crash + restart: RST every live connection and stop
  /// listening; the listener comes back after `downtime`. Clients see
  /// connection resets while down, then refused/reset connects until the
  /// restart completes.
  void restart(simnet::TimeUs downtime);
  bool listening() const noexcept { return listening_; }
  std::uint64_t restarts() const noexcept { return restarts_; }

 private:
  struct Session {
    tlssim::TlsConnection* tls = nullptr;  ///< owned by the HTTP layer below
    std::unique_ptr<tlssim::TlsConnection> tls_holder;  ///< until HTTP attach
    std::unique_ptr<http1::Http1ServerConnection> h1;
    std::unique_ptr<http2::Http2Connection> h2;
    std::weak_ptr<simnet::TcpConnection> tcp;  ///< for abortive restart
    bool dead = false;
    simnet::NodeId peer = 0;           ///< requesting client node
    simnet::TimeUs last_active = 0;    ///< accept or last request time
    std::weak_ptr<Session> self;
  };

  void listen();
  void on_accept(std::shared_ptr<simnet::TcpConnection> conn);
  void attach_http(const std::shared_ptr<Session>& session);
  /// Evict the oldest-idle session to get under `max_sessions`.
  void evict_oldest_idle();
  /// Validate + resolve one exchange, completing asynchronously.
  void process(const DohExchange& exchange, simnet::NodeId peer,
               std::function<void(DohResult)> done);
  void prune();

  simnet::Host& host_;
  QueryHandler& handler_;
  DohServerConfig config_;
  std::uint16_t port_;
  bool listening_ = false;
  std::uint64_t restarts_ = 0;
  std::size_t peak_sessions_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t oversized_ = 0;
  /// Guards the deferred re-listen against the server being destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<std::shared_ptr<Session>> sessions_;
};

/// Split "GET /dns-query?dns=..." style targets; exposed for tests.
std::pair<std::string, std::string> split_target(const std::string& target);

/// Parse "name=example.com&type=A" (returns empty name on failure).
std::pair<std::string, std::string> parse_json_query(
    const std::string& query_string);

}  // namespace dohperf::resolver
