#include "resolver/udp_server.hpp"

namespace dohperf::resolver {

UdpServer::UdpServer(simnet::Host& host, Engine& engine, std::uint16_t port)
    : host_(host), engine_(engine), socket_(&host.udp_open(port)) {
  socket_->set_receiver(
      [this](const simnet::Bytes& payload, simnet::Address from) {
        dns::Message query;
        try {
          query = dns::Message::decode(payload);
        } catch (const dns::WireError&) {
          ++malformed_;
          return;  // real servers drop unparseable datagrams
        }
        engine_.handle(query, [this, from](dns::Message response) {
          socket_->send_to(from, response.encode());
        });
      });
}

UdpServer::~UdpServer() { host_.udp_close(*socket_); }

}  // namespace dohperf::resolver
