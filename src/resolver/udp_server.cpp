#include "resolver/udp_server.hpp"

namespace dohperf::resolver {

UdpServer::UdpServer(simnet::Host& host, QueryHandler& handler,
                     std::uint16_t port)
    : host_(host), handler_(handler), socket_(&host.udp_open(port)) {
  socket_->set_receiver(
      [this](const simnet::Bytes& payload, simnet::Address from) {
        if (down_) {
          ++dropped_while_down_;
          return;
        }
        dns::Message query;
        try {
          query = dns::Message::decode(payload);
        } catch (const dns::WireError&) {
          ++malformed_;
          return;  // real servers drop unparseable datagrams
        }
        const QueryContext context{from.node, Transport::kUdp};
        handler_.handle(query, context, [this, from](dns::Message response) {
          if (down_) return;  // crashed while the query was in service
          socket_->send_to(from, response.encode());
        });
      });
}

UdpServer::~UdpServer() {
  *alive_ = false;
  host_.udp_close(*socket_);
}

void UdpServer::restart(simnet::TimeUs downtime) {
  down_ = true;
  host_.loop().schedule_in(downtime,
                           [this, alive = std::weak_ptr<bool>(alive_)]() {
                             const auto a = alive.lock();
                             if (a && *a) down_ = false;
                           });
}

}  // namespace dohperf::resolver
