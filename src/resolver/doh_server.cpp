#include "resolver/doh_server.hpp"

#include "dns/base64url.hpp"
#include "dns/json.hpp"
#include "simnet/stream.hpp"

namespace dohperf::resolver {

namespace {

/// HTTP Date header from virtual time; changes every simulated second so
/// persistent-connection responses keep a small differential header cost,
/// as real servers' Date headers do.
std::string http_date(simnet::TimeUs now) {
  const auto total = static_cast<std::uint64_t>(now / simnet::kUsPerSec);
  const unsigned sec = total % 60;
  const unsigned min = (total / 60) % 60;
  const unsigned hour = (total / 3600) % 24;
  char buf[64];
  std::snprintf(buf, sizeof buf, "Mon, 21 Oct 2019 %02u:%02u:%02u GMT", hour,
                min, sec);
  return buf;
}

constexpr std::string_view kDnsMessage = "application/dns-message";
constexpr std::string_view kDnsJson = "application/dns-json";

dns::RType rtype_from_string(const std::string& s) {
  if (s == "A" || s == "1" || s.empty()) return dns::RType::kA;
  if (s == "AAAA" || s == "28") return dns::RType::kAAAA;
  if (s == "TXT" || s == "16") return dns::RType::kTXT;
  if (s == "CNAME" || s == "5") return dns::RType::kCNAME;
  if (s == "NS" || s == "2") return dns::RType::kNS;
  if (s == "CAA" || s == "257") return dns::RType::kCAA;
  return dns::RType::kA;
}

DohResult error_result(int status) {
  DohResult r;
  r.status = status;
  return r;
}

}  // namespace

std::pair<std::string, std::string> split_target(const std::string& target) {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return {target, ""};
  return {target.substr(0, q), target.substr(q + 1)};
}

std::pair<std::string, std::string> parse_json_query(
    const std::string& query_string) {
  std::string name;
  std::string type;
  std::size_t pos = 0;
  while (pos <= query_string.size()) {
    const std::size_t amp = query_string.find('&', pos);
    const std::string pair =
        amp == std::string::npos ? query_string.substr(pos)
                                 : query_string.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "name") name = value;
      if (key == "type") type = value;
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return {name, type};
}

DohServer::DohServer(simnet::Host& host, QueryHandler& handler,
                     DohServerConfig config, std::uint16_t port)
    : host_(host), handler_(handler), config_(std::move(config)),
      port_(port) {
  listen();
}

std::size_t DohServer::memory_estimate_bytes() const noexcept {
  // Modeled per-session state: the TLS connection plus whichever HTTP
  // layer is attached, and the session bookkeeping itself. Deliberately a
  // structure-size model (not heap tracking): deterministic and portable
  // enough for the relative DoH-vs-UDP comparison.
  std::size_t total = 0;
  for (const auto& s : sessions_) {
    total += sizeof(Session) + sizeof(tlssim::TlsConnection);
    if (s->h2) total += sizeof(http2::Http2Connection);
    if (s->h1) total += sizeof(http1::Http1ServerConnection);
  }
  return total;
}

void DohServer::evict_oldest_idle() {
  const Session* victim = nullptr;
  for (const auto& s : sessions_) {
    if (s->dead) continue;
    if (victim == nullptr || s->last_active < victim->last_active) {
      victim = s.get();
    }
  }
  if (victim == nullptr) return;
  for (auto& s : sessions_) {
    if (s.get() != victim) continue;
    s->dead = true;
    if (const auto tcp = s->tcp.lock()) tcp->abort();
    ++evicted_;
    break;
  }
  prune();
}

DohServer::~DohServer() {
  *alive_ = false;
  if (listening_) host_.tcp_stop_listening(port_);
}

void DohServer::listen() {
  host_.tcp_listen(port_, [this](std::shared_ptr<simnet::TcpConnection> c) {
    on_accept(std::move(c));
  });
  listening_ = true;
}

void DohServer::restart(simnet::TimeUs downtime) {
  // Reset at the host level so connections still mid-handshake (not yet
  // delivered to on_accept) die with the crashed process too.
  host_.tcp_reset_port(port_);
  for (auto& session : sessions_) session->dead = true;
  prune();
  if (listening_) {
    host_.tcp_stop_listening(port_);
    listening_ = false;
  }
  ++restarts_;
  // The crashed process loses its session-ticket keys: tickets issued
  // before the restart must fall back to a full handshake.
  ++config_.tls.ticket_epoch;
  host_.loop().schedule_in(downtime,
                           [this, alive = std::weak_ptr<bool>(alive_)]() {
                             const auto a = alive.lock();
                             if (!a || !*a || listening_) return;
                             listen();
                           });
}

void DohServer::on_accept(std::shared_ptr<simnet::TcpConnection> conn) {
  prune();
  if (config_.max_sessions > 0 && sessions_.size() >= config_.max_sessions) {
    evict_oldest_idle();
  }
  auto session = std::make_shared<Session>();
  session->self = session;
  session->tcp = conn;
  session->peer = conn->remote().node;
  session->last_active = host_.loop().now();
  session->tls_holder = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(std::move(conn)), &config_.tls);
  session->tls = session->tls_holder.get();

  std::weak_ptr<Session> weak = session;
  tlssim::TlsConnection::Handlers h;
  h.on_open = [this, weak]() {
    if (const auto s = weak.lock()) attach_http(s);
  };
  h.on_data = [](std::span<const std::uint8_t>) {};
  h.on_close = [weak]() {
    if (const auto s = weak.lock()) s->dead = true;
  };
  session->tls->set_handlers(std::move(h));
  sessions_.push_back(std::move(session));
  if (sessions_.size() > peak_sessions_) peak_sessions_ = sessions_.size();
}

void DohServer::attach_http(const std::shared_ptr<Session>& session) {
  // The TLS handshake finished: pick the HTTP layer from the negotiated
  // ALPN and hand it ownership of the TLS connection.
  // Response continuations guard on the session still being alive: the
  // client may close (and the session be pruned) while the engine delay
  // is still pending.
  std::weak_ptr<Session> weak = session;
  if (session->tls->alpn() == "h2") {
    session->h2 = std::make_unique<http2::Http2Connection>(
        std::move(session->tls_holder), http2::Http2Connection::Role::kServer);
    session->h2->set_request_handler(
        [this, weak](const http2::H2Message& request,
               http2::Http2Connection::Responder respond) {
          DohExchange exchange;
          for (const auto& f : request.headers) {
            if (f.name == ":method") exchange.method = f.value;
            else if (f.name == ":path") {
              std::tie(exchange.path, exchange.query_string) =
                  split_target(f.value);
            } else if (f.name == "accept") exchange.accept = f.value;
            else if (f.name == "content-type") exchange.content_type = f.value;
          }
          exchange.body = request.body;
          const auto active = weak.lock();
          if (active) active->last_active = host_.loop().now();
          const simnet::NodeId peer = active ? active->peer : 0;
          process(exchange, peer, [respond = std::move(respond), weak,
                                   this](DohResult result) {
            const auto s = weak.lock();
            if (!s || s->dead) return;
            http2::H2Message response;
            response.headers.push_back(
                {":status", std::to_string(result.status)});
            response.headers.push_back({"server", config_.server_header});
            response.headers.push_back(
                {"date", http_date(host_.loop().now())});
            if (!result.content_type.empty()) {
              response.headers.push_back(
                  {"content-type", result.content_type});
              response.headers.push_back(
                  {"content-length", std::to_string(result.body.size())});
              response.headers.push_back({"cache-control", "max-age=300"});
            }
            response.body = std::move(result.body);
            respond(std::move(response));
          });
        });
  } else {
    // HTTP/1.1 (also the fallback when the client offered no ALPN).
    session->h1 = std::make_unique<http1::Http1ServerConnection>(
        std::move(session->tls_holder),
        [this, weak](const http1::Request& request,
               http1::Http1ServerConnection::Responder respond) {
          DohExchange exchange;
          exchange.method = request.method;
          std::tie(exchange.path, exchange.query_string) =
              split_target(request.target);
          exchange.accept = request.headers.get("accept").value_or("");
          exchange.content_type =
              request.headers.get("content-type").value_or("");
          exchange.body = request.body;
          const auto active = weak.lock();
          if (active) active->last_active = host_.loop().now();
          const simnet::NodeId peer = active ? active->peer : 0;
          process(exchange, peer, [respond = std::move(respond), weak,
                                   this](DohResult result) {
            const auto s = weak.lock();
            if (!s || s->dead) return;
            http1::Response response;
            response.status = result.status;
            response.reason = result.status == 200 ? "OK" : "Error";
            response.headers.add("Server", config_.server_header);
            response.headers.add("Date", http_date(host_.loop().now()));
            if (!result.content_type.empty()) {
              response.headers.add("Content-Type", result.content_type);
              response.headers.add("Cache-Control", "max-age=300");
            }
            response.body = std::move(result.body);
            respond(std::move(response));
          });
        });
  }
}

void DohServer::process(const DohExchange& exchange, simnet::NodeId peer,
                        std::function<void(DohResult)> done) {
  if (config_.frontend_delay > 0) {
    // Route through the HTTPS front-end: defer the whole exchange.
    host_.loop().schedule_in(
        config_.frontend_delay,
        [this, exchange, peer, done = std::move(done)]() mutable {
          auto deferred = config_.frontend_delay;
          config_.frontend_delay = 0;
          process(exchange, peer, std::move(done));
          config_.frontend_delay = deferred;
        });
    return;
  }
  if (exchange.body.size() > config_.max_body_bytes) {
    ++oversized_;
    done(error_result(413));
    return;
  }
  if (config_.paths.count(exchange.path) == 0) {
    done(error_result(404));
    return;
  }

  // --- JSON API: GET ?name=&type= -------------------------------------------
  const bool wants_json = exchange.accept == kDnsJson ||
                          (exchange.method == "GET" &&
                           exchange.query_string.find("name=") !=
                               std::string::npos);
  if (wants_json) {
    if (!config_.support_dns_json) {
      done(error_result(415));
      return;
    }
    const auto [name_text, type_text] = parse_json_query(exchange.query_string);
    dns::Name name;
    try {
      name = dns::Name::parse(name_text);
    } catch (const dns::WireError&) {
      done(error_result(400));
      return;
    }
    const dns::Message query =
        dns::Message::make_query(0, name, rtype_from_string(type_text));
    const QueryContext context{peer, Transport::kDoh};
    handler_.handle(query, context,
                    [done = std::move(done)](dns::Message response) {
                      DohResult result;
                      result.content_type = kDnsJson;
                      result.body = dns::to_bytes(dns::to_dns_json(response));
                      done(std::move(result));
                    });
    return;
  }

  // --- RFC 8484 wire-format API ------------------------------------------------
  if (!config_.support_dns_message) {
    done(error_result(415));
    return;
  }
  dns::Bytes query_wire;
  if (exchange.method == "POST") {
    if (exchange.content_type != kDnsMessage) {
      done(error_result(415));
      return;
    }
    query_wire = exchange.body;
  } else if (exchange.method == "GET") {
    // ?dns=<base64url>
    const std::string prefix = "dns=";
    const std::size_t pos = exchange.query_string.find(prefix);
    if (pos == std::string::npos) {
      done(error_result(400));
      return;
    }
    std::string encoded = exchange.query_string.substr(pos + prefix.size());
    const std::size_t amp = encoded.find('&');
    if (amp != std::string::npos) encoded.resize(amp);
    try {
      query_wire = dns::base64url_decode(encoded);
    } catch (const dns::WireError&) {
      done(error_result(400));
      return;
    }
  } else {
    done(error_result(405));
    return;
  }

  dns::Message query;
  try {
    query = dns::Message::decode(query_wire);
  } catch (const dns::WireError&) {
    done(error_result(400));
    return;
  }
  const QueryContext context{peer, Transport::kDoh};
  handler_.handle(query, context,
                  [done = std::move(done)](dns::Message response) {
                    DohResult result;
                    result.content_type = kDnsMessage;
                    result.body = response.encode();
                    done(std::move(result));
                  });
}

void DohServer::prune() {
  std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
    if (s->dead) return true;
    // After the HTTP layer attached, closure shows up as the transport
    // no longer being open.
    if (s->h1) return !s->h1->is_open();
    if (s->h2) return !s->h2->is_open();
    return false;
  });
}

}  // namespace dohperf::resolver
