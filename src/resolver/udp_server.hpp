// Classic UDP DNS front-end (port 53).
#pragma once

#include "resolver/engine.hpp"
#include "simnet/host.hpp"

namespace dohperf::resolver {

class UdpServer {
 public:
  /// Binds `port` on `host` and answers via `engine` (not owned; must
  /// outlive the server).
  UdpServer(simnet::Host& host, Engine& engine, std::uint16_t port = 53);
  ~UdpServer();

  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  simnet::Address address() const { return socket_->local(); }
  std::uint64_t malformed_queries() const noexcept { return malformed_; }

 private:
  simnet::Host& host_;
  Engine& engine_;
  simnet::UdpSocket* socket_;
  std::uint64_t malformed_ = 0;
};

}  // namespace dohperf::resolver
