// Classic UDP DNS front-end (port 53).
#pragma once

#include "resolver/query_handler.hpp"
#include "simnet/host.hpp"

namespace dohperf::resolver {

class UdpServer {
 public:
  /// Binds `port` on `host` and answers via `handler` — a bare Engine or a
  /// RecursiveTier (not owned; must outlive the server).
  UdpServer(simnet::Host& host, QueryHandler& handler,
            std::uint16_t port = 53);
  ~UdpServer();

  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  simnet::Address address() const { return socket_->local(); }
  std::uint64_t malformed_queries() const noexcept { return malformed_; }

  /// Simulate a crash + restart: queries arriving during the `downtime`
  /// window are silently dropped (UDP has no connections to reset).
  void restart(simnet::TimeUs downtime);
  bool up() const noexcept { return !down_; }
  std::uint64_t dropped_while_down() const noexcept {
    return dropped_while_down_;
  }

 private:
  simnet::Host& host_;
  QueryHandler& handler_;
  simnet::UdpSocket* socket_;
  std::uint64_t malformed_ = 0;
  bool down_ = false;
  std::uint64_t dropped_while_down_ = 0;
  /// Guards the deferred restart against the server being destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dohperf::resolver
