#include "browser/page_load.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "simnet/stream.hpp"

namespace dohperf::browser {

namespace {
/// Object index used for the root HTML document.
constexpr int kHtmlIndex = -1;
}  // namespace

PageLoader::PageLoader(simnet::Host& browser_host, WebFarm& farm,
                       core::ResolverClient& resolver, PageLoadConfig config)
    : browser_(browser_host), farm_(farm), resolver_(resolver),
      config_(config) {}

PageLoader::~PageLoader() {
  for (auto& [domain, origin] : origins_) {
    for (auto& conn : origin.connections) {
      if (conn->http && conn->http->is_open()) conn->http->close();
    }
  }
}

simnet::EventLoop& PageLoader::loop() { return browser_.loop(); }

void PageLoader::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_pages_ = r->register_counter("browser.pages");
  m_dns_queries_ = r->register_counter("browser.dns_queries");
  m_fetches_ = r->register_counter("browser.fetches");
  m_fetch_failures_ = r->register_counter("browser.fetch_failures");
}

void PageLoader::load(const workload::Page& page,
                      std::function<void(const PageLoadResult&)> done) {
  page_ = page;
  done_ = std::move(done);
  result_ = PageLoadResult{};
  result_.started_at = loop().now();
  bind_obs_ids();
  page_span_ = config_.obs.begin("page_load");
  config_.obs.set_attr(page_span_, "page", page_.primary.to_string());
  config_.obs.set_attr(page_span_, "objects",
                       static_cast<std::int64_t>(page_.objects.size()));
  page_obs_ = config_.obs.child(page_span_);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_pages_);
  }
  // Everything that must complete before onload: the HTML + all objects.
  objects_outstanding_ = page_.objects.size() + 1;

  // Kick off with the primary domain's resolution; the HTML fetch is
  // enqueued once it resolves.
  enqueue_fetch(kHtmlIndex);
}

void PageLoader::resolve_origin(const dns::Name& domain) {
  Origin& origin = origins_[domain];
  if (origin.resolved || origin.resolving) return;
  origin.resolving = true;
  ++result_.dns_queries;
  const obs::SpanId span = page_obs_.begin("resolve_origin");
  page_obs_.set_attr(span, "domain", domain.to_string());
  resolve_spans_[domain] = span;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_dns_queries_);
  }
  resolver_.resolve(domain, dns::RType::kA,
                    [this, domain](const core::ResolutionResult& r) {
                      on_resolved(domain, r);
                    });
}

void PageLoader::on_resolved(const dns::Name& domain,
                             const core::ResolutionResult& r) {
  Origin& origin = origins_[domain];
  origin.resolving = false;
  result_.cumulative_dns += r.resolution_time();
  const auto span_it = resolve_spans_.find(domain);
  if (span_it != resolve_spans_.end()) {
    page_obs_.set_attr(span_it->second, "success", r.success);
    page_obs_.end(span_it->second);
  }
  if (!r.success) {
    // Every object waiting on this origin fails.
    while (!origin.pending_objects.empty()) {
      const int index = origin.pending_objects.front();
      origin.pending_objects.pop_front();
      on_object_done(index, false);
    }
    return;
  }
  origin.resolved = true;
  // The DNS answer's address is authoritative in the real world; in the
  // simulation the farm provides the transport address for the origin.
  origin.address = farm_.origin_for(domain);
  pump_origin(domain);
}

void PageLoader::enqueue_fetch(int object_index) {
  const dns::Name& domain = object_index == kHtmlIndex
                                ? page_.primary
                                : page_.objects[static_cast<std::size_t>(
                                                    object_index)]
                                      .domain;
  Origin& origin = origins_[domain];
  origin.pending_objects.push_back(object_index);
  if (origin.resolved) {
    pump_origin(domain);
  } else {
    resolve_origin(domain);
  }
}

void PageLoader::pump_origin(const dns::Name& domain) {
  Origin& origin = origins_[domain];
  while (!origin.pending_objects.empty()) {
    // Pick the connection with the least outstanding work; open a new one
    // if all are busy and the per-origin limit allows.
    Connection* best = nullptr;
    for (auto& conn : origin.connections) {
      if (!conn->http->is_open() && conn->outstanding == 0) continue;
      if (best == nullptr || conn->outstanding < best->outstanding) {
        best = conn.get();
      }
    }
    const bool all_busy = best == nullptr || best->outstanding > 0;
    if (all_busy && origin.connections.size() <
                        static_cast<std::size_t>(
                            config_.max_connections_per_origin)) {
      auto conn = std::make_unique<Connection>();
      conn->tcp = browser_.tcp_connect(origin.address);
      tlssim::ClientConfig tls_config;
      tls_config.sni = domain.to_string();
      tls_config.alpn = {"http/1.1"};
      auto tls = std::make_unique<tlssim::TlsConnection>(
          std::make_unique<simnet::TcpByteStream>(conn->tcp),
          std::move(tls_config));
      conn->http = std::make_unique<http1::Http1Client>(
          std::move(tls), /*pipelining=*/false);
      best = conn.get();
      origin.connections.push_back(std::move(conn));
    }
    if (best == nullptr) break;  // limit reached, all busy: wait

    const int index = origin.pending_objects.front();
    origin.pending_objects.pop_front();
    const std::size_t bytes =
        index == kHtmlIndex
            ? page_.html_bytes
            : page_.objects[static_cast<std::size_t>(index)].bytes;

    http1::Request request;
    request.method = "GET";
    request.target = WebFarm::object_target(bytes);
    request.headers.add("Host", domain.to_string());
    request.headers.add("User-Agent", "dohperf-browser/1.0");
    request.headers.add("Accept", "*/*");

    const obs::SpanId fetch_span = page_obs_.begin("fetch");
    page_obs_.set_attr(fetch_span, "domain", domain.to_string());
    page_obs_.set_attr(fetch_span, "bytes",
                       static_cast<std::int64_t>(bytes));
    fetch_spans_[index] = fetch_span;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_fetches_);
    }

    ++best->outstanding;
    Connection* conn_ptr = best;
    best->http->set_error_handler([this, conn_ptr]() {
      // Fail whatever this connection still owes us.
      const int lost = conn_ptr->outstanding;
      conn_ptr->outstanding = 0;
      for (int i = 0; i < lost; ++i) on_object_done(kHtmlIndex - 1, false);
    });
    best->http->request(std::move(request),
                        [this, index, conn_ptr](const http1::Response& resp) {
                          --conn_ptr->outstanding;
                          on_object_done(index, resp.status == 200);
                        });
  }
}

void PageLoader::on_object_done(int object_index, bool success) {
  if (finished_) return;
  const auto span_it = fetch_spans_.find(object_index);
  if (span_it != fetch_spans_.end()) {
    page_obs_.set_attr(span_it->second, "success", success);
    page_obs_.end(span_it->second);
    fetch_spans_.erase(span_it);
  }
  if (success) {
    ++result_.objects_fetched;
  } else {
    ++result_.fetch_failures;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_fetch_failures_);
    }
  }
  --objects_outstanding_;

  if (object_index == kHtmlIndex && success) {
    // Parse the HTML, then discover every depth-0 object.
    loop().schedule_in(config_.parse_delay, [this]() {
      for (std::size_t i = 0; i < page_.objects.size(); ++i) {
        if (page_.objects[i].depth == 0) {
          enqueue_fetch(static_cast<int>(i));
        }
      }
      html_done_ = true;
      maybe_finish();  // pages with zero objects
    });
    return;
  }
  if (object_index >= 0 && success) discover_children(object_index);
  maybe_finish();
}

void PageLoader::discover_children(int object_index) {
  for (std::size_t i = 0; i < page_.objects.size(); ++i) {
    if (page_.objects[i].parent == object_index) {
      enqueue_fetch(static_cast<int>(i));
    }
  }
}

void PageLoader::maybe_finish() {
  if (finished_ || objects_outstanding_ > 0) return;
  finished_ = true;
  result_.onload_at = loop().now();
  result_.success = result_.fetch_failures == 0;
  config_.obs.set_attr(page_span_, "success", result_.success);
  config_.obs.set_attr(page_span_, "dns_queries",
                       static_cast<std::int64_t>(result_.dns_queries));
  config_.obs.set_attr(page_span_, "objects_fetched",
                       static_cast<std::int64_t>(result_.objects_fetched));
  config_.obs.end(page_span_);
  if (done_) done_(result_);
}

}  // namespace dohperf::browser
