// Vantage-point presets for the §5 page-load study: the paper measures from
// a university server and from 39 PlanetLab nodes. A vantage bundles the
// network parameters that differ between measurement locations.
#pragma once

#include <cstdint>

#include "resolver/engine.hpp"
#include "simnet/network.hpp"

namespace dohperf::browser {

struct Vantage {
  /// one-way latency browser -> resolver
  simnet::TimeUs local_resolver_latency = simnet::ms(1);
  simnet::TimeUs cloudflare_latency = simnet::ms(4);
  simnet::TimeUs google_latency = simnet::ms(6);
  /// web origins
  simnet::TimeUs origin_base_latency = simnet::ms(20);
  simnet::TimeUs origin_latency_jitter = simnet::ms(30);
  double access_bandwidth_bps = 50e6;

  /// Cache behaviour of the resolvers seen from this vantage: the local
  /// (university) resolver serves a small population so its cache is cold;
  /// the big public resolvers are warm (this is why cloud UDP beats the
  /// local resolver in Fig 6).
  resolver::UpstreamModel local_resolver;
  resolver::UpstreamModel cloud_resolver;

  /// A well-connected campus network (the paper's primary vantage).
  static Vantage university();

  /// PlanetLab node `i` of the 39 usable ones: heterogeneous, generally
  /// worse connectivity. Deterministic per index.
  static Vantage planetlab(int node_index);
};

}  // namespace dohperf::browser
