#include "browser/web_farm.hpp"

#include <charconv>

#include "simnet/stream.hpp"

namespace dohperf::browser {

WebFarm::WebFarm(simnet::Network& net, simnet::Host& browser_host,
                 WebFarmConfig config)
    : net_(net), browser_host_(browser_host), config_(config),
      rng_(config.seed) {
  tls_config_.alpn_preference = {"http/1.1"};
  tls_config_.chain = tlssim::CertificateChain::generic("origin.web.example");
}

std::string WebFarm::object_target(std::size_t bytes) {
  return "/o/" + std::to_string(bytes);
}

simnet::Address WebFarm::origin_for(const dns::Name& domain) {
  const auto it = origins_.find(domain);
  if (it != origins_.end()) return {it->second->host->id(), 443};

  auto origin = std::make_unique<Origin>();
  origin->host =
      std::make_unique<simnet::Host>(net_, "origin:" + domain.to_string());

  simnet::LinkConfig link;
  link.latency = config_.base_latency +
                 static_cast<simnet::TimeUs>(rng_.next_below(
                     static_cast<std::uint64_t>(config_.latency_jitter) + 1));
  link.bandwidth_bps = config_.bandwidth_bps;
  net_.connect(browser_host_.id(), origin->host->id(), link);

  Origin* origin_ptr = origin.get();
  origin->host->tcp_listen(
      443, [this, origin_ptr](std::shared_ptr<simnet::TcpConnection> c) {
        accept(*origin_ptr, std::move(c));
      });

  const simnet::Address addr{origin->host->id(), 443};
  origins_.emplace(domain, std::move(origin));
  return addr;
}

void WebFarm::accept(Origin& origin,
                     std::shared_ptr<simnet::TcpConnection> conn) {
  std::erase_if(origin.sessions,
                [](const std::shared_ptr<Session>& s) {
                  return s->dead || (s->http && !s->http->is_open());
                });

  auto session = std::make_shared<Session>();
  session->tls_holder = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(std::move(conn)), &tls_config_);

  std::weak_ptr<Session> weak = session;
  tlssim::TlsConnection::Handlers h;
  h.on_open = [this, weak]() {
    const auto s = weak.lock();
    if (!s) return;
    s->http = std::make_unique<http1::Http1ServerConnection>(
        std::move(s->tls_holder),
        [this](const http1::Request& request,
               http1::Http1ServerConnection::Responder respond) {
          // "/o/<bytes>" -> body of that many bytes.
          std::size_t size = 0;
          if (request.target.rfind("/o/", 0) == 0) {
            const std::string num = request.target.substr(3);
            std::from_chars(num.data(), num.data() + num.size(), size);
          }
          ++objects_served_;
          http1::Response response;
          response.status = 200;
          response.headers.add("Server", "webfarm/1.0");
          response.headers.add("Content-Type", "application/octet-stream");
          response.body.assign(size, 0x42);
          // Model server think time before the first response byte.
          net_.loop().schedule_in(
              config_.server_think_time,
              [respond = std::move(respond),
               r = std::move(response)]() mutable { respond(std::move(r)); });
        });
  };
  h.on_close = [weak]() {
    if (const auto s = weak.lock()) s->dead = true;
  };
  session->tls_holder->set_handlers(std::move(h));
  origin.sessions.push_back(std::move(session));
}

}  // namespace dohperf::browser
