// The page-load engine: replays a workload::Page the way a browser does —
// resolve origins through a pluggable ResolverClient (legacy UDP or DoH),
// fetch objects over per-origin HTTPS connection pools (up to 6 parallel
// connections per origin, like Firefox), honour discovery depth, and record
// when the onload event would fire.
//
// This is the machinery behind Figure 6: swapping the ResolverClient is the
// *only* difference between the U/LO, U/CF, U/GO, H/CF and H/GO runs.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "browser/web_farm.hpp"
#include "core/client.hpp"
#include "http1/client.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "workload/alexa.hpp"

namespace dohperf::browser {

struct PageLoadConfig {
  int max_connections_per_origin = 6;  ///< Firefox's per-origin limit
  simnet::TimeUs parse_delay = simnet::ms(5);  ///< HTML parse before fetches
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct PageLoadResult {
  bool success = false;
  simnet::TimeUs started_at = 0;
  simnet::TimeUs onload_at = 0;
  /// Sum of individual resolution times ("the time it would take to perform
  /// all DNS queries serially", §5).
  simnet::TimeUs cumulative_dns = 0;
  std::size_t dns_queries = 0;
  std::size_t objects_fetched = 0;
  std::size_t fetch_failures = 0;

  simnet::TimeUs onload_time() const noexcept {
    return onload_at - started_at;
  }
};

/// Loads one page, then invokes the completion callback. Create one per
/// page load (its connection pools are the "browser cache purged" state);
/// the ResolverClient is shared so DoH connections persist across pages,
/// as they do in Firefox.
class PageLoader {
 public:
  PageLoader(simnet::Host& browser_host, WebFarm& farm,
             core::ResolverClient& resolver, PageLoadConfig config = {});
  ~PageLoader();

  PageLoader(const PageLoader&) = delete;
  PageLoader& operator=(const PageLoader&) = delete;

  /// Begin loading; `done` fires once every object has been fetched (the
  /// onload event). Only one load per PageLoader.
  void load(const workload::Page& page,
            std::function<void(const PageLoadResult&)> done);

 private:
  struct Connection {
    std::shared_ptr<simnet::TcpConnection> tcp;
    std::unique_ptr<http1::Http1Client> http;
    int outstanding = 0;
  };
  struct Origin {
    simnet::Address address;
    bool resolved = false;
    bool resolving = false;
    std::deque<int> pending_objects;  ///< object indices awaiting fetch
    std::vector<std::unique_ptr<Connection>> connections;
  };

  void resolve_origin(const dns::Name& domain);
  void on_resolved(const dns::Name& domain, const core::ResolutionResult& r);
  void enqueue_fetch(int object_index);
  void pump_origin(const dns::Name& domain);
  void on_object_done(int object_index, bool success);
  void discover_children(int object_index);
  void maybe_finish();
  /// Re-register the browser.* handles when the registry changes.
  void bind_obs_ids();

  simnet::EventLoop& loop();

  simnet::Host& browser_;
  WebFarm& farm_;
  core::ResolverClient& resolver_;
  PageLoadConfig config_;

  workload::Page page_;
  std::function<void(const PageLoadResult&)> done_;
  PageLoadResult result_;
  obs::SpanId page_span_ = 0;
  obs::SpanContext page_obs_;  ///< children hang under the page_load span
  obs::Registry* bound_metrics_ = nullptr;
  obs::MetricId m_pages_;
  obs::MetricId m_dns_queries_;
  obs::MetricId m_fetches_;
  obs::MetricId m_fetch_failures_;
  std::map<dns::Name, obs::SpanId> resolve_spans_;
  std::map<int, obs::SpanId> fetch_spans_;
  std::map<dns::Name, Origin> origins_;
  std::size_t objects_outstanding_ = 0;  ///< fetches not yet finished
  bool html_done_ = false;
  bool finished_ = false;
};

}  // namespace dohperf::browser
