#include "browser/vantage.hpp"

#include "stats/rng.hpp"

namespace dohperf::browser {

Vantage Vantage::university() {
  Vantage v;
  v.local_resolver_latency = simnet::ms(1);
  v.cloudflare_latency = simnet::ms(4);   // paper: CF slightly faster...
  v.google_latency = simnet::ms(6);       // ...than Google from their campus
  v.origin_base_latency = simnet::ms(20);
  v.origin_latency_jitter = simnet::ms(30);
  v.access_bandwidth_bps = 100e6;

  // Local resolver: tiny user population, cold cache, full recursion on
  // misses (but the authoritative servers are close to campus).
  v.local_resolver.cache_hit_ratio = 0.55;
  v.local_resolver.upstream_mu_ms = 40.0;
  v.local_resolver.upstream_sigma = 0.9;
  v.local_resolver.processing = simnet::us(200);

  // Public resolvers: huge shared cache, short recursion on rare misses.
  v.cloud_resolver.cache_hit_ratio = 0.92;
  v.cloud_resolver.upstream_mu_ms = 18.0;
  v.cloud_resolver.upstream_sigma = 0.8;
  v.cloud_resolver.processing = simnet::us(150);
  return v;
}

Vantage Vantage::planetlab(int node_index) {
  stats::SplitMix64 rng(0x50414eULL ^ static_cast<std::uint64_t>(node_index));
  Vantage v = university();
  // PlanetLab nodes: farther from everything, slower access links, and a
  // local resolver of unpredictable quality.
  v.local_resolver_latency = simnet::ms(1 + rng.next_in(0, 14));
  v.cloudflare_latency = simnet::ms(5 + rng.next_in(0, 45));
  v.google_latency = simnet::ms(5 + rng.next_in(0, 55));
  v.origin_base_latency = simnet::ms(30 + rng.next_in(0, 90));
  v.origin_latency_jitter = simnet::ms(20 + rng.next_in(0, 60));
  v.access_bandwidth_bps = 5e6 + static_cast<double>(rng.next_below(45)) * 1e6;
  v.local_resolver.cache_hit_ratio = 0.35 + rng.next_double() * 0.4;
  v.local_resolver.upstream_mu_ms = 40.0 + rng.next_double() * 80.0;
  return v;
}

}  // namespace dohperf::browser
