// The simulated web: one HTTPS origin server per domain, created lazily,
// each on its own node with its own (slightly jittered) path from the
// browser. Origins serve synthetic objects: a request for "/o/<n>" returns
// an n-byte body.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dns/name.hpp"
#include "http1/server.hpp"
#include "simnet/host.hpp"
#include "stats/rng.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::browser {

struct WebFarmConfig {
  simnet::TimeUs base_latency = simnet::ms(20);   ///< browser -> origin
  simnet::TimeUs latency_jitter = simnet::ms(30); ///< uniform extra, per origin
  double bandwidth_bps = 50e6;                    ///< access-link rate
  simnet::TimeUs server_think_time = simnet::ms(2);
  std::uint64_t seed = 99;
};

class WebFarm {
 public:
  WebFarm(simnet::Network& net, simnet::Host& browser_host,
          WebFarmConfig config = {});

  WebFarm(const WebFarm&) = delete;
  WebFarm& operator=(const WebFarm&) = delete;

  /// Address of the origin serving `domain` (HTTPS, port 443), creating
  /// the host, server and link on first use.
  simnet::Address origin_for(const dns::Name& domain);

  std::size_t origin_count() const noexcept { return origins_.size(); }
  std::uint64_t objects_served() const noexcept { return objects_served_; }

  /// Request target that makes an origin return `bytes` of body.
  static std::string object_target(std::size_t bytes);

 private:
  struct Session {
    std::unique_ptr<tlssim::TlsConnection> tls_holder;
    std::unique_ptr<http1::Http1ServerConnection> http;
    bool dead = false;
  };
  struct Origin {
    std::unique_ptr<simnet::Host> host;
    std::vector<std::shared_ptr<Session>> sessions;
  };

  void accept(Origin& origin, std::shared_ptr<simnet::TcpConnection> conn);

  simnet::Network& net_;
  simnet::Host& browser_host_;
  WebFarmConfig config_;
  stats::SplitMix64 rng_;
  tlssim::ServerConfig tls_config_;
  std::map<dns::Name, std::unique_ptr<Origin>> origins_;
  std::uint64_t objects_served_ = 0;
};

}  // namespace dohperf::browser
