// Empirical CDFs and histograms — the primary presentation form of the
// paper's figures (Figures 1 and 6 are CDFs; Figures 3-5 are distributions).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dohperf::stats {

/// An empirical cumulative distribution function over a scalar sample.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> xs);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Fraction of samples <= x, in [0, 1].
  double at(double x) const;

  /// Inverse CDF: smallest sample value v with F(v) >= q, q in (0, 1].
  double quantile(double q) const;

  /// Evaluate the CDF at `points` evenly spaced x positions between lo and
  /// hi inclusive; returns (x, F(x)) pairs ready for plotting.
  std::vector<std::pair<double, double>> curve(double lo, double hi,
                                               std::size_t points) const;

  /// The sorted underlying sample.
  const std::vector<double>& sorted_values() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram (used for sanity checks on generated workloads).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace dohperf::stats
