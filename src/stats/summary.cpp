#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace dohperf::stats {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  // Welford's update.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Summary::min() const noexcept { return count_ == 0 ? 0.0 : min_; }
double Summary::max() const noexcept { return count_ == 0 ? 0.0 : max_; }
double Summary::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double p) {
  assert(!sorted.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

BoxWhisker BoxWhisker::from(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  BoxWhisker bw;
  bw.min = copy.front();
  bw.q1 = percentile_sorted(copy, 25.0);
  bw.median = percentile_sorted(copy, 50.0);
  bw.q3 = percentile_sorted(copy, 75.0);
  bw.max = copy.back();
  return bw;
}

std::string BoxWhisker::to_string(const std::string& unit) const {
  std::ostringstream os;
  const char* sep = unit.empty() ? "" : " ";
  os << "min=" << min << sep << unit << " q1=" << q1 << sep << unit
     << " med=" << median << sep << unit << " q3=" << q3 << sep << unit
     << " max=" << max << sep << unit;
  return os.str();
}

}  // namespace dohperf::stats
