#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <stdexcept>

namespace dohperf::stats {

Cdf::Cdf(std::span<const double> xs) { add_all(xs); }

void Cdf::add(double x) {
  values_.push_back(x);
  sorted_ = values_.size() <= 1;
}

void Cdf::add_all(std::span<const double> xs) {
  if (xs.empty()) return;
  if (values_.empty()) {
    values_.assign(xs.begin(), xs.end());
    sorted_ = std::is_sorted(values_.begin(), values_.end());
    return;
  }
  // Shard merges feed this with already-sorted samples (sorted_values() of
  // per-shard CDFs); a linear merge keeps the result sorted and spares the
  // O(n log n) re-sort the next quantile query would otherwise pay.
  if (sorted_ && std::is_sorted(xs.begin(), xs.end())) {
    std::vector<double> merged;
    merged.reserve(values_.size() + xs.size());
    std::merge(values_.begin(), values_.end(), xs.begin(), xs.end(),
               std::back_inserter(merged));
    values_ = std::move(merged);
    sorted_ = true;
    return;
  }
  values_.reserve(values_.size() + xs.size());
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Cdf::quantile(double q) const {
  if (values_.empty()) throw std::domain_error("quantile of empty CDF");
  if (q <= 0.0 || q > 1.0) throw std::domain_error("quantile q out of (0,1]");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size()))) - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(double lo, double hi,
                                                  std::size_t points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, at(x));
  }
  return out;
}

const std::vector<double>& Cdf::sorted_values() const {
  ensure_sorted();
  return values_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace dohperf::stats
