#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dohperf::stats {

Cdf::Cdf(std::span<const double> xs) { add_all(xs); }

void Cdf::add(double x) {
  values_.push_back(x);
  sorted_ = values_.size() <= 1;
}

void Cdf::add_all(std::span<const double> xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_ = values_.size() <= 1;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Cdf::quantile(double q) const {
  if (values_.empty()) throw std::domain_error("quantile of empty CDF");
  if (q <= 0.0 || q > 1.0) throw std::domain_error("quantile q out of (0,1]");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size()))) - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(double lo, double hi,
                                                  std::size_t points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, at(x));
  }
  return out;
}

const std::vector<double>& Cdf::sorted_values() const {
  ensure_sorted();
  return values_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace dohperf::stats
