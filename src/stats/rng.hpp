// Deterministic random number generation for reproducible experiments.
//
// All experiments in this repository run on a virtual clock and must be
// bit-for-bit reproducible across runs and platforms.  std::mt19937_64 is
// seeded explicitly everywhere; the distribution samplers below are
// implemented by hand (rather than via std::*_distribution) because the
// standard distributions are not guaranteed to produce identical streams
// across standard library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace dohperf::stats {

/// SplitMix64: a tiny, high-quality 64-bit PRNG used both directly and to
/// seed larger state.  Reference: Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction
  /// (bias negligible for the bounds used here). bound must be non-zero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

 private:
  std::uint64_t state_;
};

/// Samples exponentially distributed inter-arrival gaps, producing a Poisson
/// arrival process with the given average rate (events per second).
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, std::uint64_t seed) noexcept;

  /// Next inter-arrival gap in seconds (exponential with mean 1/rate).
  double next_gap_sec() noexcept;

  /// Convenience: absolute arrival times (seconds) for `n` events starting
  /// at time zero.
  std::vector<double> arrival_times(std::size_t n) noexcept;

 private:
  double rate_;
  SplitMix64 rng_;
};

/// Zipf-distributed ranks in [1, n]: P(rank = k) proportional to k^-s.
/// Used to model domain-name popularity (a small number of very hot names —
/// the paper observes ~25% of all queries going to just 15 names).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent, std::uint64_t seed);

  /// Sample a rank in [1, n].
  std::size_t sample() noexcept;

  /// Sample using an external RNG (lets one (possibly large) cumulative
  /// table serve many deterministic streams).
  std::size_t sample(SplitMix64& rng) const noexcept;

  std::size_t n() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<double> cumulative_;  // normalised cumulative mass
  SplitMix64 rng_;
};

/// Log-normal sampler; used for heavy-tailed object sizes and page
/// complexity (web-page statistics are classically log-normal).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma, std::uint64_t seed) noexcept;

  double sample() noexcept;

 private:
  double mu_;
  double sigma_;
  SplitMix64 rng_;
  // Box-Muller generates pairs; cache the spare value.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dohperf::stats
