// Plain-text table and series rendering used by the benchmark harnesses to
// print the same rows/series the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dohperf::stats {

/// A simple fixed-width text table.  Columns are sized to fit the widest
/// cell; the first row added is treated as the header.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells);
  std::string render() const;
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a (x, y) series as two-column text, gnuplot-style, with an
/// optional title comment line. Used to dump CDF curves for the figures.
std::string render_series(const std::string& title,
                          std::span<const std::pair<double, double>> points);

/// An ASCII sparkline of a CDF or series for terminal-friendly output —
/// renders y in [0,1] using eight vertical bar glyph levels.
std::string ascii_sparkline(std::span<const double> ys);

/// Format helpers (locale-independent).
std::string format_double(double v, int precision = 2);
std::string format_bytes(double bytes);

}  // namespace dohperf::stats
