#include "stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dohperf::stats {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  if (rows_.empty()) return {};
  // Column widths fit the widest cell.
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < cols) os << "  ";
    }
    os << '\n';
    if (i == 0) {
      // Header separator.
      for (std::size_t c = 0; c < cols; ++c) {
        os << std::string(widths[c], '-');
        if (c + 1 < cols) os << "  ";
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string render_series(
    const std::string& title,
    std::span<const std::pair<double, double>> points) {
  std::ostringstream os;
  os << "# " << title << '\n';
  for (const auto& [x, y] : points) {
    os << format_double(x, 4) << ' ' << format_double(y, 6) << '\n';
  }
  return os.str();
}

std::string ascii_sparkline(std::span<const double> ys) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  std::string out;
  for (double y : ys) {
    const double clamped = std::clamp(y, 0.0, 1.0);
    const auto idx =
        std::min<std::size_t>(7, static_cast<std::size_t>(clamped * 8.0));
    out += kLevels[idx];
  }
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string format_bytes(double bytes) {
  std::ostringstream os;
  if (bytes < 1024.0) {
    os << format_double(bytes, 0) << " B";
  } else if (bytes < 1024.0 * 1024.0) {
    os << format_double(bytes / 1024.0, 2) << " KB";
  } else {
    os << format_double(bytes / (1024.0 * 1024.0), 2) << " MB";
  }
  return os.str();
}

}  // namespace dohperf::stats
