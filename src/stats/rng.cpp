#include "stats/rng.hpp"

#include <cassert>
#include <cmath>

namespace dohperf::stats {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SplitMix64::next_double() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) noexcept {
  assert(bound != 0);
  // Lemire's multiply-shift; bias is < 2^-64 * bound, irrelevant here.
  const auto x = next();
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * bound) >> 64);
}

std::int64_t SplitMix64::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

PoissonArrivals::PoissonArrivals(double rate_per_sec,
                                 std::uint64_t seed) noexcept
    : rate_(rate_per_sec), rng_(seed) {}

double PoissonArrivals::next_gap_sec() noexcept {
  // Inverse-transform sampling of the exponential distribution.  Guard the
  // logarithm away from log(0).
  double u = rng_.next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate_;
}

std::vector<double> PoissonArrivals::arrival_times(std::size_t n) noexcept {
  std::vector<double> times;
  times.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += next_gap_sec();
    times.push_back(t);
  }
  return times;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent, std::uint64_t seed)
    : n_(n), rng_(seed) {
  assert(n > 0);
  cumulative_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), exponent);
    cumulative_.push_back(total);
  }
  for (auto& c : cumulative_) c /= total;
}

std::size_t ZipfSampler::sample() noexcept { return sample(rng_); }

std::size_t ZipfSampler::sample(SplitMix64& rng) const noexcept {
  const double u = rng.next_double();
  // Binary search for the first cumulative mass >= u.
  std::size_t lo = 0;
  std::size_t hi = cumulative_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cumulative_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;  // ranks are 1-based
}

LogNormalSampler::LogNormalSampler(double mu, double sigma,
                                   std::uint64_t seed) noexcept
    : mu_(mu), sigma_(sigma), rng_(seed) {}

double LogNormalSampler::sample() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return std::exp(mu_ + sigma_ * spare_);
  }
  // Box-Muller transform: two uniforms -> two independent normals.
  double u1 = rng_.next_double();
  double u2 = rng_.next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return std::exp(mu_ + sigma_ * r * std::cos(theta));
}

}  // namespace dohperf::stats
