// Summary statistics: moments, percentiles and box-whisker summaries used by
// every benchmark harness to report the same aggregates the paper plots.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dohperf::stats {

/// Streaming summary of a scalar sample (Welford's online algorithm for the
/// variance so a single pass suffices and large samples stay stable).
class Summary {
 public:
  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t count() const noexcept { return count_; }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation between closest ranks
/// (the same convention as numpy's default). `p` is in [0, 100].
/// The input need not be sorted; a sorted copy is made.
double percentile(std::span<const double> xs, double p);

/// Percentile of an already-sorted sample (ascending). No copy.
double percentile_sorted(std::span<const double> sorted, double p);

/// Median shorthand.
double median(std::span<const double> xs);

/// Five-number summary matching the paper's box-and-whisker plots, where
/// "whiskers span the full range of values" (Figures 3-5).
struct BoxWhisker {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;

  static BoxWhisker from(std::span<const double> xs);

  /// Render as e.g. "min=1 q1=2 med=3 q3=4 max=5" with the given unit label.
  std::string to_string(const std::string& unit = "") const;
};

}  // namespace dohperf::stats
