// Query-name generation for the §3 transport experiment: "a random prefix
// of constant length five followed by a fixed base domain", so every query
// is unique (no caching) while name compressibility stays uniform.
#pragma once

#include <string>
#include <vector>

#include "dns/name.hpp"
#include "stats/rng.hpp"

namespace dohperf::workload {

class UniqueNameGenerator {
 public:
  UniqueNameGenerator(std::string base_domain, std::uint64_t seed,
                      std::size_t prefix_length = 5);

  /// Next unique name, e.g. "kq3bz.example.com".
  dns::Name next();

  /// Convenience: `n` names at once.
  std::vector<dns::Name> generate(std::size_t n);

 private:
  std::string base_domain_;
  std::size_t prefix_length_;
  stats::SplitMix64 rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace dohperf::workload
