// Population-scale query workload for the resolver tier: an open-loop
// Poisson arrival process over a client population with Zipf-distributed
// name popularity — the paper observes heavy name concentration (~25% of
// queries to 15 names), and an open-loop process is what makes overload
// honest (clients do not slow down because the server is slow; queries keep
// arriving at the offered rate regardless of completions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "simnet/time.hpp"

namespace dohperf::workload {

struct PopulationConfig {
  std::size_t clients = 16;      ///< simulated client population size
  std::size_t names = 64;        ///< distinct names (Zipf ranks)
  double zipf_exponent = 1.0;
  double rate_qps = 100.0;       ///< aggregate offered load, open loop
  simnet::TimeUs duration = simnet::seconds(10);
  /// Extra probability mass a single hot tenant (client 0) receives on top
  /// of the uniform share — the workload the fairness rung defends against.
  double hot_client_share = 0.0;
  std::string base_domain = "pop.example.com";
  std::uint64_t seed = 1;
};

/// One query event: which client asks for which name rank, when.
struct QueryEvent {
  simnet::TimeUs at = 0;
  std::uint64_t client = 0;  ///< [0, clients); 0 is the hot tenant
  std::size_t name_rank = 1; ///< Zipf rank in [1, names]
};

class PopulationWorkload {
 public:
  explicit PopulationWorkload(PopulationConfig config);

  /// The full arrival schedule, sorted by time (Poisson arrivals are
  /// generated monotonically). Deterministic for a given config.
  std::vector<QueryEvent> generate() const;

  /// The name behind a Zipf rank, e.g. "w3.pop.example.com".
  dns::Name name_for(std::size_t rank) const;

  const PopulationConfig& config() const noexcept { return config_; }
  /// Offered queries for `generate()`'s schedule (rate x duration, with
  /// the realized Poisson count).
  static std::size_t count(const std::vector<QueryEvent>& events) {
    return events.size();
  }

 private:
  PopulationConfig config_;
};

}  // namespace dohperf::workload
