#include "workload/population.hpp"

#include "stats/rng.hpp"

namespace dohperf::workload {

PopulationWorkload::PopulationWorkload(PopulationConfig config)
    : config_(std::move(config)) {}

dns::Name PopulationWorkload::name_for(std::size_t rank) const {
  return dns::Name::parse("w" + std::to_string(rank) + "." +
                          config_.base_domain);
}

std::vector<QueryEvent> PopulationWorkload::generate() const {
  std::vector<QueryEvent> events;
  stats::PoissonArrivals arrivals(config_.rate_qps, config_.seed);
  stats::ZipfSampler zipf(config_.names, config_.zipf_exponent,
                          config_.seed ^ 0x9e3779b97f4a7c15ULL);
  stats::SplitMix64 pick(config_.seed ^ 0xc2b2ae3d27d4eb4fULL);

  double t_sec = 0.0;
  const double horizon = simnet::to_sec(config_.duration);
  for (;;) {
    t_sec += arrivals.next_gap_sec();
    if (t_sec >= horizon) break;
    QueryEvent event;
    event.at = simnet::from_sec(t_sec);
    // Hot tenant: client 0 takes `hot_client_share` of the load outright;
    // the remainder spreads uniformly over the whole population.
    if (config_.hot_client_share > 0.0 &&
        pick.next_double() < config_.hot_client_share) {
      event.client = 0;
    } else {
      event.client = pick.next_below(config_.clients);
    }
    event.name_rank = zipf.sample(pick);
    events.push_back(event);
  }
  return events;
}

}  // namespace dohperf::workload
