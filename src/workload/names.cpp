#include "workload/names.hpp"

namespace dohperf::workload {

namespace {
constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr std::size_t kAlphabetSize = sizeof(kAlphabet) - 1;
}  // namespace

UniqueNameGenerator::UniqueNameGenerator(std::string base_domain,
                                         std::uint64_t seed,
                                         std::size_t prefix_length)
    : base_domain_(std::move(base_domain)), prefix_length_(prefix_length),
      rng_(seed) {}

dns::Name UniqueNameGenerator::next() {
  std::string prefix;
  prefix.reserve(prefix_length_);
  for (std::size_t i = 0; i + 1 < prefix_length_; ++i) {
    prefix += kAlphabet[rng_.next_below(kAlphabetSize)];
  }
  // Fold a counter into the last character position to guarantee
  // uniqueness even on random collisions (the prefix stays fixed-length
  // by cycling the counter through the alphabet and, if needed, relying
  // on the random part; collisions across 36^4 * counter positions are
  // not a practical concern for experiment sizes).
  prefix += kAlphabet[(counter_++) % kAlphabetSize];
  return dns::Name::parse(prefix + "." + base_domain_);
}

std::vector<dns::Name> UniqueNameGenerator::generate(std::size_t n) {
  std::vector<dns::Name> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace dohperf::workload
