// Synthetic Alexa-style page corpus.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper crawls the real Alexa
// top-100k (2,178,235 queries over 281,414 unique names). Offline, we
// generate a corpus calibrated to the statistics the paper reports:
//   * queries per page: median ~20, with ~50% of pages needing >= 20
//     queries and a long tail beyond 150 (Figure 1) — log-normal
//   * domain popularity: ~25% of all queries go to the 15 hottest
//     third-party names — Zipf over a shared third-party pool
// Pages also carry object sizes and discovery depths so the browser model
// (Figure 6) can replay them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "stats/rng.hpp"

namespace dohperf::workload {

/// One fetchable object of a page.
struct PageObject {
  dns::Name domain;     ///< origin serving the object
  std::size_t bytes;    ///< body size
  int depth;            ///< 0 = referenced by the HTML, d = found after a
                        ///  depth d-1 object completed (CSS/JS chains)
  int parent = -1;      ///< index of the discovering object (-1 for HTML)
};

struct Page {
  std::size_t rank = 0;     ///< 1-based Alexa-style rank
  dns::Name primary;        ///< the site's own domain
  std::size_t html_bytes;   ///< root document size
  std::vector<PageObject> objects;

  /// Distinct domains needing resolution (primary + object origins).
  std::vector<dns::Name> unique_domains() const;
};

struct AlexaModelConfig {
  std::size_t third_party_pool = 60000; ///< shared third-party domains
  double zipf_exponent = 1.22;          ///< third-party popularity skew
  double queries_mu = 3.0;              ///< log-normal location, exp(3)≈20
  double queries_sigma = 0.85;          ///< long tail beyond 150
  std::size_t max_queries = 300;
  double third_party_fraction = 0.94;   ///< objects on third-party origins
  double object_mu = 9.2;               ///< exp(9.2) ≈ 10 KB median object
  double object_sigma = 1.2;
  std::uint64_t seed = 20190915;        ///< the paper's Alexa snapshot date
};

class AlexaPageModel {
 public:
  explicit AlexaPageModel(AlexaModelConfig config = {});

  /// Deterministically generate page `rank` (1-based). The same rank always
  /// yields the same page, so experiments on disjoint rank ranges compose.
  Page page(std::size_t rank);

  /// Corpus statistics over ranks [1, n]: total queries, unique names.
  struct CorpusStats {
    std::uint64_t total_queries = 0;
    std::uint64_t unique_domains = 0;
    std::vector<std::size_t> queries_per_page;
    /// Fraction of all queries hitting the 15 most popular domains.
    double top15_query_share = 0.0;
  };
  CorpusStats corpus_stats(std::size_t n);

  /// Partial corpus statistics over the inclusive rank range [lo, hi]:
  /// the mergeable intermediate form behind corpus_stats(). Because pages
  /// are a pure function of rank, disjoint ranges computed by different
  /// shards (each with its own model instance) merge into exactly the
  /// serial result.
  // detlint: hot-slot
  struct alignas(64) CorpusShard {
    std::uint64_t total_queries = 0;
    std::vector<std::size_t> queries_per_page;  ///< ranks lo..hi, in order
    std::map<dns::Name, std::uint64_t> query_counts;
  };
  CorpusShard corpus_shard(std::size_t lo, std::size_t hi);

  /// Fold rank-ordered shards into final corpus statistics. Shards must be
  /// passed in ascending rank order and cover disjoint ranges.
  static CorpusStats merge_corpus_shards(std::vector<CorpusShard> shards);

  const AlexaModelConfig& config() const noexcept { return config_; }

  /// The i-th shared third-party domain (0-based), e.g. "tp17.thirdparty.example".
  dns::Name third_party_domain(std::size_t index) const;
  /// Primary domain for a rank, e.g. "site42.web.example".
  static dns::Name primary_domain(std::size_t rank);

 private:
  AlexaModelConfig config_;
  /// Shared popularity table (its cumulative masses are expensive to
  /// build); pages draw from it with their own per-rank RNGs.
  stats::ZipfSampler third_party_popularity_;
};

}  // namespace dohperf::workload
