#include "workload/alexa.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace dohperf::workload {

std::vector<dns::Name> Page::unique_domains() const {
  std::set<dns::Name> seen;
  seen.insert(primary);
  for (const auto& obj : objects) seen.insert(obj.domain);
  return {seen.begin(), seen.end()};
}

AlexaPageModel::AlexaPageModel(AlexaModelConfig config)
    : config_(config),
      third_party_popularity_(config_.third_party_pool,
                              config_.zipf_exponent, /*seed=*/0) {}

dns::Name AlexaPageModel::third_party_domain(std::size_t index) const {
  return dns::Name::parse("tp" + std::to_string(index) +
                          ".thirdparty.example");
}

dns::Name AlexaPageModel::primary_domain(std::size_t rank) {
  return dns::Name::parse("site" + std::to_string(rank) + ".web.example");
}

Page AlexaPageModel::page(std::size_t rank) {
  // Per-rank deterministic RNG so pages are stable independent of the
  // order they are generated in.
  stats::SplitMix64 rng(config_.seed ^ (rank * 0x9e3779b97f4a7c15ULL));
  stats::LogNormalSampler query_count(config_.queries_mu,
                                      config_.queries_sigma,
                                      rng.next());
  stats::LogNormalSampler object_size(config_.object_mu, config_.object_sigma,
                                      rng.next());

  Page page;
  page.rank = rank;
  page.primary = primary_domain(rank);
  page.html_bytes =
      static_cast<std::size_t>(std::clamp(object_size.sample(), 2e3, 5e5));

  // Number of *distinct resolutions* the page needs (what Figure 1 counts),
  // including the primary domain itself.
  const auto resolutions = static_cast<std::size_t>(std::clamp(
      query_count.sample(), 1.0, static_cast<double>(config_.max_queries)));

  // Pick the set of domains: the primary plus (resolutions - 1) others,
  // mostly shared third parties (popular by Zipf), the rest being
  // page-specific subdomains (cdn.siteX, img.siteX, ...).
  std::vector<dns::Name> domains{page.primary};
  std::set<dns::Name> seen{page.primary};
  int subdomain_counter = 0;
  while (domains.size() < resolutions) {
    dns::Name candidate =
        rng.next_double() < config_.third_party_fraction
            ? third_party_domain(third_party_popularity_.sample(rng) - 1)
            : page.primary.child("cdn" + std::to_string(subdomain_counter++));
    if (seen.insert(candidate).second) domains.push_back(candidate);
  }

  // Objects: at least one per non-primary domain (that is what forced the
  // resolution), plus extra objects on already-resolved origins.
  for (std::size_t i = 1; i < domains.size(); ++i) {
    PageObject obj;
    obj.domain = domains[i];
    obj.bytes = static_cast<std::size_t>(
        std::clamp(object_size.sample(), 200.0, 2e6));
    // Discovery depth: most objects are in the HTML, some come from
    // CSS/JS chains (depth 1-2).
    const double d = rng.next_double();
    obj.depth = d < 0.70 ? 0 : (d < 0.93 ? 1 : 2);
    page.objects.push_back(obj);
  }
  // Extra objects on existing origins (images, scripts...) — they add
  // fetch work but no DNS queries.
  const auto extra = static_cast<std::size_t>(
      static_cast<double>(domains.size()) * (0.5 + rng.next_double()));
  for (std::size_t i = 0; i < extra; ++i) {
    PageObject obj;
    obj.domain = domains[rng.next_below(domains.size())];
    obj.bytes = static_cast<std::size_t>(
        std::clamp(object_size.sample(), 200.0, 2e6));
    const double d = rng.next_double();
    obj.depth = d < 0.70 ? 0 : (d < 0.93 ? 1 : 2);
    page.objects.push_back(obj);
  }

  // Wire up parents: each depth-d object is discovered by a random
  // depth-(d-1) object; falls back to the HTML (-1) when none exists.
  std::vector<int> by_depth[3];
  for (std::size_t i = 0; i < page.objects.size(); ++i) {
    const int d = page.objects[i].depth;
    by_depth[d].push_back(static_cast<int>(i));
  }
  for (auto& obj : page.objects) {
    if (obj.depth == 0) continue;
    const auto& parents = by_depth[obj.depth - 1];
    if (parents.empty()) {
      obj.depth = 0;
      continue;
    }
    obj.parent = parents[rng.next_below(parents.size())];
  }
  return page;
}

AlexaPageModel::CorpusShard AlexaPageModel::corpus_shard(std::size_t lo,
                                                         std::size_t hi) {
  CorpusShard shard;
  if (lo == 0) lo = 1;
  if (hi >= lo) shard.queries_per_page.reserve(hi - lo + 1);
  for (std::size_t rank = lo; rank <= hi; ++rank) {
    const Page p = page(rank);
    const auto domains = p.unique_domains();
    shard.queries_per_page.push_back(domains.size());
    shard.total_queries += domains.size();
    for (const auto& d : domains) ++shard.query_counts[d];
  }
  return shard;
}

AlexaPageModel::CorpusStats AlexaPageModel::merge_corpus_shards(
    std::vector<CorpusShard> shards) {
  CorpusStats stats;
  std::map<dns::Name, std::uint64_t> query_counts;
  for (auto& shard : shards) {
    stats.total_queries += shard.total_queries;
    stats.queries_per_page.insert(stats.queries_per_page.end(),
                                  shard.queries_per_page.begin(),
                                  shard.queries_per_page.end());
    if (query_counts.empty()) {
      query_counts = std::move(shard.query_counts);
    } else {
      for (const auto& [name, c] : shard.query_counts) {
        query_counts[name] += c;
      }
    }
  }
  stats.unique_domains = query_counts.size();

  std::vector<std::uint64_t> counts;
  counts.reserve(query_counts.size());
  for (const auto& [name, c] : query_counts) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t top15 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(15, counts.size()); ++i) {
    top15 += counts[i];
  }
  stats.top15_query_share =
      stats.total_queries == 0
          ? 0.0
          : static_cast<double>(top15) /
                static_cast<double>(stats.total_queries);
  return stats;
}

AlexaPageModel::CorpusStats AlexaPageModel::corpus_stats(std::size_t n) {
  std::vector<CorpusShard> one;
  one.push_back(corpus_shard(1, n));
  return merge_corpus_shards(std::move(one));
}

}  // namespace dohperf::workload
