#include "quicsim/connection.hpp"

#include <algorithm>
#include <cassert>

namespace dohperf::quicsim {

using tlssim::HsType;

QuicConnection::QuicConnection(simnet::EventLoop& loop, DatagramSender sender,
                               std::uint64_t connection_id,
                               tlssim::ClientConfig tls,
                               QuicConnectionConfig config)
    : loop_(loop), sender_(std::move(sender)), connection_id_(connection_id),
      role_(Role::kClient), client_tls_(std::move(tls)), config_(config),
      next_stream_id_(0) {
  start_client_handshake();
}

QuicConnection::QuicConnection(simnet::EventLoop& loop, DatagramSender sender,
                               std::uint64_t connection_id,
                               const tlssim::ServerConfig* tls,
                               QuicConnectionConfig config)
    : loop_(loop), sender_(std::move(sender)), connection_id_(connection_id),
      role_(Role::kServer), server_tls_(tls), config_(config),
      next_stream_id_(1) {
  assert(tls != nullptr);
}

QuicConnection::~QuicConnection() { loop_.cancel(pto_timer_); }

void QuicConnection::start_client_handshake() {
  tlssim::ClientHello ch;
  ch.min_version = tlssim::TlsVersion::kTls13;  // QUIC v1 requires TLS 1.3
  ch.max_version = tlssim::TlsVersion::kTls13;
  ch.sni = client_tls_.sni;
  ch.alpn = client_tls_.alpn.empty() ? std::vector<std::string>{"doq"}
                                     : client_tls_.alpn;
  dns::ByteWriter w;
  tlssim::encode_client_hello(w, ch);

  CryptoFrame crypto;
  crypto.offset = crypto_tx_offset_;
  crypto.data = w.take();
  crypto_tx_offset_ += crypto.data.size();
  counters_.handshake_bytes += crypto.data.size();

  // RFC 9000 §8.1: the Initial must be padded to at least 1200 bytes.
  std::vector<Frame> frames{std::move(crypto)};
  Packet probe;
  probe.long_header = true;
  probe.frames = frames;
  const std::size_t unpadded = probe.udp_wire_size();
  if (unpadded < kMinInitialPayload) {
    PaddingFrame padding;
    padding.length = static_cast<std::uint16_t>(kMinInitialPayload - unpadded);
    counters_.handshake_bytes += padding.length;
    frames.push_back(padding);
  }
  send_packet(std::move(frames), /*long_header=*/true);
}

void QuicConnection::send_packet(std::vector<Frame> frames,
                                 bool long_header) {
  if (closed_) return;
  Packet packet;
  packet.long_header = long_header;
  packet.connection_id = connection_id_;
  packet.packet_number = next_packet_number_++;
  packet.frames = std::move(frames);

  ++counters_.packets_sent;
  counters_.wire_bytes_sent += packet.udp_wire_size();
  for (const auto& f : packet.frames) {
    if (const auto* sf = std::get_if<StreamFrame>(&f)) {
      counters_.stream_bytes_sent += sf->data.size();
    }
  }
  if (packet.ack_eliciting()) {
    unacked_.emplace(packet.packet_number,
                     SentPacket{packet, loop_.now()});
    arm_pto();
  }
  // Strip the IP+UDP accounting part for the actual datagram payload.
  sender_(packet.encode());
}

void QuicConnection::handle_datagram(std::span<const std::uint8_t> payload) {
  if (closed_) return;
  Packet packet;
  try {
    packet = Packet::decode(payload);
  } catch (const dns::WireError&) {
    return;  // garbage datagram: dropped, like real QUIC
  }
  ++counters_.packets_received;
  counters_.wire_bytes_received += packet.udp_wire_size();

  bool needs_ack = false;
  for (const auto& frame : packet.frames) {
    if (is_ack_eliciting(frame)) needs_ack = true;
    handle_frame(frame);
    if (closed_) return;
  }
  if (needs_ack) {
    ack_pending_.push_back(packet.packet_number);
    schedule_ack();
  }
}

void QuicConnection::handle_frame(const Frame& frame) {
  std::visit(
      [this](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, AckFrame>) {
          for (const auto pn : f.acked) {
            const auto it = unacked_.find(pn);
            if (it == unacked_.end()) continue;
            // RTT sample (RFC 9002 §5): retransmitted frames travel in new
            // packet numbers, so every sample is unambiguous.
            const auto rtt =
                static_cast<double>(loop_.now() - it->second.sent_at);
            if (srtt_us_ == 0.0) {
              srtt_us_ = rtt;
              rttvar_us_ = rtt / 2.0;
            } else {
              rttvar_us_ =
                  0.75 * rttvar_us_ + 0.25 * std::abs(srtt_us_ - rtt);
              srtt_us_ = 0.875 * srtt_us_ + 0.125 * rtt;
            }
            unacked_.erase(it);
          }
          if (unacked_.empty()) {
            loop_.cancel(pto_timer_);
            pto_timer_ = simnet::EventId{};
            pto_backoff_ = 0;
          }
        } else if constexpr (std::is_same_v<T, CryptoFrame>) {
          handle_crypto(f);
        } else if constexpr (std::is_same_v<T, StreamFrame>) {
          handle_stream(f);
        } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
          closed_ = true;
          loop_.cancel(pto_timer_);
          if (on_closed_) on_closed_();
        } else if constexpr (std::is_same_v<T, HandshakeDoneFrame>) {
          // Client: server confirmed the handshake; nothing further needed.
        } else if constexpr (std::is_same_v<T, PathChallengeFrame>) {
          // Echo on the (possibly new) path; never blocked on anything.
          send_packet({PathResponseFrame{f.data}}, /*long_header=*/false);
        } else if constexpr (std::is_same_v<T, PathResponseFrame>) {
          if (outstanding_path_token_ != 0 &&
              f.data == outstanding_path_token_) {
            outstanding_path_token_ = 0;
            ++counters_.path_validations;
            if (on_path_validated_) on_path_validated_();
          }
        }
        // Padding and ping need no action.
      },
      frame);
}

void QuicConnection::handle_crypto(const CryptoFrame& frame) {
  counters_.handshake_bytes += frame.data.size();
  // Reassemble at the right offset (frames can arrive out of order).
  const std::size_t end = frame.offset + frame.data.size();
  if (crypto_rx_.size() < end) crypto_rx_.resize(end);
  std::copy(frame.data.begin(), frame.data.end(),
            crypto_rx_.begin() + static_cast<std::ptrdiff_t>(frame.offset));
  process_crypto_buffer();
}

void QuicConnection::process_crypto_buffer() {
  // Parse complete handshake messages (4-byte header + body).
  while (crypto_rx_.size() - crypto_rx_consumed_ >= 4) {
    dns::ByteReader peek(crypto_rx_);
    peek.seek(crypto_rx_consumed_ + 1);
    const std::size_t body_len =
        (static_cast<std::size_t>(peek.u8()) << 16) | peek.u16();
    const std::size_t total = 4 + body_len;
    if (crypto_rx_.size() - crypto_rx_consumed_ < total) return;
    dns::ByteReader r(crypto_rx_);
    r.seek(crypto_rx_consumed_);
    const auto msg = tlssim::decode_handshake(r);
    crypto_rx_consumed_ += total;
    handle_handshake_message(msg);
    if (closed_) return;
  }
}

void QuicConnection::handle_handshake_message(
    const tlssim::HandshakeMessage& msg) {
  switch (msg.type) {
    case HsType::kClientHello: {
      assert(role_ == Role::kServer);
      alpn_ = msg.client_hello->alpn.empty() ? "doq"
                                             : msg.client_hello->alpn.front();
      // Server flight: SH + EE + Certificate + CV + Finished, split across
      // packets so each stays under the MTU.
      dns::ByteWriter flight;
      tlssim::ServerHello sh;
      sh.version = tlssim::TlsVersion::kTls13;
      sh.alpn = alpn_;
      tlssim::encode_server_hello(flight, sh);
      tlssim::encode_plain(flight, HsType::kEncryptedExtensions,
                           tlssim::kEncryptedExtensionsBody);
      tlssim::CertificateMsg cert;
      cert.subject = server_tls_->chain.subject;
      cert.certificate_count =
          static_cast<std::uint8_t>(server_tls_->chain.certificate_count);
      cert.ct_logged = server_tls_->chain.ct_logged;
      cert.ocsp_must_staple = server_tls_->chain.ocsp_must_staple;
      cert.chain_bytes =
          static_cast<std::uint32_t>(server_tls_->chain.wire_bytes);
      tlssim::encode_certificate(flight, cert);
      tlssim::encode_plain(flight, HsType::kCertificateVerify,
                           tlssim::kCertificateVerifyBody);
      tlssim::encode_plain(flight, HsType::kFinished, tlssim::kFinishedBody);

      const Bytes bytes = flight.take();
      counters_.handshake_bytes += bytes.size();
      std::size_t offset = 0;
      while (offset < bytes.size()) {
        const std::size_t chunk =
            std::min(kMaxPacketPayload, bytes.size() - offset);
        CryptoFrame crypto;
        crypto.offset = crypto_tx_offset_ + offset;
        crypto.data.assign(
            bytes.begin() + static_cast<std::ptrdiff_t>(offset),
            bytes.begin() + static_cast<std::ptrdiff_t>(offset + chunk));
        send_packet({std::move(crypto)}, /*long_header=*/true);
        offset += chunk;
      }
      crypto_tx_offset_ += bytes.size();
      return;
    }
    case HsType::kServerHello:
      assert(role_ == Role::kClient);
      alpn_ = msg.server_hello->alpn;
      return;
    case HsType::kEncryptedExtensions:
    case HsType::kCertificate:
    case HsType::kCertificateVerify:
      return;
    case HsType::kFinished: {
      if (role_ == Role::kClient) {
        // Reply with our Finished; the handshake is complete for us and we
        // may send 1-RTT data immediately.
        dns::ByteWriter fin;
        tlssim::encode_plain(fin, HsType::kFinished, tlssim::kFinishedBody);
        CryptoFrame crypto;
        crypto.offset = crypto_tx_offset_;
        crypto.data = fin.take();
        crypto_tx_offset_ += crypto.data.size();
        counters_.handshake_bytes += crypto.data.size();
        send_packet({std::move(crypto)}, /*long_header=*/true);
        become_established();
      } else {
        become_established();
        if (!handshake_done_sent_) {
          handshake_done_sent_ = true;
          send_packet({HandshakeDoneFrame{}}, /*long_header=*/false);
        }
      }
      return;
    }
    default:
      return;
  }
}

void QuicConnection::become_established() {
  if (established_) return;
  established_ = true;
  if (on_established_) on_established_();
  flush_pending_streams();
}

std::uint64_t QuicConnection::open_stream() {
  const std::uint64_t id = next_stream_id_;
  next_stream_id_ += 4;  // QUIC stream-id spacing per initiator/direction
  return id;
}

void QuicConnection::send_stream(std::uint64_t stream_id, Bytes data,
                                 bool fin) {
  if (closed_) throw std::logic_error("send on closed QUIC connection");
  if (!established_) {
    pending_writes_.push_back({stream_id, std::move(data), fin});
    return;
  }
  auto& offset = tx_offsets_[stream_id];
  std::size_t sent = 0;
  do {
    const std::size_t chunk =
        std::min(kMaxPacketPayload, data.size() - sent);
    StreamFrame frame;
    frame.stream_id = stream_id;
    frame.offset = offset;
    frame.data.assign(data.begin() + static_cast<std::ptrdiff_t>(sent),
                      data.begin() + static_cast<std::ptrdiff_t>(sent + chunk));
    sent += chunk;
    offset += chunk;
    frame.fin = fin && sent >= data.size();
    send_packet({std::move(frame)}, /*long_header=*/false);
  } while (sent < data.size());
}

void QuicConnection::flush_pending_streams() {
  auto writes = std::move(pending_writes_);
  pending_writes_.clear();
  for (auto& w : writes) {
    send_stream(w.stream_id, std::move(w.data), w.fin);
  }
}

void QuicConnection::handle_stream(const StreamFrame& frame) {
  counters_.stream_bytes_received += frame.data.size();
  RxStream& stream = rx_streams_[frame.stream_id];
  if (!frame.data.empty()) {
    stream.segments.emplace(frame.offset, frame.data);
  }
  if (frame.fin) {
    stream.fin_offset = frame.offset + frame.data.size();
  }
  deliver_stream(frame.stream_id);
}

void QuicConnection::deliver_stream(std::uint64_t stream_id) {
  RxStream& stream = rx_streams_[stream_id];
  for (;;) {
    const auto it = stream.segments.find(stream.delivered);
    const bool fin_now = stream.fin_offset == stream.delivered &&
                         !stream.fin_delivered &&
                         it == stream.segments.end();
    if (fin_now) {
      stream.fin_delivered = true;
      if (on_stream_data_) on_stream_data_(stream_id, {}, true);
      return;
    }
    if (it == stream.segments.end()) return;
    Bytes data = std::move(it->second);
    stream.segments.erase(it);
    stream.delivered += data.size();
    const bool fin = stream.fin_offset == stream.delivered;
    if (fin) stream.fin_delivered = true;
    if (on_stream_data_) on_stream_data_(stream_id, data, fin);
    if (fin) return;
  }
}

void QuicConnection::schedule_ack() {
  if (ack_scheduled_) return;
  ack_scheduled_ = true;
  // Flush at the end of the current instant so several packets arriving
  // together share one ACK.
  loop_.schedule_in(0, [this]() { flush_acks(); });
}

void QuicConnection::flush_acks() {
  ack_scheduled_ = false;
  if (ack_pending_.empty() || closed_) return;
  AckFrame ack;
  ack.acked = std::move(ack_pending_);
  ack_pending_.clear();
  send_packet({std::move(ack)}, /*long_header=*/!established_);
}

simnet::TimeUs QuicConnection::current_pto() const noexcept {
  if (srtt_us_ == 0.0) return config_.pto_initial;
  // RFC 9002 §6.2.1: PTO = smoothed RTT + max(4*rttvar, granularity)
  // + max_ack_delay (we flush ACKs immediately, so a small grace term).
  const double pto = srtt_us_ + std::max(4.0 * rttvar_us_, 1000.0) + 1000.0;
  return std::max<simnet::TimeUs>(static_cast<simnet::TimeUs>(pto),
                                  simnet::ms(10));
}

void QuicConnection::arm_pto() {
  if (pto_timer_.valid) return;
  const simnet::TimeUs timeout =
      std::min(current_pto() << pto_backoff_, config_.pto_max);
  pto_timer_ = loop_.schedule_in(timeout, [this]() {
    pto_timer_ = simnet::EventId{};
    on_pto();
  });
}

void QuicConnection::on_pto() {
  if (closed_ || unacked_.empty()) return;
  if (pto_backoff_ >= 8) {
    // Idle/handshake timeout: the peer has not acknowledged anything for
    // many probe periods; give the connection up rather than probing
    // forever (RFC 9000's idle timeout).
    close(/*error_code=*/1);
    return;
  }
  ++pto_backoff_;
  // Retransmit the ack-eliciting frames of every unacked packet in fresh
  // packets (QUIC never retransmits packets, only frames).
  auto lost = std::move(unacked_);
  unacked_.clear();
  for (auto& [pn, sent] : lost) {
    std::vector<Frame> frames;
    for (auto& f : sent.packet.frames) {
      if (is_ack_eliciting(f)) frames.push_back(std::move(f));
    }
    if (!frames.empty()) {
      ++counters_.retransmits;
      send_packet(std::move(frames), sent.packet.long_header);
    }
  }
}

void QuicConnection::probe_path() {
  if (closed_) return;
  outstanding_path_token_ = ++next_path_token_;
  send_packet({PathChallengeFrame{outstanding_path_token_}},
              /*long_header=*/false);
}

void QuicConnection::close(std::uint64_t error_code) {
  if (closed_) return;
  send_packet({ConnectionCloseFrame{error_code}}, /*long_header=*/false);
  closed_ = true;
  loop_.cancel(pto_timer_);
  pto_timer_ = simnet::EventId{};
  // Symmetric notification: locally-initiated closes also fire on_closed_
  // so owners can drop per-connection state before the object goes away.
  if (const auto on_closed = on_closed_) on_closed();
}

}  // namespace dohperf::quicsim
