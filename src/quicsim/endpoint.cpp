#include "quicsim/endpoint.hpp"

namespace dohperf::quicsim {

namespace {

/// Deterministic connection id from the client's address (unique per
/// socket, stable per run).
std::uint64_t make_connection_id(const simnet::Address& local) {
  return (static_cast<std::uint64_t>(local.node) << 32) | local.port;
}

}  // namespace

QuicClientEndpoint::QuicClientEndpoint(simnet::Host& host,
                                       simnet::Address server,
                                       tlssim::ClientConfig tls,
                                       QuicConnectionConfig config)
    : host_(host), socket_(&host.udp_open()) {
  auto sender = [this, server](Bytes payload) {
    socket_->send_to(server, std::move(payload));
  };
  connection_ = std::make_unique<QuicConnection>(
      host.loop(), std::move(sender), make_connection_id(socket_->local()),
      std::move(tls), config);
  socket_->set_receiver(
      [this](const Bytes& payload, simnet::Address /*from*/) {
        connection_->handle_datagram(payload);
      });
}

QuicClientEndpoint::~QuicClientEndpoint() { host_.udp_close(*socket_); }

QuicServer::QuicServer(simnet::Host& host, std::uint16_t port,
                       const tlssim::ServerConfig* tls,
                       AcceptHandler on_accept, QuicConnectionConfig config)
    : host_(host), socket_(&host.udp_open(port)), tls_(tls),
      on_accept_(std::move(on_accept)), config_(config) {
  socket_->set_receiver([this](const Bytes& payload, simnet::Address from) {
    on_datagram(payload, from);
  });
}

QuicServer::~QuicServer() { host_.udp_close(*socket_); }

void QuicServer::on_datagram(const Bytes& payload, simnet::Address from) {
  Packet packet;
  try {
    packet = Packet::decode(payload);
  } catch (const dns::WireError&) {
    return;
  }
  auto it = connections_.find(packet.connection_id);
  if (it == connections_.end()) {
    // New connection: only a long-header (Initial) packet may open one.
    if (!packet.long_header) return;
    auto sender = [this, from](Bytes data) {
      socket_->send_to(from, std::move(data));
    };
    auto conn = std::make_unique<QuicConnection>(
        host_.loop(), std::move(sender), packet.connection_id, tls_,
        config_);
    it = connections_.emplace(packet.connection_id, std::move(conn)).first;
    if (on_accept_) on_accept_(*it->second);
  }
  it->second->handle_datagram(payload);

  // Opportunistic cleanup of closed connections (not the one just touched).
  std::erase_if(connections_, [&](const auto& entry) {
    return entry.second->closed() &&
           entry.first != packet.connection_id;
  });
}

}  // namespace dohperf::quicsim
