#include "quicsim/endpoint.hpp"

namespace dohperf::quicsim {

namespace {

/// Deterministic connection id from the client's address (unique per
/// socket, stable per run).
std::uint64_t make_connection_id(const simnet::Address& local) {
  return (static_cast<std::uint64_t>(local.node) << 32) | local.port;
}

}  // namespace

QuicClientEndpoint::QuicClientEndpoint(simnet::Host& host,
                                       simnet::Address server,
                                       tlssim::ClientConfig tls,
                                       QuicConnectionConfig config)
    : host_(host), socket_(&host.udp_open()) {
  auto sender = [this, server](Bytes payload) {
    socket_->send_to(server, std::move(payload));
  };
  connection_ = std::make_unique<QuicConnection>(
      host.loop(), std::move(sender), make_connection_id(socket_->local()),
      std::move(tls), config);
  socket_->set_receiver(
      [this](const Bytes& payload, simnet::Address /*from*/) {
        connection_->handle_datagram(payload);
      });
}

QuicClientEndpoint::~QuicClientEndpoint() { host_.udp_close(*socket_); }

QuicServer::QuicServer(simnet::Host& host, std::uint16_t port,
                       const tlssim::ServerConfig* tls,
                       AcceptHandler on_accept, QuicConnectionConfig config)
    : host_(host), socket_(&host.udp_open(port)), tls_(tls),
      on_accept_(std::move(on_accept)), config_(config) {
  socket_->set_receiver([this](const Bytes& payload, simnet::Address from) {
    on_datagram(payload, from);
  });
}

QuicServer::~QuicServer() { host_.udp_close(*socket_); }

void QuicServer::on_datagram(const Bytes& payload, simnet::Address from) {
  Packet packet;
  try {
    packet = Packet::decode(payload);
  } catch (const dns::WireError&) {
    return;
  }
  auto it = connections_.find(packet.connection_id);
  if (it == connections_.end()) {
    // New connection: only a long-header (Initial) packet may open one.
    if (!packet.long_header) return;
    auto sender = [this, from](Bytes data) {
      socket_->send_to(from, std::move(data));
    };
    auto conn = std::make_unique<QuicConnection>(
        host_.loop(), std::move(sender), packet.connection_id, tls_,
        config_);
    it = connections_.emplace(packet.connection_id, std::move(conn)).first;
    if (config_.allow_migration) {
      peer_addrs_.insert_or_assign(packet.connection_id, from);
    }
    if (on_accept_) on_accept_(*it->second);
  } else if (config_.allow_migration) {
    // Connection migration (RFC 9000 §9): a known cid from a new address.
    // Switch the return path before processing, so the reply to whatever
    // this datagram carries — and every PTO retransmit in flight — already
    // travels the new path, then validate it with a PATH_CHALLENGE.
    const auto addr_it = peer_addrs_.find(packet.connection_id);
    if (addr_it != peer_addrs_.end() && !(addr_it->second == from)) {
      addr_it->second = from;
      it->second->set_sender([this, from](Bytes data) {
        socket_->send_to(from, std::move(data));
      });
      it->second->probe_path();
    }
  }
  it->second->handle_datagram(payload);

  // Opportunistic cleanup of closed connections (not the one just touched).
  std::erase_if(connections_, [&](const auto& entry) {
    if (!entry.second->closed() || entry.first == packet.connection_id) {
      return false;
    }
    peer_addrs_.erase(entry.first);
    return true;
  });
}

}  // namespace dohperf::quicsim
