// QUIC packet encode/decode: one packet per UDP datagram (no coalescing),
// long headers during the handshake, short headers after.
#pragma once

#include "quicsim/types.hpp"

namespace dohperf::quicsim {

struct Packet {
  bool long_header = false;
  std::uint64_t connection_id = 0;
  std::uint64_t packet_number = 0;
  std::vector<Frame> frames;

  /// Serialized size of the frames only (header/tag added by encode()).
  std::size_t frames_size() const;

  bool ack_eliciting() const noexcept;

  /// Encode to a UDP payload: header + frames (+ synthetic AEAD tag).
  Bytes encode() const;

  /// Decode a UDP payload. Throws dns::WireError on malformed input.
  static Packet decode(std::span<const std::uint8_t> payload);

  /// Wire size on the simulated network once sent over UDP (adds IP+UDP).
  std::size_t udp_wire_size() const;
};

void encode_frame(dns::ByteWriter& w, const Frame& frame);
Frame decode_frame(dns::ByteReader& r);

}  // namespace dohperf::quicsim
