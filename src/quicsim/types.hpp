// QUIC simulation: packet/frame model and wire-size constants.
//
// EXTENSION (beyond the paper): the paper's Table 2 probes which providers
// answer on UDP 443 — QUIC, the transport DNS-over-QUIC (RFC 9250) later
// standardized on. This module models QUIC v1 closely enough to compare
// DoQ with DoT/DoH on the axes the paper measures: handshake round trips,
// bytes/packets per resolution, and head-of-line blocking (including the
// *loss-induced* HoL blocking that TCP-based transports suffer and QUIC's
// independent streams avoid).
//
// SUBSTITUTION NOTE: like tlssim, no real cryptography — handshake message
// sizes are realistic (the CRYPTO frames carry the same simulated TLS 1.3
// messages as tlssim), AEAD expansion is counted per packet, and Initials
// are padded to 1200 bytes as RFC 9000 §8.1 requires.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/wire.hpp"

namespace dohperf::quicsim {

using dns::Bytes;

/// Short-header overhead: flags (1) + destination connection id (8) +
/// packet number (4).
constexpr std::size_t kShortHeaderBytes = 13;
/// Long-header overhead (Initial/Handshake): + version + cid lengths.
constexpr std::size_t kLongHeaderBytes = 20;
/// Per-packet AEAD expansion (AES-128-GCM).
constexpr std::size_t kAeadTagBytes = 16;
/// RFC 9000 §8.1: a client's first flight must be at least 1200 bytes of
/// UDP payload (amplification defence).
constexpr std::size_t kMinInitialPayload = 1200;
/// Keep every QUIC packet within one simulated MTU.
constexpr std::size_t kMaxPacketPayload = 1350;

enum class FrameType : std::uint8_t {
  kPadding = 0x00,
  kPing = 0x01,
  kAck = 0x02,
  kCrypto = 0x06,
  kStream = 0x08,
  kPathChallenge = 0x1a,
  kPathResponse = 0x1b,
  kConnectionClose = 0x1c,
  kHandshakeDone = 0x1e,
};

struct PaddingFrame {
  std::uint16_t length = 0;  ///< bytes of padding this frame represents
};

struct PingFrame {};

/// Simplified ACK: the explicit set of packet numbers being acknowledged
/// (real QUIC uses ranges; the size difference is negligible at our scale).
struct AckFrame {
  std::vector<std::uint64_t> acked;
};

/// Carries handshake bytes (the tlssim handshake messages).
struct CryptoFrame {
  std::uint64_t offset = 0;
  Bytes data;
};

struct StreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  bool fin = false;
  Bytes data;
};

struct ConnectionCloseFrame {
  std::uint64_t error_code = 0;
};

struct HandshakeDoneFrame {};

/// RFC 9000 §8.2: path validation after migration. The 8-byte token must
/// be echoed back in a PATH_RESPONSE on the same (new) path.
struct PathChallengeFrame {
  std::uint64_t data = 0;
};

struct PathResponseFrame {
  std::uint64_t data = 0;
};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame,
                           StreamFrame, ConnectionCloseFrame,
                           HandshakeDoneFrame, PathChallengeFrame,
                           PathResponseFrame>;

/// True if loss of this frame requires retransmission.
bool is_ack_eliciting(const Frame& frame) noexcept;

struct QuicCounters {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t wire_bytes_sent = 0;      ///< incl. IP+UDP+QUIC headers+tag
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t handshake_bytes = 0;      ///< CRYPTO payloads + padding, both dirs
  std::uint64_t stream_bytes_sent = 0;    ///< application stream payload
  std::uint64_t stream_bytes_received = 0;
  std::uint64_t retransmits = 0;
  /// Successful path validations (PATH_RESPONSE matched an outstanding
  /// challenge we sent) — one per completed migration on this side.
  std::uint64_t path_validations = 0;

  std::uint64_t total_wire_bytes() const noexcept {
    return wire_bytes_sent + wire_bytes_received;
  }
  std::uint64_t total_packets() const noexcept {
    return packets_sent + packets_received;
  }
};

}  // namespace dohperf::quicsim
