// UDP glue for QUIC: a client endpoint owning one socket/connection, and a
// server demultiplexing connections by connection id on a shared socket.
#pragma once

#include <map>
#include <memory>

#include "quicsim/connection.hpp"
#include "simnet/host.hpp"

namespace dohperf::quicsim {

/// Client side: one UDP socket, one connection.
class QuicClientEndpoint {
 public:
  QuicClientEndpoint(simnet::Host& host, simnet::Address server,
                     tlssim::ClientConfig tls,
                     QuicConnectionConfig config = {});
  ~QuicClientEndpoint();

  QuicClientEndpoint(const QuicClientEndpoint&) = delete;
  QuicClientEndpoint& operator=(const QuicClientEndpoint&) = delete;

  QuicConnection& connection() noexcept { return *connection_; }
  const simnet::UdpCounters& udp_counters() const {
    return socket_->counters();
  }

 private:
  simnet::Host& host_;
  simnet::UdpSocket* socket_;
  std::unique_ptr<QuicConnection> connection_;
};

/// Server side: accepts any number of connections on one UDP port.
class QuicServer {
 public:
  using AcceptHandler = std::function<void(QuicConnection&)>;

  /// `tls` must outlive the server.
  QuicServer(simnet::Host& host, std::uint16_t port,
             const tlssim::ServerConfig* tls, AcceptHandler on_accept,
             QuicConnectionConfig config = {});
  ~QuicServer();

  QuicServer(const QuicServer&) = delete;
  QuicServer& operator=(const QuicServer&) = delete;

  std::size_t connection_count() const noexcept { return connections_.size(); }
  simnet::Address address() const { return socket_->local(); }

 private:
  void on_datagram(const Bytes& payload, simnet::Address from);

  simnet::Host& host_;
  simnet::UdpSocket* socket_;
  const tlssim::ServerConfig* tls_;
  AcceptHandler on_accept_;
  QuicConnectionConfig config_;
  std::map<std::uint64_t, std::unique_ptr<QuicConnection>> connections_;
  /// Last validated-or-initial peer address per connection id; only
  /// maintained when config_.allow_migration is set.
  std::map<std::uint64_t, simnet::Address> peer_addrs_;
};

}  // namespace dohperf::quicsim
