#include "quicsim/packet.hpp"

#include "simnet/packet.hpp"

namespace dohperf::quicsim {

using dns::ByteReader;
using dns::ByteWriter;
using dns::WireError;

bool is_ack_eliciting(const Frame& frame) noexcept {
  return !std::holds_alternative<AckFrame>(frame) &&
         !std::holds_alternative<PaddingFrame>(frame);
}

bool Packet::ack_eliciting() const noexcept {
  for (const auto& f : frames) {
    if (is_ack_eliciting(f)) return true;
  }
  return false;
}

void encode_frame(ByteWriter& w, const Frame& frame) {
  std::visit(
      [&w](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, PaddingFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kPadding));
          w.u16(f.length);
          for (std::uint16_t i = 0; i < f.length; ++i) w.u8(0);
        } else if constexpr (std::is_same_v<T, PingFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kPing));
        } else if constexpr (std::is_same_v<T, AckFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kAck));
          w.u16(static_cast<std::uint16_t>(f.acked.size()));
          for (const auto pn : f.acked) w.u32(static_cast<std::uint32_t>(pn));
        } else if constexpr (std::is_same_v<T, CryptoFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kCrypto));
          w.u32(static_cast<std::uint32_t>(f.offset));
          w.u16(static_cast<std::uint16_t>(f.data.size()));
          w.bytes(f.data);
        } else if constexpr (std::is_same_v<T, StreamFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kStream));
          w.u32(static_cast<std::uint32_t>(f.stream_id));
          w.u32(static_cast<std::uint32_t>(f.offset));
          w.u8(f.fin ? 1 : 0);
          w.u16(static_cast<std::uint16_t>(f.data.size()));
          w.bytes(f.data);
        } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kConnectionClose));
          w.u32(static_cast<std::uint32_t>(f.error_code));
        } else if constexpr (std::is_same_v<T, HandshakeDoneFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kHandshakeDone));
        } else if constexpr (std::is_same_v<T, PathChallengeFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kPathChallenge));
          w.u32(static_cast<std::uint32_t>(f.data >> 32));
          w.u32(static_cast<std::uint32_t>(f.data & 0xffffffff));
        } else if constexpr (std::is_same_v<T, PathResponseFrame>) {
          w.u8(static_cast<std::uint8_t>(FrameType::kPathResponse));
          w.u32(static_cast<std::uint32_t>(f.data >> 32));
          w.u32(static_cast<std::uint32_t>(f.data & 0xffffffff));
        }
      },
      frame);
}

Frame decode_frame(ByteReader& r) {
  const auto type = static_cast<FrameType>(r.u8());
  switch (type) {
    case FrameType::kPadding: {
      PaddingFrame f;
      f.length = r.u16();
      r.skip(f.length);
      return f;
    }
    case FrameType::kPing:
      return PingFrame{};
    case FrameType::kAck: {
      AckFrame f;
      const std::uint16_t n = r.u16();
      f.acked.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) f.acked.push_back(r.u32());
      return f;
    }
    case FrameType::kCrypto: {
      CryptoFrame f;
      f.offset = r.u32();
      const std::uint16_t len = r.u16();
      f.data = r.bytes(len);
      return f;
    }
    case FrameType::kStream: {
      StreamFrame f;
      f.stream_id = r.u32();
      f.offset = r.u32();
      f.fin = r.u8() != 0;
      const std::uint16_t len = r.u16();
      f.data = r.bytes(len);
      return f;
    }
    case FrameType::kConnectionClose: {
      ConnectionCloseFrame f;
      f.error_code = r.u32();
      return f;
    }
    case FrameType::kHandshakeDone:
      return HandshakeDoneFrame{};
    case FrameType::kPathChallenge: {
      PathChallengeFrame f;
      const std::uint64_t hi = r.u32();
      const std::uint64_t lo = r.u32();
      f.data = (hi << 32) | lo;
      return f;
    }
    case FrameType::kPathResponse: {
      PathResponseFrame f;
      const std::uint64_t hi = r.u32();
      const std::uint64_t lo = r.u32();
      f.data = (hi << 32) | lo;
      return f;
    }
  }
  throw WireError("unknown QUIC frame type");
}

std::size_t Packet::frames_size() const {
  ByteWriter w;
  for (const auto& f : frames) encode_frame(w, f);
  return w.size();
}

Bytes Packet::encode() const {
  ByteWriter w;
  // Header: flags byte encodes form; fixed-size connection id + packet
  // number fields (we count realistic sizes via explicit padding below).
  w.u8(long_header ? 0xc0 : 0x40);
  w.u32(static_cast<std::uint32_t>(connection_id >> 32));
  w.u32(static_cast<std::uint32_t>(connection_id & 0xffffffff));
  w.u32(static_cast<std::uint32_t>(packet_number));
  // Bring the header bytes up to the modelled sizes (long headers carry a
  // version and source-cid fields we do not need structurally).
  const std::size_t header_target =
      long_header ? kLongHeaderBytes : kShortHeaderBytes;
  if (w.size() > header_target) {
    throw WireError("QUIC header fields exceed modelled header size");
  }
  while (w.size() < header_target) w.u8(0);

  w.u16(0);  // frame-bytes length, backpatched
  const std::size_t frames_start = w.size();
  for (const auto& f : frames) encode_frame(w, f);
  const std::size_t frames_len = w.size() - frames_start;
  w.patch_u16(header_target, static_cast<std::uint16_t>(frames_len));

  // Synthetic AEAD tag.
  for (std::size_t i = 0; i < kAeadTagBytes; ++i) w.u8(0);
  return w.take();
}

Packet Packet::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Packet p;
  const std::uint8_t flags = r.u8();
  p.long_header = (flags & 0x80) != 0;
  const std::uint64_t hi = r.u32();
  const std::uint64_t lo = r.u32();
  p.connection_id = (hi << 32) | lo;
  p.packet_number = r.u32();
  const std::size_t header_target =
      p.long_header ? kLongHeaderBytes : kShortHeaderBytes;
  r.seek(header_target);
  const std::uint16_t frames_len = r.u16();
  const std::size_t frames_end = r.offset() + frames_len;
  if (frames_end + kAeadTagBytes > payload.size()) {
    throw WireError("QUIC packet truncated");
  }
  while (r.offset() < frames_end) {
    p.frames.push_back(decode_frame(r));
  }
  return p;
}

std::size_t Packet::udp_wire_size() const {
  const std::size_t header =
      long_header ? kLongHeaderBytes : kShortHeaderBytes;
  return simnet::kIpHeaderBytes + simnet::kUdpHeaderBytes + header + 2 +
         frames_size() + kAeadTagBytes;
}

}  // namespace dohperf::quicsim
