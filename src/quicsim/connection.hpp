// The QUIC connection: combined transport+crypto handshake in one round
// trip (CRYPTO frames carrying the simulated TLS 1.3 messages), independent
// bidirectional streams, packet-number-based acknowledgements and
// PTO-driven loss recovery.
//
// The transport is injected as a datagram-send function so the same class
// serves the client (own UDP socket) and the server (socket shared across
// connections, demultiplexed by connection id in QuicServer).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "quicsim/packet.hpp"
#include "simnet/event_loop.hpp"
#include "tlssim/connection.hpp"  // ClientConfig/ServerConfig + handshake msgs

namespace dohperf::quicsim {

struct QuicConnectionConfig {
  simnet::TimeUs pto_initial = simnet::ms(200);  ///< probe timeout
  simnet::TimeUs pto_max = simnet::seconds(10);
  /// Server-side (QuicServer): accept connection migration — when a known
  /// connection id arrives from a new address, switch the return path to
  /// it and validate with a PATH_CHALLENGE. Off by default: the legacy
  /// server keeps replying to the address that opened the connection, so a
  /// re-addressed client is stranded until it reconnects.
  bool allow_migration = false;
};

class QuicConnection {
 public:
  using DatagramSender = std::function<void(Bytes)>;
  using StreamDataHandler =
      std::function<void(std::uint64_t stream_id,
                         std::span<const std::uint8_t> data, bool fin)>;

  enum class Role { kClient, kServer };

  /// Client role: starts the handshake immediately.
  QuicConnection(simnet::EventLoop& loop, DatagramSender sender,
                 std::uint64_t connection_id, tlssim::ClientConfig tls,
                 QuicConnectionConfig config = {});

  /// Server role: `tls` must outlive the connection.
  QuicConnection(simnet::EventLoop& loop, DatagramSender sender,
                 std::uint64_t connection_id,
                 const tlssim::ServerConfig* tls,
                 QuicConnectionConfig config = {});

  ~QuicConnection();

  QuicConnection(const QuicConnection&) = delete;
  QuicConnection& operator=(const QuicConnection&) = delete;

  void set_on_established(std::function<void()> cb) {
    on_established_ = std::move(cb);
  }
  void set_on_stream_data(StreamDataHandler cb) {
    on_stream_data_ = std::move(cb);
  }
  void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
  /// Fired when a PATH_RESPONSE matches an outstanding challenge we sent —
  /// the new path is validated and the migration is complete on this side.
  void set_on_path_validated(std::function<void()> cb) {
    on_path_validated_ = std::move(cb);
  }

  /// Replace the datagram transport mid-connection (connection migration:
  /// the peer moved; subsequent packets — including PTO retransmits of
  /// everything in flight — go out the new path).
  void set_sender(DatagramSender sender) { sender_ = std::move(sender); }

  /// RFC 9000 §8.2: start path validation — send a PATH_CHALLENGE with a
  /// fresh deterministic token on the current path. Ack-eliciting, so loss
  /// is repaired by the normal PTO machinery.
  void probe_path();

  /// Feed one received UDP payload into the connection.
  void handle_datagram(std::span<const std::uint8_t> payload);

  /// Open a new bidirectional stream (client: 0, 4, 8, ...; server: 1, 5...).
  std::uint64_t open_stream();

  /// Send stream data (queued until established). `fin` half-closes it.
  void send_stream(std::uint64_t stream_id, Bytes data, bool fin);

  void close(std::uint64_t error_code = 0);

  bool established() const noexcept { return established_; }
  bool closed() const noexcept { return closed_; }
  std::uint64_t connection_id() const noexcept { return connection_id_; }
  const QuicCounters& counters() const noexcept { return counters_; }
  const std::string& alpn() const noexcept { return alpn_; }

 private:
  struct RxStream {
    std::map<std::uint64_t, Bytes> segments;  ///< offset -> data
    std::uint64_t delivered = 0;
    std::uint64_t fin_offset = std::uint64_t(-1);
    bool fin_delivered = false;
  };

  void start_client_handshake();
  void send_packet(std::vector<Frame> frames, bool long_header);
  void handle_frame(const Frame& frame);
  void handle_crypto(const CryptoFrame& frame);
  void process_crypto_buffer();
  void handle_handshake_message(const tlssim::HandshakeMessage& msg);
  void handle_stream(const StreamFrame& frame);
  void deliver_stream(std::uint64_t stream_id);
  void schedule_ack();
  void flush_acks();
  void arm_pto();
  void on_pto();
  void become_established();
  void flush_pending_streams();

  simnet::EventLoop& loop_;
  DatagramSender sender_;
  std::uint64_t connection_id_;
  Role role_;
  tlssim::ClientConfig client_tls_;
  const tlssim::ServerConfig* server_tls_ = nullptr;
  QuicConnectionConfig config_;
  QuicCounters counters_;

  std::function<void()> on_established_;
  StreamDataHandler on_stream_data_;
  std::function<void()> on_closed_;
  std::function<void()> on_path_validated_;

  bool established_ = false;
  bool closed_ = false;
  bool handshake_done_sent_ = false;
  std::string alpn_;

  std::uint64_t next_packet_number_ = 0;
  std::uint64_t next_stream_id_;
  // Path validation: the token of the newest challenge we sent; any match
  // validates (stale responses to earlier probes are ignored).
  std::uint64_t next_path_token_ = 0;
  std::uint64_t outstanding_path_token_ = 0;

  // Crypto stream reassembly.
  Bytes crypto_rx_;
  std::uint64_t crypto_rx_consumed_ = 0;
  std::uint64_t crypto_tx_offset_ = 0;

  // Streams.
  std::map<std::uint64_t, RxStream> rx_streams_;
  struct PendingStreamWrite {
    std::uint64_t stream_id;
    Bytes data;
    bool fin;
  };
  std::vector<PendingStreamWrite> pending_writes_;
  std::map<std::uint64_t, std::uint64_t> tx_offsets_;

  // Acknowledgement + loss recovery.
  std::vector<std::uint64_t> ack_pending_;
  bool ack_scheduled_ = false;
  struct SentPacket {
    Packet packet;
    simnet::TimeUs sent_at = 0;
  };
  std::map<std::uint64_t, SentPacket> unacked_;
  simnet::EventId pto_timer_;
  int pto_backoff_ = 0;
  // RFC 9002-style RTT estimation driving the probe timeout.
  double srtt_us_ = 0.0;
  double rttvar_us_ = 0.0;
  simnet::TimeUs current_pto() const noexcept;
};

}  // namespace dohperf::quicsim
