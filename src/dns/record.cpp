#include "dns/record.hpp"

#include <sstream>

namespace dohperf::dns {

std::string to_string(RType t) {
  switch (t) {
    case RType::kA: return "A";
    case RType::kNS: return "NS";
    case RType::kCNAME: return "CNAME";
    case RType::kSOA: return "SOA";
    case RType::kPTR: return "PTR";
    case RType::kMX: return "MX";
    case RType::kTXT: return "TXT";
    case RType::kAAAA: return "AAAA";
    case RType::kOPT: return "OPT";
    case RType::kCAA: return "CAA";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(Rcode rc) {
  switch (rc) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<std::uint8_t>(rc));
}

ARdata ARdata::parse(std::string_view dotted) {
  ARdata out;
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t dot = dotted.find('.', start);
    const std::string_view part =
        i == 3 ? dotted.substr(start)
               : dotted.substr(start, dot - start);
    if (part.empty() || part.size() > 3 ||
        (i < 3 && dot == std::string_view::npos)) {
      throw WireError("invalid IPv4 address: " + std::string(dotted));
    }
    int value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        throw WireError("invalid IPv4 address: " + std::string(dotted));
      }
      value = value * 10 + (c - '0');
    }
    if (value > 255) {
      throw WireError("invalid IPv4 octet: " + std::string(dotted));
    }
    out.addr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    start = dot + 1;
  }
  return out;
}

std::string ARdata::to_string() const {
  std::ostringstream os;
  os << int{addr[0]} << '.' << int{addr[1]} << '.' << int{addr[2]} << '.'
     << int{addr[3]};
  return os.str();
}

std::string AaaaRdata::to_string() const {
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < 16; i += 2) {
    if (i) out += ':';
    out += hex[addr[i] >> 4];
    out += hex[addr[i] & 0xf];
    out += hex[addr[i + 1] >> 4];
    out += hex[addr[i + 1] & 0xf];
  }
  return out;
}

ResourceRecord ResourceRecord::a(const Name& name, std::string_view addr,
                                 std::uint32_t ttl) {
  return {name, RType::kA, RClass::kIN, ttl, ARdata::parse(addr)};
}

ResourceRecord ResourceRecord::cname(const Name& name, const Name& target,
                                     std::uint32_t ttl) {
  return {name, RType::kCNAME, RClass::kIN, ttl, CnameRdata{target}};
}

ResourceRecord ResourceRecord::txt(const Name& name, std::string_view text,
                                   std::uint32_t ttl) {
  TxtRdata rd;
  // Split into <=255 octet segments as the wire format requires.
  for (std::size_t pos = 0; pos < text.size(); pos += 255) {
    rd.strings.emplace_back(text.substr(pos, 255));
  }
  if (rd.strings.empty()) rd.strings.emplace_back();
  return {name, RType::kTXT, RClass::kIN, ttl, std::move(rd)};
}

ResourceRecord ResourceRecord::caa(const Name& name, std::uint8_t flags,
                                   std::string_view tag,
                                   std::string_view value, std::uint32_t ttl) {
  return {name, RType::kCAA, RClass::kIN, ttl,
          CaaRdata{flags, std::string(tag), std::string(value)}};
}

ResourceRecord ResourceRecord::opt(std::uint16_t udp_payload_size,
                                   bool dnssec_ok) {
  OptRdata rd;
  rd.udp_payload_size = udp_payload_size;
  rd.dnssec_ok = dnssec_ok;
  return {Name::root(), RType::kOPT, RClass::kIN, 0, std::move(rd)};
}

namespace {

/// Encode typed rdata into `w` (no length prefix; caller backpatches).
void encode_rdata(ByteWriter& w, NameCompressor& compressor,
                  const Rdata& rdata) {
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.bytes(rd.addr);
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          w.bytes(rd.addr);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          compressor.write(w, rd.target);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          compressor.write(w, rd.nsdname);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          compressor.write(w, rd.ptrdname);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(rd.preference);
          compressor.write(w, rd.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : rd.strings) {
            if (s.size() > 255) throw WireError("TXT segment > 255");
            w.u8(static_cast<std::uint8_t>(s.size()));
            w.string(s);
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          compressor.write(w, rd.mname);
          compressor.write(w, rd.rname);
          w.u32(rd.serial);
          w.u32(rd.refresh);
          w.u32(rd.retry);
          w.u32(rd.expire);
          w.u32(rd.minimum);
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          if (rd.tag.empty() || rd.tag.size() > 255) {
            throw WireError("CAA tag length invalid");
          }
          w.u8(rd.flags);
          w.u8(static_cast<std::uint8_t>(rd.tag.size()));
          w.string(rd.tag);
          w.string(rd.value);
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          for (const auto& opt : rd.options) {
            w.u16(opt.code);
            w.u16(static_cast<std::uint16_t>(opt.data.size()));
            w.bytes(opt.data);
          }
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.bytes(rd.data);
        }
      },
      rdata);
}

Rdata decode_rdata(ByteReader& r, RType type, std::uint16_t rdlength) {
  const std::size_t end = r.offset() + rdlength;
  Rdata out;
  switch (type) {
    case RType::kA: {
      if (rdlength != 4) throw WireError("A RDLENGTH != 4");
      ARdata rd;
      const auto b = r.bytes(4);
      std::copy(b.begin(), b.end(), rd.addr.begin());
      out = rd;
      break;
    }
    case RType::kAAAA: {
      if (rdlength != 16) throw WireError("AAAA RDLENGTH != 16");
      AaaaRdata rd;
      const auto b = r.bytes(16);
      std::copy(b.begin(), b.end(), rd.addr.begin());
      out = rd;
      break;
    }
    case RType::kCNAME:
      out = CnameRdata{read_name(r)};
      break;
    case RType::kNS:
      out = NsRdata{read_name(r)};
      break;
    case RType::kPTR:
      out = PtrRdata{read_name(r)};
      break;
    case RType::kMX: {
      MxRdata rd;
      rd.preference = r.u16();
      rd.exchange = read_name(r);
      out = rd;
      break;
    }
    case RType::kTXT: {
      TxtRdata rd;
      while (r.offset() < end) {
        const std::uint8_t len = r.u8();
        rd.strings.push_back(r.string(len));
      }
      out = rd;
      break;
    }
    case RType::kSOA: {
      SoaRdata rd;
      rd.mname = read_name(r);
      rd.rname = read_name(r);
      rd.serial = r.u32();
      rd.refresh = r.u32();
      rd.retry = r.u32();
      rd.expire = r.u32();
      rd.minimum = r.u32();
      out = rd;
      break;
    }
    case RType::kCAA: {
      CaaRdata rd;
      rd.flags = r.u8();
      const std::uint8_t tag_len = r.u8();
      rd.tag = r.string(tag_len);
      rd.value = r.string(end - r.offset());
      out = rd;
      break;
    }
    case RType::kOPT: {
      OptRdata rd;  // header fields filled in by the caller
      while (r.offset() < end) {
        EdnsOption opt;
        opt.code = r.u16();
        const std::uint16_t len = r.u16();
        opt.data = r.bytes(len);
        rd.options.push_back(std::move(opt));
      }
      out = rd;
      break;
    }
    default:
      out = RawRdata{r.bytes(rdlength)};
      break;
  }
  if (r.offset() != end) {
    throw WireError("RDATA length mismatch for " + to_string(type));
  }
  return out;
}

}  // namespace

void ResourceRecord::encode(ByteWriter& w, NameCompressor& compressor) const {
  if (type == RType::kOPT) {
    // OPT overloads name/class/ttl (RFC 6891 §6.1.2).
    const auto& rd = std::get<OptRdata>(rdata);
    w.u8(0);  // root name, never compressed
    w.u16(static_cast<std::uint16_t>(RType::kOPT));
    w.u16(rd.udp_payload_size);
    w.u8(rd.extended_rcode);
    w.u8(rd.version);
    w.u16(rd.dnssec_ok ? 0x8000 : 0);
  } else {
    compressor.write(w, name);
    w.u16(static_cast<std::uint16_t>(type));
    w.u16(static_cast<std::uint16_t>(rclass));
    w.u32(ttl);
  }
  const std::size_t len_pos = w.size();
  w.u16(0);  // RDLENGTH backpatched below
  const std::size_t rdata_start = w.size();
  encode_rdata(w, compressor, rdata);
  const std::size_t rdlen = w.size() - rdata_start;
  if (rdlen > 0xffff) throw WireError("RDATA exceeds 65535 octets");
  w.patch_u16(len_pos, static_cast<std::uint16_t>(rdlen));
}

ResourceRecord ResourceRecord::decode(ByteReader& r) {
  ResourceRecord rr;
  rr.name = read_name(r);
  rr.type = static_cast<RType>(r.u16());
  if (rr.type == RType::kOPT) {
    OptRdata rd;
    rd.udp_payload_size = r.u16();
    rd.extended_rcode = r.u8();
    rd.version = r.u8();
    rd.dnssec_ok = (r.u16() & 0x8000) != 0;
    const std::uint16_t rdlength = r.u16();
    auto decoded = decode_rdata(r, RType::kOPT, rdlength);
    rd.options = std::get<OptRdata>(decoded).options;
    rr.rclass = RClass::kIN;
    rr.ttl = 0;
    rr.rdata = std::move(rd);
    return rr;
  }
  rr.rclass = static_cast<RClass>(r.u16());
  rr.ttl = r.u32();
  const std::uint16_t rdlength = r.u16();
  rr.rdata = decode_rdata(r, rr.type, rdlength);
  return rr;
}

std::string ResourceRecord::to_string() const {
  std::ostringstream os;
  os << name.to_string() << ' ' << ttl << " IN " << dns::to_string(type) << ' ';
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata> ||
                      std::is_same_v<T, AaaaRdata>) {
          os << rd.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          os << rd.target.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          os << rd.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          os << rd.ptrdname.to_string();
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          os << rd.preference << ' ' << rd.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : rd.strings) os << '"' << s << "\" ";
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          os << rd.mname.to_string() << ' ' << rd.rname.to_string() << ' '
             << rd.serial;
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          os << int{rd.flags} << ' ' << rd.tag << " \"" << rd.value << '"';
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          os << "payload=" << rd.udp_payload_size;
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          os << "\\# " << rd.data.size();
        }
      },
      rdata);
  return os.str();
}

}  // namespace dohperf::dns
