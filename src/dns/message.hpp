// DNS messages (RFC 1035 §4.1): header, question and the four record
// sections, with full encode/decode including name compression and EDNS0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/record.hpp"

namespace dohperf::dns {

/// Header flags (RFC 1035 §4.1.1).
struct Flags {
  bool qr = false;  ///< response
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = true;   ///< recursion desired
  bool ra = false;  ///< recursion available
  bool ad = false;  ///< authentic data (DNSSEC)
  bool cd = false;  ///< checking disabled
  Rcode rcode = Rcode::kNoError;

  std::uint16_t encode() const noexcept;
  static Flags decode(std::uint16_t raw) noexcept;
  bool operator==(const Flags&) const = default;
};

struct Question {
  Name qname;
  RType qtype = RType::kA;
  RClass qclass = RClass::kIN;
  bool operator==(const Question&) const = default;
};

/// A complete DNS message.
class Message {
 public:
  std::uint16_t id = 0;
  Flags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Build a standard recursive query for (`name`, `type`) with EDNS0.
  static Message make_query(std::uint16_t id, const Name& name,
                            RType type = RType::kA, bool edns = true);

  /// Build a NOERROR response to `query` answering with `answers`.
  static Message make_response(const Message& query,
                               std::vector<ResourceRecord> answers);

  /// Build an error response with the given rcode.
  static Message make_error(const Message& query, Rcode rcode);

  /// Wire-encode the message.  When `compress` is true (default), names in
  /// all sections share a compression context as real servers do.
  Bytes encode(bool compress = true) const;

  /// Decode a message; throws WireError on malformed input.
  static Message decode(std::span<const std::uint8_t> wire);

  /// The message's EDNS0 OPT pseudo-record, if present in additionals.
  const ResourceRecord* edns() const noexcept;

  /// Append an EDNS0 padding option (RFC 7830) so the encoded message is a
  /// multiple of `block` octets. Requires an OPT record to be present.
  void pad_to_multiple(std::size_t block);

  std::string to_string() const;

  bool operator==(const Message&) const = default;
};

}  // namespace dohperf::dns
