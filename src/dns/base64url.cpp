#include "dns/base64url.hpp"

#include <array>

namespace dohperf::dns {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::array<std::int8_t, 256> reverse_table() {
  std::array<std::int8_t, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out += kAlphabet[(n >> 18) & 0x3f];
    out += kAlphabet[(n >> 12) & 0x3f];
    out += kAlphabet[(n >> 6) & 0x3f];
    out += kAlphabet[n & 0x3f];
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 0x3f];
    out += kAlphabet[(n >> 12) & 0x3f];
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 0x3f];
    out += kAlphabet[(n >> 12) & 0x3f];
    out += kAlphabet[(n >> 6) & 0x3f];
  }
  return out;
}

Bytes base64url_decode(std::string_view text) {
  static const auto kReverse = reverse_table();
  const std::size_t rem = text.size() % 4;
  if (rem == 1) throw WireError("invalid base64url length");
  Bytes out;
  out.reserve(text.size() / 4 * 3 + 2);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) throw WireError("invalid base64url character");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

}  // namespace dohperf::dns
