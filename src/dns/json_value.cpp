#include "dns/json_value.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace dohperf::dns {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_double() const {
  if (std::holds_alternative<double>(value_)) return std::get<double>(value_);
  if (std::holds_alternative<std::int64_t>(value_)) {
    return static_cast<double>(std::get<std::int64_t>(value_));
  }
  throw JsonError("not a number");
}

std::int64_t JsonValue::as_int() const {
  if (std::holds_alternative<std::int64_t>(value_)) {
    return std::get<std::int64_t>(value_);
  }
  if (std::holds_alternative<double>(value_)) {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  throw JsonError("not a number");
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& JsonValue::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& JsonValue::as_object() {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) != 0;
}

namespace {

void dump_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw JsonError("trailing characters");
    return v;
  }

 private:
  char peek() const {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      throw JsonError(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        throw JsonError("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        throw JsonError("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        throw JsonError("invalid literal");
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else throw JsonError("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are not needed for DNS payloads).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            throw JsonError("invalid escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside exponents; accept loosely, strtod
        // validates below.
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") throw JsonError("invalid number");
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return JsonValue(iv);
      }
    }
    double dv = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      throw JsonError("invalid number: " + std::string(token));
    }
    return JsonValue(dv);
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') throw JsonError("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') throw JsonError("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::ostringstream os;
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, double>) {
          if (v == std::floor(v) && std::abs(v) < 1e15) {
            os << static_cast<std::int64_t>(v);
          } else {
            os << v;
          }
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          os << v;
        } else if constexpr (std::is_same_v<T, std::string>) {
          dump_string(os, v);
        } else if constexpr (std::is_same_v<T, JsonArray>) {
          os << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) os << ',';
            os << v[i].dump();
          }
          os << ']';
        } else if constexpr (std::is_same_v<T, JsonObject>) {
          os << '{';
          bool first = true;
          for (const auto& [k, val] : v) {
            if (!first) os << ',';
            first = false;
            dump_string(os, k);
            os << ':' << val.dump();
          }
          os << '}';
        }
      },
      value_);
  return os.str();
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dohperf::dns
