#include "dns/json.hpp"

#include "dns/json_value.hpp"

namespace dohperf::dns {

namespace {

std::string rdata_presentation(const ResourceRecord& rr) {
  // dns-json carries rdata in presentation form.
  return std::visit(
      [&](const auto& rd) -> std::string {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata> ||
                      std::is_same_v<T, AaaaRdata>) {
          return rd.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return rd.target.to_string() + ".";
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return rd.nsdname.to_string() + ".";
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return rd.ptrdname.to_string() + ".";
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return std::to_string(rd.preference) + " " +
                 rd.exchange.to_string() + ".";
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          std::string out;
          for (const auto& s : rd.strings) {
            if (!out.empty()) out += ' ';
            out += '"' + s + '"';
          }
          return out;
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          return std::to_string(rd.flags) + " " + rd.tag + " \"" + rd.value +
                 "\"";
        } else {
          return "";
        }
      },
      rr.rdata);
}

Rdata rdata_from_presentation(RType type, const std::string& text) {
  switch (type) {
    case RType::kA:
      return ARdata::parse(text);
    case RType::kCNAME: {
      return CnameRdata{Name::parse(text)};
    }
    case RType::kNS:
      return NsRdata{Name::parse(text)};
    case RType::kTXT: {
      TxtRdata rd;
      // Strip a single level of quoting if present.
      std::string s = text;
      if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
        s = s.substr(1, s.size() - 2);
      }
      rd.strings.push_back(std::move(s));
      return rd;
    }
    default:
      return RawRdata{to_bytes(text)};
  }
}

JsonValue record_to_json(const ResourceRecord& rr) {
  JsonObject o;
  o.emplace("name", rr.name.to_string() + ".");
  o.emplace("type", JsonValue(static_cast<std::int64_t>(
                        static_cast<std::uint16_t>(rr.type))));
  o.emplace("TTL", JsonValue(static_cast<std::int64_t>(rr.ttl)));
  o.emplace("data", rdata_presentation(rr));
  return JsonValue(std::move(o));
}

ResourceRecord record_from_json(const JsonValue& v) {
  ResourceRecord rr;
  std::string name_text = v.at("name").as_string();
  rr.name = Name::parse(name_text);
  rr.type = static_cast<RType>(v.at("type").as_int());
  if (v.contains("TTL")) {
    rr.ttl = static_cast<std::uint32_t>(v.at("TTL").as_int());
  }
  rr.rdata = rdata_from_presentation(rr.type, v.at("data").as_string());
  return rr;
}

}  // namespace

std::string to_dns_json(const Message& msg) {
  JsonObject root;
  root.emplace("Status", JsonValue(static_cast<std::int64_t>(
                             static_cast<std::uint8_t>(msg.flags.rcode))));
  root.emplace("TC", msg.flags.tc);
  root.emplace("RD", msg.flags.rd);
  root.emplace("RA", msg.flags.ra);
  root.emplace("AD", msg.flags.ad);
  root.emplace("CD", msg.flags.cd);

  JsonArray questions;
  for (const auto& q : msg.questions) {
    JsonObject o;
    o.emplace("name", q.qname.to_string() + ".");
    o.emplace("type", JsonValue(static_cast<std::int64_t>(
                          static_cast<std::uint16_t>(q.qtype))));
    questions.emplace_back(std::move(o));
  }
  root.emplace("Question", JsonValue(std::move(questions)));

  if (!msg.answers.empty()) {
    JsonArray answers;
    for (const auto& rr : msg.answers) answers.push_back(record_to_json(rr));
    root.emplace("Answer", JsonValue(std::move(answers)));
  }
  if (!msg.authorities.empty()) {
    JsonArray auth;
    for (const auto& rr : msg.authorities) auth.push_back(record_to_json(rr));
    root.emplace("Authority", JsonValue(std::move(auth)));
  }
  return JsonValue(std::move(root)).dump();
}

Message from_dns_json(std::string_view json_text) {
  const JsonValue root = JsonValue::parse(json_text);
  Message m;
  m.flags.qr = true;
  m.flags.rcode = static_cast<Rcode>(root.at("Status").as_int());
  if (root.contains("TC")) m.flags.tc = root.at("TC").as_bool();
  if (root.contains("RD")) m.flags.rd = root.at("RD").as_bool();
  if (root.contains("RA")) m.flags.ra = root.at("RA").as_bool();
  if (root.contains("AD")) m.flags.ad = root.at("AD").as_bool();
  if (root.contains("CD")) m.flags.cd = root.at("CD").as_bool();
  if (root.contains("Question")) {
    for (const auto& q : root.at("Question").as_array()) {
      Question question;
      question.qname = Name::parse(q.at("name").as_string());
      question.qtype = static_cast<RType>(q.at("type").as_int());
      m.questions.push_back(std::move(question));
    }
  }
  if (root.contains("Answer")) {
    for (const auto& a : root.at("Answer").as_array()) {
      m.answers.push_back(record_from_json(a));
    }
  }
  if (root.contains("Authority")) {
    for (const auto& a : root.at("Authority").as_array()) {
      m.authorities.push_back(record_from_json(a));
    }
  }
  return m;
}

std::string dns_json_query_string(const Name& name, RType type) {
  return "name=" + name.to_string() + "&type=" + to_string(type);
}

}  // namespace dohperf::dns
