// Resource records (RFC 1035 §3.2) with typed RDATA for the record types
// the experiments exercise, plus EDNS0 OPT (RFC 6891) and CAA (RFC 6844 —
// probed by the landscape survey, Table 2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "dns/wire.hpp"

namespace dohperf::dns {

/// Record types (subset used by the reproduction).
enum class RType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kOPT = 41,
  kCAA = 257,
};

enum class RClass : std::uint16_t {
  kIN = 1,
  kCH = 3,
};

/// Response codes (RFC 1035 §4.1.1 + RFC 6891 extended).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kStatus = 2,
};

std::string to_string(RType t);
std::string to_string(Rcode rc);

// --- Typed RDATA -----------------------------------------------------------

/// IPv4 address.
struct ARdata {
  std::array<std::uint8_t, 4> addr{};

  static ARdata parse(std::string_view dotted);  ///< "192.0.2.1"
  std::string to_string() const;
  bool operator==(const ARdata&) const = default;
};

/// IPv6 address (binary only; presentation uses full uncompressed form).
struct AaaaRdata {
  std::array<std::uint8_t, 16> addr{};

  std::string to_string() const;
  bool operator==(const AaaaRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct PtrRdata {
  Name ptrdname;
  bool operator==(const PtrRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;  ///< each segment <= 255 octets
  bool operator==(const TxtRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  bool operator==(const SoaRdata&) const = default;
};

/// CAA record (RFC 6844): the survey checks whether providers publish CAA.
struct CaaRdata {
  std::uint8_t flags = 0;  ///< bit 7 = issuer-critical
  std::string tag;         ///< "issue", "issuewild", "iodef"
  std::string value;
  bool operator==(const CaaRdata&) const = default;
};

/// A single EDNS0 option (e.g. padding, RFC 7830).
struct EdnsOption {
  std::uint16_t code = 0;
  Bytes data;
  bool operator==(const EdnsOption&) const = default;
};

/// EDNS0 pseudo-record (RFC 6891). Class carries the UDP payload size and
/// TTL carries extended rcode/version/flags; both are synthesised at
/// encode time from these fields.
struct OptRdata {
  std::uint16_t udp_payload_size = 4096;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;
  bool operator==(const OptRdata&) const = default;
};

/// Fallback for record types we do not model in detail.
struct RawRdata {
  Bytes data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, CnameRdata, NsRdata, PtrRdata,
                           MxRdata, TxtRdata, SoaRdata, CaaRdata, OptRdata,
                           RawRdata>;

/// A complete resource record.
struct ResourceRecord {
  Name name;
  RType type = RType::kA;
  RClass rclass = RClass::kIN;
  std::uint32_t ttl = 0;
  Rdata rdata = RawRdata{};

  /// Convenience constructors for the common cases.
  static ResourceRecord a(const Name& name, std::string_view addr,
                          std::uint32_t ttl = 300);
  static ResourceRecord cname(const Name& name, const Name& target,
                              std::uint32_t ttl = 300);
  static ResourceRecord txt(const Name& name, std::string_view text,
                            std::uint32_t ttl = 300);
  static ResourceRecord caa(const Name& name, std::uint8_t flags,
                            std::string_view tag, std::string_view value,
                            std::uint32_t ttl = 300);
  static ResourceRecord opt(std::uint16_t udp_payload_size = 4096,
                            bool dnssec_ok = false);

  /// Wire-encode with name compression via the shared compressor.
  void encode(ByteWriter& w, NameCompressor& compressor) const;

  /// Decode one record at the reader's position.
  static ResourceRecord decode(ByteReader& r);

  /// Presentation form roughly like a zone-file line.
  std::string to_string() const;

  bool operator==(const ResourceRecord&) const = default;
};

}  // namespace dohperf::dns
