#include "dns/name.hpp"

#include <algorithm>
#include <cctype>

namespace dohperf::dns {

namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
constexpr std::uint8_t kPointerMask = 0xc0;

std::string fold(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Canonical text of the name starting at label index i ("example.com").
std::string suffix_key(const std::vector<std::string>& labels, std::size_t i) {
  std::string key;
  for (std::size_t j = i; j < labels.size(); ++j) {
    if (!key.empty()) key += '.';
    key += fold(labels[j]);
  }
  return key;
}

}  // namespace

Name Name::parse(std::string_view text) {
  Name name;
  if (text.empty()) throw WireError("empty domain name");
  if (text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label = dot == std::string_view::npos
                                       ? text.substr(start)
                                       : text.substr(start, dot - start);
    if (label.empty()) throw WireError("empty label in name: " + std::string(text));
    if (label.size() > kMaxLabel) {
      throw WireError("label exceeds 63 octets: " + std::string(label));
    }
    name.labels_.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (name.wire_length() > kMaxName) {
    throw WireError("name exceeds 255 octets: " + std::string(text));
  }
  return name;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    if (!out.empty()) out += '.';
    out += l;
  }
  return out;
}

std::size_t Name::wire_length() const noexcept {
  std::size_t len = 1;  // terminating zero octet
  for (const auto& l : labels_) len += 1 + l.size();
  return len;
}

Name Name::parent() const {
  Name p;
  if (labels_.size() > 1) {
    p.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return p;
}

Name Name::child(std::string_view label) const {
  if (label.empty() || label.size() > kMaxLabel) {
    throw WireError("invalid child label");
  }
  Name c;
  c.labels_.reserve(labels_.size() + 1);
  c.labels_.emplace_back(label);
  c.labels_.insert(c.labels_.end(), labels_.begin(), labels_.end());
  if (c.wire_length() > kMaxName) throw WireError("child name too long");
  return c;
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (fold(labels_[offset + i]) != fold(ancestor.labels_[i])) return false;
  }
  return true;
}

bool Name::operator==(const Name& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (fold(labels_[i]) != fold(other.labels_[i])) return false;
  }
  return true;
}

bool Name::operator<(const Name& other) const noexcept {
  const std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = fold(labels_[i]);
    const auto b = fold(other.labels_[i]);
    if (a != b) return a < b;
  }
  return labels_.size() < other.labels_.size();
}

void NameCompressor::write(ByteWriter& w, const Name& name) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string key = suffix_key(labels, i);
    if (enabled_) {
      const auto it = offsets_.find(key);
      if (it != offsets_.end() && it->second <= 0x3fff) {
        // Emit a two-octet pointer to the earlier occurrence and stop.
        w.u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return;
      }
    }
    // Record this suffix's offset for future reuse (only if it fits the
    // 14-bit pointer field).
    if (w.size() <= 0x3fff) {
      offsets_.emplace(key, w.size());
    }
    w.u8(static_cast<std::uint8_t>(labels[i].size()));
    w.string(labels[i]);
  }
  w.u8(0);  // root label terminator
}

Name read_name(ByteReader& r) {
  Name name;
  std::vector<std::string> labels;
  std::size_t total_len = 1;
  // Loop protection: a valid chain can never visit more positions than the
  // message has bytes.
  std::size_t jumps = 0;
  const std::size_t max_jumps = r.data().size() + 1;
  bool jumped = false;
  std::size_t resume = 0;

  for (;;) {
    const std::uint8_t len = r.u8();
    if ((len & kPointerMask) == kPointerMask) {
      // Compression pointer: 14-bit offset into the message.
      const std::uint8_t lo = r.u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | lo;
      if (!jumped) {
        resume = r.offset();
        jumped = true;
      }
      if (++jumps > max_jumps) throw WireError("compression pointer loop");
      r.seek(target);
      continue;
    }
    if ((len & kPointerMask) != 0) {
      throw WireError("reserved label type");
    }
    if (len == 0) break;  // root terminator
    total_len += 1 + len;
    if (total_len > 255) throw WireError("decoded name exceeds 255 octets");
    labels.push_back(r.string(len));
  }
  if (jumped) r.seek(resume);

  // Rebuild through parse-free construction: child() prepends, so build from
  // the rightmost label outwards.
  Name out;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    out = out.child(*it);
  }
  return out;
}

}  // namespace dohperf::dns
