// Domain names (RFC 1035 §3.1) with full wire-format support including
// message compression (RFC 1035 §4.1.4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dns/wire.hpp"

namespace dohperf::dns {

/// A fully-qualified domain name stored as a sequence of labels.
/// Comparison is case-insensitive per RFC 1035 §2.3.3; the original casing
/// is preserved for presentation.
class Name {
 public:
  Name() = default;  ///< the root name "."

  /// Parse from presentation format ("www.example.com", trailing dot
  /// optional). Throws WireError on invalid names (empty labels, label
  /// > 63 octets, total length > 255 octets).
  static Name parse(std::string_view text);

  /// The root name ".".
  static Name root() { return Name{}; }

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  /// Presentation form without trailing dot (root renders as ".").
  std::string to_string() const;

  /// Length of the uncompressed wire encoding in octets (labels + lengths
  /// + terminating zero octet).
  std::size_t wire_length() const noexcept;

  /// The name with its first label removed ("www.example.com" -> "example.com").
  /// The parent of the root is the root.
  Name parent() const;

  /// Prepend a label ("www" + "example.com" -> "www.example.com").
  Name child(std::string_view label) const;

  /// True if this name equals `ancestor` or is a subdomain of it.
  bool is_subdomain_of(const Name& ancestor) const;

  bool operator==(const Name& other) const noexcept;
  bool operator!=(const Name& other) const noexcept { return !(*this == other); }
  /// Canonical (case-folded) ordering so Name can key std::map.
  bool operator<(const Name& other) const noexcept;

 private:
  std::vector<std::string> labels_;
};

/// Tracks name -> offset mappings while writing a message so later
/// occurrences of a suffix can be encoded as compression pointers.
class NameCompressor {
 public:
  /// When `enabled` is false every name is written in full (suffix offsets
  /// are still recorded, but never reused).
  explicit NameCompressor(bool enabled = true) : enabled_(enabled) {}

  /// Write `name` at the writer's current position, reusing previously
  /// written suffixes via pointers where possible (offsets must fit in the
  /// 14-bit pointer field).
  void write(ByteWriter& w, const Name& name);

 private:
  bool enabled_;
  // Canonical (lowercased) suffix text -> wire offset.
  std::map<std::string, std::size_t> offsets_;
};

/// Read a possibly-compressed name starting at the reader's position.
/// Follows compression pointers with loop protection; the reader is left
/// positioned just after the name's in-line portion.
Name read_name(ByteReader& r);

}  // namespace dohperf::dns
