// application/dns-json encoding (draft-bortzmeyer-dns-json, as deployed by
// Google and Cloudflare's JSON DoH endpoints). Table 2 of the paper probes
// which providers support this format alongside application/dns-message.
#pragma once

#include <string>

#include "dns/message.hpp"

namespace dohperf::dns {

/// Serialize a DNS response message to the dns-json format:
///   {"Status":0,"TC":false,...,"Question":[...],"Answer":[...]}
std::string to_dns_json(const Message& msg);

/// Parse a dns-json document back to a Message (ID is always 0 in the JSON
/// representation, as the format carries no transaction ID).
Message from_dns_json(std::string_view json_text);

/// Build the query string for a GET-style JSON query, e.g.
///   "name=example.com&type=A" (the Google /resolve API shape).
std::string dns_json_query_string(const Name& name, RType type);

}  // namespace dohperf::dns
