// Big-endian byte-level reader/writer primitives shared by every protocol
// codec in this repository (DNS, TLS records, HTTP/2 frames).
//
// Decoding errors are reported via WireError (derived from std::runtime_error)
// rather than a result type: every caller of the codecs treats a malformed
// message as fatal to that message and catches at the message boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dohperf::dns {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a decoder runs off the end of its input or meets a value
/// that violates the wire format.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential big-endian reader over a non-owning byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool exhausted() const noexcept { return offset_ >= data_.size(); }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();

  /// Read `n` raw bytes.
  Bytes bytes(std::size_t n);

  /// Read `n` bytes as a string (used for DNS labels and TXT segments).
  std::string string(std::size_t n);

  /// Peek a byte at absolute position `pos` without consuming.
  std::uint8_t peek_at(std::size_t pos) const;

  /// Jump to absolute offset (used to follow DNS compression pointers).
  void seek(std::size_t pos);

  /// Skip `n` bytes.
  void skip(std::size_t n);

  std::span<const std::uint8_t> data() const noexcept { return data_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Append-only big-endian writer.
class ByteWriter {
 public:
  std::size_t size() const noexcept { return out_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  void string(std::string_view s);

  /// Overwrite a previously written 16-bit field (e.g. RDLENGTH backpatch).
  void patch_u16(std::size_t pos, std::uint16_t v);

  const Bytes& data() const noexcept { return out_; }
  Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

/// Convenience conversions.
Bytes to_bytes(std::string_view s);
std::string to_string(std::span<const std::uint8_t> b);

}  // namespace dohperf::dns
