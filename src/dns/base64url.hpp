// base64url (RFC 4648 §5) without padding, as required by RFC 8484 for
// DoH GET requests (?dns=<base64url(wire-format query)>).
#pragma once

#include <string>
#include <string_view>

#include "dns/wire.hpp"

namespace dohperf::dns {

std::string base64url_encode(std::span<const std::uint8_t> data);

/// Throws WireError on invalid input characters or impossible lengths.
Bytes base64url_decode(std::string_view text);

}  // namespace dohperf::dns
