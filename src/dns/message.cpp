#include "dns/message.hpp"

#include <sstream>

namespace dohperf::dns {

std::uint16_t Flags::encode() const noexcept {
  std::uint16_t v = 0;
  if (qr) v |= 0x8000;
  v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(opcode) & 0xf) << 11;
  if (aa) v |= 0x0400;
  if (tc) v |= 0x0200;
  if (rd) v |= 0x0100;
  if (ra) v |= 0x0080;
  if (ad) v |= 0x0020;
  if (cd) v |= 0x0010;
  v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(rcode) & 0xf);
  return v;
}

Flags Flags::decode(std::uint16_t raw) noexcept {
  Flags f;
  f.qr = (raw & 0x8000) != 0;
  f.opcode = static_cast<Opcode>((raw >> 11) & 0xf);
  f.aa = (raw & 0x0400) != 0;
  f.tc = (raw & 0x0200) != 0;
  f.rd = (raw & 0x0100) != 0;
  f.ra = (raw & 0x0080) != 0;
  f.ad = (raw & 0x0020) != 0;
  f.cd = (raw & 0x0010) != 0;
  f.rcode = static_cast<Rcode>(raw & 0xf);
  return f;
}

Message Message::make_query(std::uint16_t id, const Name& name, RType type,
                            bool edns) {
  Message m;
  m.id = id;
  m.flags.qr = false;
  m.flags.rd = true;
  m.questions.push_back(Question{name, type, RClass::kIN});
  if (edns) m.additionals.push_back(ResourceRecord::opt());
  return m;
}

Message Message::make_response(const Message& query,
                               std::vector<ResourceRecord> answers) {
  Message m;
  m.id = query.id;
  m.flags.qr = true;
  m.flags.rd = query.flags.rd;
  m.flags.ra = true;
  m.flags.rcode = Rcode::kNoError;
  m.questions = query.questions;
  m.answers = std::move(answers);
  if (query.edns() != nullptr) m.additionals.push_back(ResourceRecord::opt());
  return m;
}

Message Message::make_error(const Message& query, Rcode rcode) {
  Message m = make_response(query, {});
  m.flags.rcode = rcode;
  return m;
}

Bytes Message::encode(bool compress) const {
  ByteWriter w;
  NameCompressor compressor(compress);
  w.u16(id);
  w.u16(flags.encode());
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));
  for (const auto& q : questions) {
    compressor.write(w, q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  auto write_section = [&](const std::vector<ResourceRecord>& rrs) {
    for (const auto& rr : rrs) rr.encode(w, compressor);
  };
  write_section(answers);
  write_section(authorities);
  write_section(additionals);
  return w.take();
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  Message m;
  m.id = r.u16();
  m.flags = Flags::decode(r.u16());
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();
  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    q.qname = read_name(r);
    q.qtype = static_cast<RType>(r.u16());
    q.qclass = static_cast<RClass>(r.u16());
    m.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t n, std::vector<ResourceRecord>& out) {
    for (std::uint16_t i = 0; i < n; ++i) {
      out.push_back(ResourceRecord::decode(r));
    }
  };
  read_section(an, m.answers);
  read_section(ns, m.authorities);
  read_section(ar, m.additionals);
  return m;
}

const ResourceRecord* Message::edns() const noexcept {
  for (const auto& rr : additionals) {
    if (rr.type == RType::kOPT) return &rr;
  }
  return nullptr;
}

void Message::pad_to_multiple(std::size_t block) {
  if (block == 0) throw WireError("padding block must be non-zero");
  ResourceRecord* opt_rr = nullptr;
  for (auto& rr : additionals) {
    if (rr.type == RType::kOPT) opt_rr = &rr;
  }
  if (opt_rr == nullptr) {
    throw WireError("EDNS0 padding requires an OPT record");
  }
  auto& opt = std::get<OptRdata>(opt_rr->rdata);
  // Remove any existing padding option first so the call is idempotent.
  std::erase_if(opt.options,
                [](const EdnsOption& o) { return o.code == 12; });
  const std::size_t unpadded = encode().size();
  // A padding option costs 4 octets of option header; the payload fills the
  // remainder of the block.
  const std::size_t with_empty = unpadded + 4;
  const std::size_t target =
      ((with_empty + block - 1) / block) * block;
  EdnsOption padding;
  padding.code = 12;  // RFC 7830 OPTION-CODE
  padding.data.assign(target - with_empty, 0);
  opt.options.push_back(std::move(padding));
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << ";; id=" << id << " " << (flags.qr ? "response" : "query")
     << " rcode=" << dns::to_string(flags.rcode) << '\n';
  for (const auto& q : questions) {
    os << ";" << q.qname.to_string() << " IN " << dns::to_string(q.qtype)
       << '\n';
  }
  for (const auto& rr : answers) os << rr.to_string() << '\n';
  for (const auto& rr : authorities) os << rr.to_string() << '\n';
  for (const auto& rr : additionals) os << rr.to_string() << '\n';
  return os.str();
}

}  // namespace dohperf::dns
