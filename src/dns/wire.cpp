#include "dns/wire.hpp"

namespace dohperf::dns {

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw WireError("truncated message: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(offset_) +
                    ", have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(data_[offset_] << 8) |
                          data_[offset_ + 1];
  offset_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
                          (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[offset_ + 3]);
  offset_ += 4;
  return v;
}

Bytes ByteReader::bytes(std::size_t n) {
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

std::string ByteReader::string(std::size_t n) {
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), n);
  offset_ += n;
  return out;
}

std::uint8_t ByteReader::peek_at(std::size_t pos) const {
  if (pos >= data_.size()) throw WireError("peek past end");
  return data_[pos];
}

void ByteReader::seek(std::size_t pos) {
  if (pos > data_.size()) throw WireError("seek past end");
  offset_ = pos;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  offset_ += n;
}

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::string(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t pos, std::uint16_t v) {
  if (pos + 2 > out_.size()) throw WireError("patch_u16 out of range");
  out_[pos] = static_cast<std::uint8_t>(v >> 8);
  out_[pos + 1] = static_cast<std::uint8_t>(v & 0xff);
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace dohperf::dns
