// A small self-contained JSON value type with parser and serializer.
// Needed for the application/dns-json content type (Table 2 of the paper)
// and kept deliberately minimal: objects, arrays, strings, doubles,
// integers, booleans and null. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dohperf::dns {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps key order deterministic, which makes encoded output
/// reproducible across runs (important for byte-accounting tests).
using JsonObject = std::map<std::string, JsonValue>;

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member access; throws JsonError if absent or not an object.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serialize compactly (no whitespace) — matches what real dns-json
  /// servers emit.
  std::string dump() const;

  /// Parse a complete JSON document; trailing garbage is an error.
  static JsonValue parse(std::string_view text);

  bool operator==(const JsonValue&) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace dohperf::dns
