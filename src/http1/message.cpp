#include "http1/message.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <sstream>

namespace dohperf::http1 {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void HeaderMap::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::set(std::string name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  add(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

std::string Request::head() const {
  std::ostringstream os;
  os << method << ' ' << target << " HTTP/1.1\r\n";
  for (const auto& [n, v] : headers.entries()) {
    os << n << ": " << v << "\r\n";
  }
  os << "\r\n";
  return os.str();
}

std::string Response::head() const {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n";
  for (const auto& [n, v] : headers.entries()) {
    os << n << ": " << v << "\r\n";
  }
  os << "\r\n";
  return os.str();
}

namespace {

template <typename Message>
Bytes serialize_impl(Message msg, WireSizes* sizes) {
  if (!msg.body.empty() || msg.headers.has("content-type")) {
    msg.headers.set("Content-Length", std::to_string(msg.body.size()));
  }
  const std::string head = msg.head();
  Bytes out;
  out.reserve(head.size() + msg.body.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), msg.body.begin(), msg.body.end());
  if (sizes != nullptr) {
    sizes->header_bytes = head.size();
    sizes->body_bytes = msg.body.size();
  }
  return out;
}

}  // namespace

Bytes serialize(const Request& request, WireSizes* sizes) {
  return serialize_impl(request, sizes);
}

Bytes serialize(const Response& response, WireSizes* sizes) {
  return serialize_impl(response, sizes);
}

Bytes serialize_chunked(const Response& response, std::size_t chunk_size,
                        WireSizes* sizes) {
  Response msg = response;
  msg.headers.set("Transfer-Encoding", "chunked");
  const std::string head = msg.head();
  Bytes out(head.begin(), head.end());
  const std::size_t body_start = out.size();
  std::size_t offset = 0;
  char size_line[32];
  while (offset < msg.body.size()) {
    const std::size_t n = std::min(chunk_size, msg.body.size() - offset);
    std::snprintf(size_line, sizeof size_line, "%zx\r\n", n);
    out.insert(out.end(), size_line, size_line + std::strlen(size_line));
    out.insert(out.end(),
               msg.body.begin() + static_cast<std::ptrdiff_t>(offset),
               msg.body.begin() + static_cast<std::ptrdiff_t>(offset + n));
    out.push_back('\r');
    out.push_back('\n');
    offset += n;
  }
  const char* terminator = "0\r\n\r\n";
  out.insert(out.end(), terminator, terminator + 5);
  if (sizes != nullptr) {
    sizes->header_bytes = head.size();
    sizes->body_bytes = out.size() - body_start;
  }
  return out;
}

void Parser::feed(std::span<const std::uint8_t> data) {
  buffer_.append(reinterpret_cast<const char*>(data.data()), data.size());
}

bool Parser::parse_head() {
  const std::size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) return false;
  head_bytes_ = end + 4;

  std::istringstream head(buffer_.substr(0, end));
  std::string line;
  if (!std::getline(head, line)) {
    error_ = true;
    return false;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();

  // Start line.
  if (mode_ == Mode::kRequest) {
    pending_request_ = Request{};
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      error_ = true;
      return false;
    }
    pending_request_.method = line.substr(0, sp1);
    pending_request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  } else {
    pending_response_ = Response{};
    // "HTTP/1.1 200 OK"
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos) {
      error_ = true;
      return false;
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    const std::string code = line.substr(
        sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
    int status = 0;
    const auto [p, ec] =
        std::from_chars(code.data(), code.data() + code.size(), status);
    if (ec != std::errc{} || p != code.data() + code.size()) {
      error_ = true;
      return false;
    }
    pending_response_.status = status;
    pending_response_.reason =
        sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
  }

  // Headers.
  HeaderMap& headers = mode_ == Mode::kRequest ? pending_request_.headers
                                               : pending_response_.headers;
  content_length_ = 0;
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error_ = true;
      return false;
    }
    std::string name = line.substr(0, colon);
    std::string value(trim(std::string_view(line).substr(colon + 1)));
    if (iequals(name, "transfer-encoding") && iequals(value, "chunked")) {
      chunked_ = true;
    }
    if (iequals(name, "content-length")) {
      std::size_t len = 0;
      const auto [p, ec] =
          std::from_chars(value.data(), value.data() + value.size(), len);
      if (ec != std::errc{} || p != value.data() + value.size()) {
        error_ = true;
        return false;
      }
      content_length_ = len;
    }
    headers.add(std::move(name), std::move(value));
  }
  head_done_ = true;
  return true;
}

bool Parser::try_extract_chunked() {
  // RFC 7230 §4.1 framing: hex size CRLF, chunk CRLF, ..., 0 CRLF CRLF.
  std::size_t pos = head_bytes_ + chunk_wire_bytes_;
  for (;;) {
    const std::size_t line_end = buffer_.find("\r\n", pos);
    if (line_end == std::string::npos) return false;
    std::size_t chunk_len = 0;
    const auto [p, ec] = std::from_chars(
        buffer_.data() + pos, buffer_.data() + line_end, chunk_len, 16);
    if (ec != std::errc{} || p == buffer_.data() + pos) {
      error_ = true;
      return false;
    }
    if (chunk_len == 0) {
      // Terminator: expect the final CRLF (no trailers supported).
      if (buffer_.size() < line_end + 4) return false;
      if (buffer_.compare(line_end, 4, "\r\n\r\n") != 0) {
        error_ = true;
        return false;
      }
      const std::size_t total = line_end + 4;
      Bytes body = std::move(chunked_body_);
      chunked_body_.clear();
      if (mode_ == Mode::kRequest) {
        pending_request_.body = std::move(body);
      } else {
        pending_response_.body = std::move(body);
      }
      last_sizes_.header_bytes = head_bytes_;
      last_sizes_.body_bytes = total - head_bytes_;
      buffer_.erase(0, total);
      head_done_ = false;
      chunked_ = false;
      chunk_wire_bytes_ = 0;
      have_message_ = true;
      return true;
    }
    const std::size_t data_start = line_end + 2;
    if (buffer_.size() < data_start + chunk_len + 2) return false;
    chunked_body_.insert(
        chunked_body_.end(), buffer_.begin() + static_cast<long>(data_start),
        buffer_.begin() + static_cast<long>(data_start + chunk_len));
    pos = data_start + chunk_len + 2;  // skip chunk + CRLF
    chunk_wire_bytes_ = pos - head_bytes_;
  }
}

bool Parser::try_extract() {
  if (error_ || have_message_) return have_message_;
  if (!head_done_ && !parse_head()) return false;
  if (chunked_) return try_extract_chunked();
  if (buffer_.size() < head_bytes_ + content_length_) return false;

  Bytes body(buffer_.begin() + static_cast<std::ptrdiff_t>(head_bytes_),
             buffer_.begin() +
                 static_cast<std::ptrdiff_t>(head_bytes_ + content_length_));
  if (mode_ == Mode::kRequest) {
    pending_request_.body = std::move(body);
  } else {
    pending_response_.body = std::move(body);
  }
  last_sizes_.header_bytes = head_bytes_;
  last_sizes_.body_bytes = content_length_;
  buffer_.erase(0, head_bytes_ + content_length_);
  head_done_ = false;
  have_message_ = true;
  return true;
}

std::optional<Request> Parser::next_request() {
  if (!try_extract()) return std::nullopt;
  have_message_ = false;
  return std::move(pending_request_);
}

std::optional<Response> Parser::next_response() {
  if (!try_extract()) return std::nullopt;
  have_message_ = false;
  return std::move(pending_response_);
}

}  // namespace dohperf::http1
