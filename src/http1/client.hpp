// HTTP/1.1 client connection with optional request pipelining.
//
// The paper's §3 experiment uses pipelining explicitly ("HTTP/1.1 without
// pipelining would be an unfair comparison"); responses are matched to
// requests strictly in order, which is what produces the HTTP/1.1
// head-of-line blocking in Figure 2.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "http1/message.hpp"
#include "simnet/stream.hpp"

namespace dohperf::http1 {

struct HttpCounters {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t header_bytes_sent = 0;
  std::uint64_t header_bytes_received = 0;
  std::uint64_t body_bytes_sent = 0;
  std::uint64_t body_bytes_received = 0;
};

class Http1Client {
 public:
  using ResponseHandler = std::function<void(const Response&)>;
  using ErrorHandler = std::function<void()>;

  /// Takes ownership of the transport (typically a TlsConnection).
  /// `pipelining` allows multiple outstanding requests; without it,
  /// requests queue locally until the previous response arrives.
  Http1Client(std::unique_ptr<simnet::ByteStream> transport,
              bool pipelining = true);

  Http1Client(const Http1Client&) = delete;
  Http1Client& operator=(const Http1Client&) = delete;

  /// Issue a request; the handler fires when its response arrives.
  void request(Request req, ResponseHandler on_response);

  /// Invoked if the connection closes or the peer sends garbage while
  /// requests are outstanding.
  void set_error_handler(ErrorHandler handler) {
    on_error_ = std::move(handler);
  }

  void close();
  bool is_open() const { return transport_->is_open(); }

  const HttpCounters& counters() const noexcept { return counters_; }
  simnet::ByteStream& transport() noexcept { return *transport_; }
  std::size_t outstanding() const noexcept { return in_flight_.size(); }

 private:
  void on_data(std::span<const std::uint8_t> data);
  void on_open();
  void on_close();
  void send_request(const Request& req);
  void pump_queue();

  std::unique_ptr<simnet::ByteStream> transport_;
  bool pipelining_;
  bool open_ = false;
  Parser parser_{Parser::Mode::kResponse};
  std::deque<ResponseHandler> in_flight_;   ///< FIFO matching, RFC 7230 §6.3.2
  std::deque<std::pair<Request, ResponseHandler>> queued_;
  HttpCounters counters_;
  ErrorHandler on_error_;
};

}  // namespace dohperf::http1
