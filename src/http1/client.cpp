#include "http1/client.hpp"

namespace dohperf::http1 {

Http1Client::Http1Client(std::unique_ptr<simnet::ByteStream> transport,
                         bool pipelining)
    : transport_(std::move(transport)), pipelining_(pipelining) {
  simnet::ByteStream::Handlers h;
  h.on_open = [this]() { on_open(); };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = [this]() { on_close(); };
  transport_->set_handlers(std::move(h));
  open_ = transport_->is_open();
}

void Http1Client::on_open() {
  open_ = true;
  pump_queue();
}

void Http1Client::request(Request req, ResponseHandler on_response) {
  queued_.emplace_back(std::move(req), std::move(on_response));
  pump_queue();
}

void Http1Client::pump_queue() {
  if (!open_) return;
  while (!queued_.empty()) {
    if (!pipelining_ && !in_flight_.empty()) break;
    auto [req, handler] = std::move(queued_.front());
    queued_.pop_front();
    in_flight_.push_back(std::move(handler));
    send_request(req);
  }
}

void Http1Client::send_request(const Request& req) {
  WireSizes sizes;
  Bytes wire = serialize(req, &sizes);
  ++counters_.requests;
  counters_.header_bytes_sent += sizes.header_bytes;
  counters_.body_bytes_sent += sizes.body_bytes;
  transport_->send(std::move(wire));
}

void Http1Client::on_data(std::span<const std::uint8_t> data) {
  parser_.feed(data);
  while (auto response = parser_.next_response()) {
    ++counters_.responses;
    counters_.header_bytes_received += parser_.last_sizes().header_bytes;
    counters_.body_bytes_received += parser_.last_sizes().body_bytes;
    if (in_flight_.empty()) {
      // Response without a request: protocol violation.
      if (on_error_) on_error_();
      return;
    }
    auto handler = std::move(in_flight_.front());
    in_flight_.pop_front();
    if (handler) handler(*response);
    // After a non-pipelined response, the next queued request may go out.
    pump_queue();
  }
  if (parser_.error() && on_error_) on_error_();
}

void Http1Client::on_close() {
  open_ = false;
  if ((!in_flight_.empty() || !queued_.empty()) && on_error_) on_error_();
}

void Http1Client::close() { transport_->close(); }

}  // namespace dohperf::http1
