// HTTP/1.1 server connection.
//
// Responses are emitted strictly in request order (RFC 7230 §6.3.2 — the
// RFC offers no way around this for HTTP/1.1). When the application answers
// request k+1 before request k, the response is buffered: this is the
// head-of-line blocking the paper demonstrates in Figure 2.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "http1/client.hpp"  // HttpCounters
#include "http1/message.hpp"
#include "simnet/stream.hpp"

namespace dohperf::http1 {

class Http1ServerConnection {
 public:
  /// The application receives the request and a `respond` callable it may
  /// invoke immediately or later (e.g. after a simulated backend delay).
  using Responder = std::function<void(Response)>;
  using RequestHandler = std::function<void(const Request&, Responder)>;

  Http1ServerConnection(std::unique_ptr<simnet::ByteStream> transport,
                        RequestHandler handler);

  Http1ServerConnection(const Http1ServerConnection&) = delete;
  Http1ServerConnection& operator=(const Http1ServerConnection&) = delete;

  void close();
  bool is_open() const { return transport_->is_open(); }
  const HttpCounters& counters() const noexcept { return counters_; }
  /// Responses finished by the app but blocked behind earlier requests.
  std::size_t blocked_responses() const noexcept { return ready_.size(); }

 private:
  void on_data(std::span<const std::uint8_t> data);
  void complete(std::uint64_t sequence, Response response);
  void flush_in_order();

  std::unique_ptr<simnet::ByteStream> transport_;
  RequestHandler handler_;
  Parser parser_{Parser::Mode::kRequest};
  HttpCounters counters_;
  std::uint64_t next_assigned_ = 0;  ///< sequence given to incoming requests
  std::uint64_t next_to_send_ = 0;   ///< lowest sequence not yet responded
  std::map<std::uint64_t, Response> ready_;  ///< completed out of order
};

}  // namespace dohperf::http1
