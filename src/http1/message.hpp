// HTTP/1.1 requests and responses: header containers, serialization and an
// incremental parser (messages arrive in arbitrary TCP chunks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dns/wire.hpp"

namespace dohperf::http1 {

using dns::Bytes;

/// Ordered header list with case-insensitive lookup (header order matters
/// for byte-accurate serialization).
class HeaderMap {
 public:
  void add(std::string name, std::string value);
  /// Replace existing (first) occurrence or add.
  void set(std::string name, std::string value);
  std::optional<std::string> get(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  std::string method = "GET";
  std::string target = "/";
  HeaderMap headers;
  Bytes body;

  /// Serialized head (request line + headers + CRLF), excluding the body.
  std::string head() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  Bytes body;

  std::string head() const;
};

/// Byte sizes of the serialized parts — the paper's Fig 5 separates header
/// bytes from body bytes.
struct WireSizes {
  std::size_t header_bytes = 0;
  std::size_t body_bytes = 0;
};

/// Serialize with Content-Length set from the body.
Bytes serialize(const Request& request, WireSizes* sizes = nullptr);
Bytes serialize(const Response& response, WireSizes* sizes = nullptr);

/// Serialize a response with "Transfer-Encoding: chunked", splitting the
/// body into `chunk_size`-byte chunks (used by origin servers that stream
/// documents of unknown length).
Bytes serialize_chunked(const Response& response, std::size_t chunk_size,
                        WireSizes* sizes = nullptr);

/// Incremental parser: feed() bytes, poll for complete messages.
/// Parses either requests or responses depending on `Mode`.
class Parser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit Parser(Mode mode) : mode_(mode) {}

  /// Append raw bytes from the stream.
  void feed(std::span<const std::uint8_t> data);

  /// Extract the next complete request, if any. Mode must be kRequest.
  std::optional<Request> next_request();
  /// Extract the next complete response, if any. Mode must be kResponse.
  std::optional<Response> next_response();

  /// Wire size of the head/body of the last message extracted.
  const WireSizes& last_sizes() const noexcept { return last_sizes_; }

  /// True if the parser met malformed input; the connection should close.
  bool error() const noexcept { return error_; }

 private:
  bool parse_head();
  bool try_extract();
  bool try_extract_chunked();

  Mode mode_;
  std::string buffer_;
  bool error_ = false;

  // In-progress message state.
  bool head_done_ = false;
  bool chunked_ = false;
  std::size_t head_bytes_ = 0;
  std::size_t content_length_ = 0;
  Bytes chunked_body_;       ///< accumulated de-chunked body
  std::size_t chunk_wire_bytes_ = 0;  ///< raw chunked framing consumed
  Request pending_request_;
  Response pending_response_;
  bool have_message_ = false;
  WireSizes last_sizes_;
};

}  // namespace dohperf::http1
