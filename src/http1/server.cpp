#include "http1/server.hpp"

namespace dohperf::http1 {

Http1ServerConnection::Http1ServerConnection(
    std::unique_ptr<simnet::ByteStream> transport, RequestHandler handler)
    : transport_(std::move(transport)), handler_(std::move(handler)) {
  simnet::ByteStream::Handlers h;
  h.on_open = []() {};
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = []() {};
  transport_->set_handlers(std::move(h));
}

void Http1ServerConnection::on_data(std::span<const std::uint8_t> data) {
  parser_.feed(data);
  while (auto request = parser_.next_request()) {
    ++counters_.requests;
    counters_.header_bytes_received += parser_.last_sizes().header_bytes;
    counters_.body_bytes_received += parser_.last_sizes().body_bytes;
    const std::uint64_t sequence = next_assigned_++;
    handler_(*request, [this, sequence](Response response) {
      complete(sequence, std::move(response));
    });
  }
  if (parser_.error()) transport_->close();
}

void Http1ServerConnection::complete(std::uint64_t sequence,
                                     Response response) {
  ready_.emplace(sequence, std::move(response));
  flush_in_order();
}

void Http1ServerConnection::flush_in_order() {
  while (true) {
    const auto it = ready_.find(next_to_send_);
    if (it == ready_.end()) break;
    WireSizes sizes;
    Bytes wire = serialize(it->second, &sizes);
    ++counters_.responses;
    counters_.header_bytes_sent += sizes.header_bytes;
    counters_.body_bytes_sent += sizes.body_bytes;
    if (transport_->is_open()) transport_->send(std::move(wire));
    ready_.erase(it);
    ++next_to_send_;
  }
}

void Http1ServerConnection::close() { transport_->close(); }

}  // namespace dohperf::http1
