#include "core/caching_client.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <variant>

#include "obs/registry.hpp"

namespace dohperf::core {

namespace {

/// The SOA record RFC 2308 derives the negative TTL from, if the response
/// carries one in its authority section.
const dns::ResourceRecord* find_soa(const dns::Message& response) {
  for (const auto& rr : response.authorities) {
    if (rr.type == dns::RType::kSOA &&
        std::holds_alternative<dns::SoaRdata>(rr.rdata)) {
      return &rr;
    }
  }
  return nullptr;
}

}  // namespace

CachingResolverClient::CachingResolverClient(simnet::EventLoop& loop,
                                             ResolverClient& upstream,
                                             CacheConfig config)
    : loop_(loop), upstream_(upstream), config_(config) {}

bool CachingResolverClient::usable(const ResolutionResult& r) {
  if (!r.success) return false;
  const dns::Rcode rcode = r.response.flags.rcode;
  // SERVFAIL/REFUSED mean the resolver is unhealthy, exactly the condition
  // RFC 8767 serves stale data through; only NOERROR and NXDOMAIN are
  // definitive answers worth caching or surfacing over a stale copy.
  return rcode == dns::Rcode::kNoError || rcode == dns::Rcode::kNxDomain;
}

void CachingResolverClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_hits_ = r->register_counter("cache.hits");
  m_negative_hits_ = r->register_counter("cache.negative_hits");
  m_expirations_ = r->register_counter("cache.expirations");
  m_misses_ = r->register_counter("cache.misses");
  m_coalesced_ = r->register_counter("cache.coalesced");
  m_upstream_queries_ = r->register_counter("cache.upstream_queries");
  m_proactive_refreshes_ = r->register_counter("cache.proactive_refreshes");
  m_revalidations_ = r->register_counter("cache.revalidations");
  m_stale_serves_ = r->register_counter("cache.stale_serves");
  m_staleness_age_ms_ = r->register_histogram("cache.staleness_age_ms");
  m_negative_entries_ = r->register_counter("cache.negative_entries");
  m_evictions_ = r->register_counter("cache.evictions");
}

std::uint64_t CachingResolverClient::resolve(const dns::Name& name,
                                             dns::RType type,
                                             ResolveCallback callback) {
  bind_obs_ids();
  const std::uint64_t id = results_.size();
  results_.emplace_back();
  staleness_.push_back(0);
  const Key key{name, type};
  const simnet::TimeUs now = loop_.now();
  const obs::SpanId lookup = config_.obs.begin("cache_lookup");

  bool stale_available = false;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    if (entry.expires_at > now) {
      ++stats_.hits;
      config_.obs.set_attr(lookup, "hit", true);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_hits_);
      }
      if (entry.negative) {
        ++stats_.negative_hits;
        config_.obs.set_attr(lookup, "negative", true);
        if (config_.obs.metrics != nullptr) {
          config_.obs.metrics->add(m_negative_hits_);
        }
      }
      config_.obs.end(lookup);
      touch(entry);
      ResolutionResult result;
      result.success = true;
      result.sent_at = now;
      result.completed_at = now;
      result.response = entry.response;
      results_[id] = std::move(result);
      ++completed_;
      maybe_refresh_ahead(key, entry);
      if (callback) {
        // Copy: a reentrant resolve() inside the callback may reallocate
        // results_, so the stored element must not be passed by reference.
        const ResolutionResult snapshot = results_[id];
        callback(snapshot);
      }
      return id;
    }
    if (config_.max_stale > 0 &&
        now < entry.expires_at + config_.max_stale) {
      stale_available = true;  // kept: may be served while the refresh runs
    } else {
      ++stats_.expirations;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_expirations_);
      }
      entries_.erase(it);
    }
  }

  ++stats_.misses;
  config_.obs.set_attr(lookup, "hit", false);
  config_.obs.end(lookup);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_misses_);
  }

  const auto [fit, first_for_key] = inflight_.try_emplace(key);
  Waiter waiter;
  waiter.id = id;
  waiter.callback = std::move(callback);
  waiter.asked_at = now;
  if (stale_available) {
    waiter.stale_timer = loop_.schedule_in(
        config_.stale_serve_delay,
        [this, key, id]() { on_stale_deadline(key, id); });
  }
  fit->second.waiters.push_back(std::move(waiter));
  if (!first_for_key) {
    ++stats_.coalesced;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_coalesced_);
    }
    const obs::SpanId join = config_.obs.begin("coalesce_join");
    config_.obs.set_attr(
        join, "waiters",
        static_cast<std::int64_t>(fit->second.waiters.size()));
    config_.obs.end(join);
    return id;
  }
  start_upstream(key);
  return id;
}

void CachingResolverClient::start_upstream(const Key& key) {
  ++stats_.upstream_queries;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_upstream_queries_);
  }
  upstream_.resolve(key.name, key.type,
                    [this, key](const ResolutionResult& r) {
                      on_upstream_done(key, r);
                    });
}

void CachingResolverClient::maybe_refresh_ahead(const Key& key,
                                                const Entry& entry) {
  if (config_.refresh_ahead == 0) return;
  if (entry.expires_at - loop_.now() > config_.refresh_ahead) return;
  if (inflight_.find(key) != inflight_.end()) return;  // refresh in flight
  ++stats_.proactive_refreshes;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_proactive_refreshes_);
  }
  inflight_.try_emplace(key);  // no waiters: a pure background refresh
  start_upstream(key);
}

void CachingResolverClient::on_upstream_done(const Key& key,
                                             const ResolutionResult& r) {
  // Detach the in-flight record first: callbacks may re-resolve the same
  // key, which must start a fresh upstream query, not find this one.
  auto node = inflight_.extract(key);
  const bool answer_usable = usable(r);
  if (answer_usable) insert(key, r.response);
  if (node.empty()) return;

  // The wire cost is charged to the first waiter that receives the
  // upstream answer; coalesced joiners added nothing to the wire.
  ResolutionResult uncharged = r;
  uncharged.cost = CostReport{};
  bool cost_charged = false;
  bool repaired_stale_serve = false;
  for (Waiter& waiter : node.mapped().waiters) {
    if (waiter.answered) {
      repaired_stale_serve = true;  // already served stale; entry repaired
      continue;
    }
    loop_.cancel(waiter.stale_timer);
    if (answer_usable) {
      deliver(waiter, cost_charged ? uncharged : r);
      cost_charged = true;
      continue;
    }
    if (config_.max_stale > 0 &&
        serve_stale(key, waiter,
                    r.success ? "rcode_failure" : "upstream_failure")) {
      continue;
    }
    deliver(waiter, cost_charged ? uncharged : r);  // surface the failure
    cost_charged = true;
  }
  if (answer_usable && repaired_stale_serve) {
    ++stats_.revalidations;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_revalidations_);
    }
  }
}

void CachingResolverClient::on_stale_deadline(const Key& key,
                                              std::uint64_t id) {
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  for (Waiter& waiter : it->second.waiters) {
    if (waiter.id != id || waiter.answered) continue;
    serve_stale(key, waiter, "stale_timer");
    return;
  }
}

bool CachingResolverClient::serve_stale(const Key& key, Waiter& waiter,
                                        const char* reason) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  const simnet::TimeUs now = loop_.now();
  const simnet::TimeUs age = now > entry.expires_at
                                 ? now - entry.expires_at
                                 : 0;
  if (age >= config_.max_stale) return false;  // beyond the stale window
  ++stats_.stale_serves;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_stale_serves_);
    config_.obs.metrics->observe(m_staleness_age_ms_,
                                 static_cast<double>(age) / 1e3);
  }
  const obs::SpanId span = config_.obs.begin("stale_serve");
  config_.obs.set_attr(span, "staleness_ms",
                       static_cast<std::int64_t>(age / 1000));
  config_.obs.set_attr(span, "reason", std::string(reason));
  config_.obs.end(span);
  touch(entry);
  staleness_[waiter.id] = age;
  ResolutionResult stale;
  stale.success = true;
  stale.response = entry.response;
  deliver(waiter, stale);
  return true;
}

void CachingResolverClient::deliver(Waiter& waiter,
                                    const ResolutionResult& r) {
  waiter.answered = true;
  loop_.cancel(waiter.stale_timer);
  ResolveCallback callback = std::move(waiter.callback);
  // Compose the result locally: the callback may re-enter resolve() and
  // reallocate results_, so neither `waiter` nor a reference into the
  // vector may be used after it runs.
  ResolutionResult out = r;
  out.sent_at = waiter.asked_at;
  out.completed_at = loop_.now();
  results_[waiter.id] = out;
  ++completed_;
  if (callback) callback(out);
}

void CachingResolverClient::insert(const Key& key,
                                   const dns::Message& response) {
  const dns::Rcode rcode = response.flags.rcode;
  const bool negative = rcode == dns::Rcode::kNxDomain ||
                        (rcode == dns::Rcode::kNoError &&
                         response.answers.empty());
  simnet::TimeUs ttl = 0;
  if (negative) {
    // RFC 2308 §3/§5: the negative TTL is min(SOA TTL, SOA MINIMUM) from
    // the authority section; without an SOA the response is not cacheable.
    const dns::ResourceRecord* soa = find_soa(response);
    if (soa == nullptr) return;
    const std::uint32_t ttl_sec =
        std::min(soa->ttl, std::get<dns::SoaRdata>(soa->rdata).minimum);
    ttl = std::clamp(simnet::seconds(ttl_sec), config_.min_ttl,
                     config_.max_negative_ttl);
  } else {
    // TTL of the answer set = minimum record TTL (RFC 2181 §5.2), clamped.
    std::uint32_t ttl_sec = std::numeric_limits<std::uint32_t>::max();
    for (const auto& rr : response.answers) {
      ttl_sec = std::min(ttl_sec, rr.ttl);
    }
    ttl = std::clamp(simnet::seconds(ttl_sec), config_.min_ttl,
                     config_.max_ttl);
  }
  if (ttl == 0) return;

  if (entries_.find(key) == entries_.end()) evict_if_needed();
  Entry entry;
  entry.response = response;
  entry.expires_at = loop_.now() + ttl;
  entry.negative = negative;
  entry.last_used_seq = next_seq_++;
  entries_[key] = std::move(entry);
  if (negative) {
    ++stats_.negative_entries;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_negative_entries_);
    }
  }
}

void CachingResolverClient::evict_if_needed() {
  if (entries_.size() < config_.max_entries) return;
  // Evict the entry closest to (or past) expiry; least-recently-used
  // breaks ties. Expired/stale entries therefore always go first.
  auto victim = entries_.begin();
  for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
    const Entry& e = it->second;
    const Entry& v = victim->second;
    const bool earlier = e.expires_at != v.expires_at
                             ? e.expires_at < v.expires_at
                             : e.last_used_seq < v.last_used_seq;
    if (earlier) victim = it;
  }
  entries_.erase(victim);
  ++stats_.evictions;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_evictions_);
  }
}

const ResolutionResult& CachingResolverClient::result(
    std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
