#include "core/caching_client.hpp"

#include <algorithm>
#include <limits>

#include "obs/registry.hpp"

namespace dohperf::core {

CachingResolverClient::CachingResolverClient(simnet::EventLoop& loop,
                                             ResolverClient& upstream,
                                             CacheConfig config)
    : loop_(loop), upstream_(upstream), config_(config) {}

std::uint64_t CachingResolverClient::resolve(const dns::Name& name,
                                             dns::RType type,
                                             ResolveCallback callback) {
  const std::uint64_t id = results_.size();
  const Key key{name, type};
  const obs::SpanId lookup = config_.obs.begin("cache_lookup");

  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.expires_at > loop_.now()) {
      ++stats_.hits;
      config_.obs.set_attr(lookup, "hit", true);
      config_.obs.end(lookup);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add("cache.hits");
      }
      ResolutionResult result;
      result.success = true;
      result.sent_at = loop_.now();
      result.completed_at = loop_.now();
      result.response = it->second.response;
      results_.push_back(result);
      ++completed_;
      if (callback) callback(results_.back());
      return id;
    }
    ++stats_.expirations;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("cache.expirations");
    }
    entries_.erase(it);
  }

  ++stats_.misses;
  config_.obs.set_attr(lookup, "hit", false);
  config_.obs.end(lookup);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add("cache.misses");
  }
  results_.emplace_back();
  upstream_.resolve(
      name, type,
      [this, id, key, callback = std::move(callback)](
          const ResolutionResult& r) {
        if (r.success) insert(key, r.response);
        results_[id] = r;
        ++completed_;
        if (callback) callback(results_[id]);
      });
  return id;
}

void CachingResolverClient::insert(const Key& key,
                                   const dns::Message& response) {
  // TTL of the answer set = minimum record TTL (RFC 2181 §5.2), clamped.
  std::uint32_t ttl_sec = std::numeric_limits<std::uint32_t>::max();
  for (const auto& rr : response.answers) {
    ttl_sec = std::min(ttl_sec, rr.ttl);
  }
  if (response.answers.empty()) ttl_sec = 60;  // negative-ish caching
  simnet::TimeUs ttl = simnet::seconds(ttl_sec);
  ttl = std::clamp(ttl, config_.min_ttl, config_.max_ttl);
  if (ttl == 0) return;

  evict_if_needed();
  Entry entry;
  entry.response = response;
  entry.expires_at = loop_.now() + ttl;
  entry.inserted_seq = next_seq_++;
  entries_[key] = std::move(entry);
}

void CachingResolverClient::evict_if_needed() {
  if (entries_.size() < config_.max_entries) return;
  // Evict the oldest insertion (FIFO — simple and deterministic).
  auto oldest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.inserted_seq < oldest->second.inserted_seq) oldest = it;
  }
  entries_.erase(oldest);
  ++stats_.evictions;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add("cache.evictions");
  }
}

const ResolutionResult& CachingResolverClient::result(
    std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
