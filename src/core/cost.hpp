// Per-resolution cost accounting: the quantities behind Figures 3-5.
#pragma once

#include <cstdint>
#include <string>

#include "http1/client.hpp"
#include "http2/connection.hpp"
#include "simnet/tcp.hpp"
#include "tlssim/types.hpp"

namespace dohperf::core {

/// Everything one resolution put on the wire, split by layer.
/// Conventions (matching the paper's Figure 5):
///   * dns_message_bytes — the DNS query + response in wire format ("Body")
///   * http_header_bytes — HTTP/1.1 heads or HEADERS frames ("Hdr")
///   * http_mgmt_bytes   — HTTP/2 connection management ("Mgmt")
///   * tls_overhead_bytes — handshake flights + record framing ("TLS")
///   * tcp_overhead_bytes — IP+TCP headers of every segment, including pure
///     ACKs and handshake/teardown segments ("TCP")
struct CostReport {
  std::uint64_t wire_bytes = 0;    ///< total bytes on the wire (Fig 3)
  std::uint64_t packets = 0;       ///< total packets (Fig 4)
  std::uint64_t tcp_overhead_bytes = 0;
  std::uint64_t tls_overhead_bytes = 0;
  std::uint64_t http_header_bytes = 0;
  std::uint64_t http_body_bytes = 0;
  std::uint64_t http_mgmt_bytes = 0;
  std::uint64_t dns_message_bytes = 0;

  CostReport operator-(const CostReport& other) const;
  CostReport& operator+=(const CostReport& other);
  std::string to_string() const;
};

/// Build a snapshot from the counters of a connection stack. Any pointer
/// may be null (e.g. no HTTP layer for DoT, nothing but UDP for legacy DNS).
CostReport snapshot(const simnet::TcpCounters* tcp,
                    const tlssim::TlsCounters* tls,
                    const http1::HttpCounters* h1,
                    const http2::H2Counters* h2);

}  // namespace dohperf::core
