// Shared retry/reconnect policy for the connection-oriented resolver
// clients (DoH, DoT): exponential backoff with deterministic jitter, plus a
// per-query retry budget. Kosek et al. (DoQ) and Mozilla's TRR both show
// that *recovery* behaviour, not steady-state latency, decides whether an
// encrypted transport is usable on a flaky path — this policy is what the
// chaos experiments exercise.
#pragma once

#include <cstdint>

#include "simnet/time.hpp"
#include "stats/rng.hpp"

namespace dohperf::core {

struct RetryPolicy {
  /// Re-issues allowed per query after a transport loss or timeout; 0
  /// reproduces the old fail-fast behaviour.
  int max_retries = 0;
  simnet::TimeUs backoff_initial = simnet::ms(100);  ///< first reconnect wait
  simnet::TimeUs backoff_max = simnet::seconds(5);
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction: a delay d becomes d * (1 ± jitter). Seeded,
  /// so runs stay bit-for-bit reproducible.
  double jitter = 0.2;
  /// Fail (and possibly retry) a query not answered within this time;
  /// 0 disables. Guards against accept-then-never-answer servers.
  simnet::TimeUs query_timeout = 0;
  std::uint64_t seed = 0x5eed;
};

/// Tracks consecutive connection failures and produces the jittered,
/// exponentially growing reconnect delays.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.seed) {}

  /// Delay before the next reconnect attempt; each call grows the base
  /// geometrically up to backoff_max.
  simnet::TimeUs next() {
    double base = static_cast<double>(policy_.backoff_initial);
    for (int i = 0; i < failures_; ++i) base *= policy_.backoff_multiplier;
    const double cap = static_cast<double>(policy_.backoff_max);
    if (base > cap) base = cap;
    ++failures_;
    const double u = rng_.next_double();  // [0, 1)
    const double jittered = base * (1.0 - policy_.jitter +
                                    2.0 * policy_.jitter * u);
    return static_cast<simnet::TimeUs>(jittered);
  }

  /// Call on any successful exchange: the next failure starts small again.
  void reset() noexcept { failures_ = 0; }

  int consecutive_failures() const noexcept { return failures_; }

 private:
  RetryPolicy policy_;
  stats::SplitMix64 rng_;
  int failures_ = 0;
};

/// Counters the chaos harness reports per client.
struct RetryStats {
  std::uint64_t reconnects = 0;        ///< replacement connections opened
  std::uint64_t retried_queries = 0;   ///< re-issues (loss- or timeout-driven)
  std::uint64_t budget_exhausted = 0;  ///< queries failed out of retries
  std::uint64_t query_timeouts = 0;    ///< per-query deadline expiries
};

}  // namespace dohperf::core
