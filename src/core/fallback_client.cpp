#include "core/fallback_client.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace dohperf::core {

FallbackResolverClient::FallbackResolverClient(simnet::EventLoop& loop,
                                               ResolverClient& primary,
                                               ResolverClient& fallback,
                                               FallbackConfig config)
    : loop_(loop), primary_(primary), fallback_(fallback), config_(config) {}

std::uint64_t FallbackResolverClient::resolve(const dns::Name& name,
                                              dns::RType type,
                                              ResolveCallback callback) {
  const std::uint64_t id = results_.size();
  ResolutionResult placeholder;
  placeholder.sent_at = loop_.now();
  results_.push_back(placeholder);

  Pending pending;
  pending.callback = std::move(callback);
  pending.name = name;
  pending.type = type;
  pending.deadline = loop_.schedule_in(config_.primary_deadline, [this, id]() {
    start_fallback(id, "deadline");
  });
  pending_.emplace(id, std::move(pending));

  primary_.resolve(name, type, [this, id](const ResolutionResult& r) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    it->second.primary_done = true;
    if (it->second.done) {
      // The fallback already won: tear the late primary resolution down.
      // A late success is wasted work — count it rather than drop it.
      // (A late shed answer is not useful work, so it isn't "wasted".)
      if (usable(r)) {
        ++stats_.primary_wasted;
        if (config_.obs.metrics != nullptr) {
          config_.obs.metrics->add("fallback.primary_wasted");
        }
      }
      maybe_erase(id);
      return;
    }
    if (usable(r)) {
      if (!it->second.fallback_started) {
        ++stats_.primary_wins;
        if (config_.obs.metrics != nullptr) {
          config_.obs.metrics->add("fallback.primary_wins");
        }
      }
      finish(id, r, /*from_primary=*/true);
    } else if (!it->second.fallback_started) {
      if (r.success) {
        // Transport delivered an answer but the server was shedding
        // (SERVFAIL/REFUSED): never surface it — fall back instead.
        ++stats_.primary_shed;
        if (config_.obs.metrics != nullptr) {
          config_.obs.metrics->add("fallback.primary_shed");
        }
        start_fallback(id, "primary_shed");
      } else {
        // Hard failure before the deadline: fall back immediately.
        start_fallback(id, "primary_failure");
      }
    } else {
      // Primary failed after the fallback started: wait for the fallback.
      ++stats_.primary_late_failures;
    }
  });
  return id;
}

bool FallbackResolverClient::usable(const ResolutionResult& r) const {
  if (!r.success) return false;
  if (!config_.rcode_failures) return true;
  const dns::Rcode rcode = r.response.flags.rcode;
  return rcode != dns::Rcode::kServFail && rcode != dns::Rcode::kRefused;
}

void FallbackResolverClient::start_fallback(std::uint64_t id,
                                            const char* reason) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done ||
      it->second.fallback_started) {
    return;
  }
  it->second.fallback_started = true;
  loop_.cancel(it->second.deadline);
  ++stats_.fallback_started;
  it->second.fallback_span = config_.obs.begin("fallback");
  config_.obs.set_attr(it->second.fallback_span, "reason",
                       std::string(reason));
  const simnet::TimeUs waited = loop_.now() - results_[id].sent_at;
  stats_.decision_latency_total += waited;
  stats_.decision_latency_max = std::max(stats_.decision_latency_max, waited);
  fallback_.resolve(it->second.name, it->second.type,
                    [this, id](const ResolutionResult& r) {
                      const auto p = pending_.find(id);
                      if (p == pending_.end() || p->second.done) return;
                      if (usable(r)) {
                        ++stats_.fallback_used;
                        if (config_.obs.metrics != nullptr) {
                          config_.obs.metrics->add("fallback.used");
                        }
                      } else {
                        ++stats_.both_failed;
                        if (config_.obs.metrics != nullptr) {
                          config_.obs.metrics->add("fallback.both_failed");
                        }
                      }
                      finish(id, r, /*from_primary=*/false);
                    });
}

void FallbackResolverClient::finish(std::uint64_t id,
                                    const ResolutionResult& r,
                                    bool /*from_primary*/) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done) return;
  it->second.done = true;
  loop_.cancel(it->second.deadline);
  config_.obs.end(it->second.fallback_span);

  auto callback = std::move(it->second.callback);
  ResolutionResult out = r;
  out.sent_at = results_[id].sent_at;  // measure from when *we* were asked
  out.completed_at = loop_.now();
  results_[id] = out;
  ++completed_;
  maybe_erase(id);
  if (callback) callback(out);
}

void FallbackResolverClient::maybe_erase(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.done) return;
  // Retain finished entries until the primary reports so its late answer
  // lands in primary_wasted (see the double-completion regression test).
  if (it->second.primary_done) pending_.erase(it);
}

const ResolutionResult& FallbackResolverClient::result(
    std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
