#include "core/udp_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

UdpResolverClient::UdpResolverClient(simnet::Host& host,
                                     simnet::Address server,
                                     UdpClientConfig config)
    : host_(host), server_(server), config_(config),
      socket_(&host.udp_open()) {
  socket_->set_receiver(
      [this](const dns::Bytes& payload, simnet::Address /*from*/) {
        on_datagram(payload);
      });
}

UdpResolverClient::~UdpResolverClient() {
  for (auto& [dns_id, p] : pending_) {
    host_.loop().cancel(p.timer);
  }
  host_.udp_close(*socket_);
}

void UdpResolverClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_retries_ = r->register_counter("client.udp.retries");
  m_timeouts_ = r->register_counter("client.udp.timeouts");
}

std::uint64_t UdpResolverClient::resolve(const dns::Name& name,
                                         dns::RType type,
                                         ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  // Allocate a DNS message ID not currently in flight.
  std::uint16_t dns_id = next_dns_id_++;
  while (pending_.count(dns_id) != 0 || dns_id == 0) dns_id = next_dns_id_++;

  const dns::Message query =
      dns::Message::make_query(dns_id, name, type, config_.edns);
  Pending pending;
  pending.query_id = query_id;
  pending.wire = query.encode();
  pending.callback = std::move(callback);
  pending.retries_left = config_.max_retries;
  bind_obs_ids();
  pending.span =
      obs_begin_resolution(config_.obs, tmetrics_, "udp", name, type);

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  // UDP cost is exact and known up-front for the query half; the response
  // half is added on completion.
  result.cost.dns_message_bytes = pending.wire.size();
  results_.push_back(std::move(result));

  pending_.emplace(dns_id, std::move(pending));
  send_query(dns_id);
  return query_id;
}

void UdpResolverClient::send_query(std::uint16_t dns_id) {
  auto& pending = pending_.at(dns_id);
  auto& result = results_[pending.query_id];
  result.cost.wire_bytes +=
      pending.wire.size() + simnet::kIpHeaderBytes + simnet::kUdpHeaderBytes;
  result.cost.packets += 1;
  ++pending.attempt;
  if (pending.span != 0) {
    pending.request_span =
        config_.obs.tracer->begin(pending.span, "request");
    config_.obs.set_attr(pending.request_span, "attempt",
                         static_cast<std::int64_t>(pending.attempt));
  }
  socket_->send_to(server_, pending.wire);
  pending.timer = host_.loop().schedule_in(
      config_.timeout, [this, dns_id]() { on_timeout(dns_id); });
}

void UdpResolverClient::on_timeout(std::uint16_t dns_id) {
  const auto it = pending_.find(dns_id);
  if (it == pending_.end()) return;
  if (it->second.retries_left > 0) {
    --it->second.retries_left;
    Pending& p = it->second;
    config_.obs.end(p.request_span);
    p.request_span = 0;
    if (p.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(p.span, "retry");
      config_.obs.set_attr(retry, "reason", std::string("timeout"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(p.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    ++retransmissions_;
    send_query(dns_id);
    return;
  }
  ++timeouts_;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_timeouts_);
  }
  finish(dns_id, false, {}, 0);
}

void UdpResolverClient::on_datagram(const dns::Bytes& payload) {
  dns::Message response;
  try {
    response = dns::Message::decode(payload);
  } catch (const dns::WireError&) {
    return;  // garbage datagram; ignore like a real stub
  }
  const auto it = pending_.find(response.id);
  if (it == pending_.end() || !response.flags.qr) return;
  finish(response.id, true, std::move(response), payload.size());
}

void UdpResolverClient::finish(std::uint16_t dns_id, bool success,
                               dns::Message response,
                               std::size_t response_bytes) {
  auto node = pending_.extract(dns_id);
  Pending& pending = node.mapped();
  host_.loop().cancel(pending.timer);

  ResolutionResult& result = results_[pending.query_id];
  result.success = success;
  result.completed_at = host_.loop().now();
  if (success) {
    result.cost.dns_message_bytes += response_bytes;
    result.cost.wire_bytes +=
        response_bytes + simnet::kIpHeaderBytes + simnet::kUdpHeaderBytes;
    result.cost.packets += 1;
    result.response = std::move(response);
  }
  ++completed_;
  config_.obs.end(pending.request_span);
  obs_span_cost(config_.obs, pending.span, result.cost);
  obs_count_cost(config_.obs, cmetrics_, result.cost);
  obs_finish_resolution(config_.obs, tmetrics_, pending.span, "udp", result);
  if (pending.callback) pending.callback(result);
}

const ResolutionResult& UdpResolverClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
