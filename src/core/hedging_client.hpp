// Hedged resolution, tail-at-scale style (Dean & Barroso, CACM 2013):
// a query that has not been answered after `hedge_delay` is re-issued to a
// secondary resolver, and the first answer wins. Hounsel et al. and Kosek
// et al. both locate the encrypted-DNS cost in the tail — hedging converts
// a slow or dead primary's tail into one extra round trip to the backup.
//
// A hedge-rate budget bounds the extra load: hedges are only issued while
// hedged queries stay under `hedge_budget_permille` per-mille of all
// queries started, so a degraded primary cannot double the total upstream
// query volume. The losing resolution is torn down from this client's
// perspective — its late answer is dropped and its cost is charged to a
// separate `wasted` account rather than to the query. All bookkeeping is
// integer arithmetic on the virtual clock: seeded runs are byte-identical.
#pragma once

#include <map>
#include <vector>

#include "core/client.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::core {

struct HedgeConfig {
  /// How long to wait for the primary before hedging to the secondary.
  /// Tail-at-scale practice pins this near the primary's p95 latency.
  simnet::TimeUs hedge_delay = simnet::ms(200);
  /// Budget: hedges are issued only while
  ///   (hedges_issued + 1) * 1000 <= queries_started * hedge_budget_permille
  /// holds. 100 caps the extra upstream load at 10%; 1000 allows hedging
  /// every query (at most doubling the load).
  std::uint32_t hedge_budget_permille = 100;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct HedgeStats {
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_suppressed = 0;  ///< delay hit, budget empty
  std::uint64_t primary_wins = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t both_failed = 0;
  /// The losing side answered successfully after the winner: torn down,
  /// never surfaced, its cost charged below instead of to the query.
  std::uint64_t wasted_answers = 0;
  std::uint64_t wasted_wire_bytes = 0;  ///< wire cost of those late answers
};

class HedgingResolverClient final : public ResolverClient {
 public:
  /// Both clients must outlive this one.
  HedgingResolverClient(simnet::EventLoop& loop, ResolverClient& primary,
                        ResolverClient& secondary, HedgeConfig config = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  const HedgeStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    ResolveCallback callback;
    dns::Name name;
    dns::RType type = dns::RType::kA;
    simnet::EventId hedge_timer;
    bool hedged = false;        ///< secondary query issued
    bool done = false;          ///< a winner was surfaced
    bool primary_done = false;
    bool secondary_done = false;
    obs::SpanId hedge_span = 0;  ///< open while the hedge races
  };

  /// True for budget purposes and winner selection: transport success with
  /// a definitive rcode (NOERROR or NXDOMAIN).
  static bool usable(const ResolutionResult& r);

  void start_hedge(std::uint64_t id, const char* reason);
  void on_result(std::uint64_t id, bool from_primary,
                 const ResolutionResult& r);
  void finish(std::uint64_t id, const ResolutionResult& r,
              bool from_primary);
  /// Erase the pending entry once both sides have reported (or will never
  /// report), keeping late-loser accounting alive until then.
  void maybe_erase(std::uint64_t id);

  simnet::EventLoop& loop_;
  ResolverClient& primary_;
  ResolverClient& secondary_;
  HedgeConfig config_;
  HedgeStats stats_;
  std::uint64_t started_ = 0;  ///< resolve() calls, the budget denominator
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace dohperf::core
