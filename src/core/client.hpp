// The common resolver-client interface: every secure-DNS transport in this
// library (UDP, DoT, DoH/h1, DoH/h2) resolves names through the same API,
// which is what lets the experiments and the browser model swap transports.
#pragma once

#include <functional>

#include "core/cost.hpp"
#include "dns/message.hpp"
#include "simnet/time.hpp"

namespace dohperf::core {

struct ResolutionResult {
  bool success = false;
  dns::Message response;
  simnet::TimeUs sent_at = 0;       ///< when resolve() was called
  simnet::TimeUs completed_at = 0;  ///< when the reply was fully parsed
  CostReport cost;                  ///< finalized lazily; see each client

  /// "Resolution time is the time it takes the application to receive and
  /// fully parse a reply" (§3).
  simnet::TimeUs resolution_time() const noexcept {
    return completed_at - sent_at;
  }
};

using ResolveCallback = std::function<void(const ResolutionResult&)>;

class ResolverClient {
 public:
  virtual ~ResolverClient() = default;

  /// Resolve asynchronously; the callback fires when the reply has been
  /// received and parsed (or the query failed). Returns a query id usable
  /// with result().
  virtual std::uint64_t resolve(const dns::Name& name, dns::RType type,
                                ResolveCallback callback) = 0;

  /// The recorded result for a query id. Costs for connection-oriented
  /// transports are finalized once the event loop has drained (teardown
  /// packets included).
  virtual const ResolutionResult& result(std::uint64_t id) const = 0;

  virtual std::size_t completed() const = 0;
};

}  // namespace dohperf::core
