#include "core/hedging_client.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace dohperf::core {

HedgingResolverClient::HedgingResolverClient(simnet::EventLoop& loop,
                                             ResolverClient& primary,
                                             ResolverClient& secondary,
                                             HedgeConfig config)
    : loop_(loop), primary_(primary), secondary_(secondary),
      config_(config) {}

bool HedgingResolverClient::usable(const ResolutionResult& r) {
  if (!r.success) return false;
  const dns::Rcode rcode = r.response.flags.rcode;
  return rcode == dns::Rcode::kNoError || rcode == dns::Rcode::kNxDomain;
}

std::uint64_t HedgingResolverClient::resolve(const dns::Name& name,
                                             dns::RType type,
                                             ResolveCallback callback) {
  const std::uint64_t id = results_.size();
  ResolutionResult placeholder;
  placeholder.sent_at = loop_.now();
  results_.push_back(placeholder);
  ++started_;

  Pending pending;
  pending.callback = std::move(callback);
  pending.name = name;
  pending.type = type;
  pending.hedge_timer = loop_.schedule_in(
      config_.hedge_delay, [this, id]() { start_hedge(id, "delay"); });
  pending_.emplace(id, std::move(pending));

  primary_.resolve(name, type, [this, id](const ResolutionResult& r) {
    on_result(id, /*from_primary=*/true, r);
  });
  return id;
}

void HedgingResolverClient::start_hedge(std::uint64_t id,
                                        const char* reason) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done || it->second.hedged) return;
  loop_.cancel(it->second.hedge_timer);
  // The budget is a per-mille cap over all queries started, so a degraded
  // primary cannot multiply upstream load past 1 + permille/1000.
  if ((stats_.hedges_issued + 1) * 1000 >
      started_ * config_.hedge_budget_permille) {
    ++stats_.hedges_suppressed;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("hedge.suppressed");
    }
    return;
  }
  it->second.hedged = true;
  ++stats_.hedges_issued;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add("hedge.issued");
  }
  it->second.hedge_span = config_.obs.begin("hedge");
  config_.obs.set_attr(it->second.hedge_span, "reason", std::string(reason));
  secondary_.resolve(it->second.name, it->second.type,
                     [this, id](const ResolutionResult& r) {
                       on_result(id, /*from_primary=*/false, r);
                     });
}

void HedgingResolverClient::on_result(std::uint64_t id, bool from_primary,
                                      const ResolutionResult& r) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (from_primary) {
    pending.primary_done = true;
  } else {
    pending.secondary_done = true;
  }

  if (pending.done) {
    // The loser reporting after the winner: tear it down. A late success
    // is pure waste — count it and charge its cost separately, never to
    // the query.
    if (usable(r)) {
      ++stats_.wasted_answers;
      stats_.wasted_wire_bytes += r.cost.wire_bytes;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add("hedge.wasted_answers");
        config_.obs.metrics->add("hedge.wasted_wire_bytes",
                                 r.cost.wire_bytes);
      }
    }
    maybe_erase(id);
    return;
  }

  if (usable(r)) {
    if (from_primary) {
      ++stats_.primary_wins;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add("hedge.primary_wins");
      }
    } else {
      ++stats_.hedge_wins;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add("hedge.wins");
      }
    }
    config_.obs.set_attr(pending.hedge_span, "winner",
                         std::string(from_primary ? "primary" : "secondary"));
    finish(id, r, from_primary);
    return;
  }

  if (from_primary && !pending.hedged) {
    // The primary failed before the hedge delay: hedge immediately
    // (budget permitting) instead of sitting out the rest of the delay.
    start_hedge(id, "primary_failure");
    const auto retry = pending_.find(id);
    if (retry != pending_.end() && retry->second.hedged) return;
    ++stats_.both_failed;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("hedge.both_failed");
    }
    finish(id, r, from_primary);
    return;
  }

  const bool other_racing = from_primary
                                ? (pending.hedged && !pending.secondary_done)
                                : !pending.primary_done;
  if (other_racing) return;  // the other side may still rescue the query
  ++stats_.both_failed;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add("hedge.both_failed");
  }
  finish(id, r, from_primary);
}

void HedgingResolverClient::finish(std::uint64_t id,
                                   const ResolutionResult& r,
                                   bool /*from_primary*/) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done) return;
  Pending& pending = it->second;
  pending.done = true;
  loop_.cancel(pending.hedge_timer);
  config_.obs.end(pending.hedge_span);
  ResolveCallback callback = std::move(pending.callback);
  ResolutionResult out = r;
  out.sent_at = results_[id].sent_at;  // measure from when *we* were asked
  out.completed_at = loop_.now();
  results_[id] = out;
  ++completed_;
  maybe_erase(id);
  if (callback) callback(out);
}

void HedgingResolverClient::maybe_erase(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.done) return;
  // Keep the entry while a loser is still in flight so its late answer
  // lands in the wasted account rather than vanishing silently.
  const bool secondary_settled =
      !it->second.hedged || it->second.secondary_done;
  if (it->second.primary_done && secondary_settled) pending_.erase(it);
}

const ResolutionResult& HedgingResolverClient::result(
    std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
