// Legacy UDP DNS stub resolver client with ID matching, timeout and
// retransmission.
#pragma once

#include <map>
#include <vector>

#include "core/client.hpp"
#include "core/obs_hooks.hpp"
#include "obs/span.hpp"
#include "simnet/host.hpp"

namespace dohperf::core {

struct UdpClientConfig {
  simnet::TimeUs timeout = simnet::seconds(5);
  int max_retries = 0;  ///< retransmissions after the first attempt
  bool edns = true;     ///< attach an EDNS0 OPT record to queries
  obs::SpanContext obs; ///< tracing/metrics sink (default: off)
};

class UdpResolverClient final : public ResolverClient {
 public:
  UdpResolverClient(simnet::Host& host, simnet::Address server,
                    UdpClientConfig config = {});
  ~UdpResolverClient() override;

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  std::uint64_t timeouts() const noexcept { return timeouts_; }
  /// Retransmissions sent after first attempts (the client-side half of
  /// the retry-amplification factor the overload bench reports).
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }

  /// Rebind the tracing/metrics sink (per-query sampling hands each query
  /// a different context; metric handles re-bind automatically).
  void set_obs(const obs::SpanContext& obs) noexcept { config_.obs = obs; }

 private:
  struct Pending {
    std::uint64_t query_id;
    dns::Bytes wire;  ///< for retransmission
    ResolveCallback callback;
    simnet::EventId timer;
    int retries_left;
    obs::SpanId span = 0;          ///< the resolution span
    obs::SpanId request_span = 0;  ///< current attempt
    int attempt = 0;
  };

  void on_datagram(const dns::Bytes& payload);
  void send_query(std::uint16_t dns_id);
  void on_timeout(std::uint16_t dns_id);
  void finish(std::uint16_t dns_id, bool success, dns::Message response,
              std::size_t response_bytes);

  /// Re-register the client.udp.* handles when the registry changes.
  void bind_obs_ids();

  simnet::Host& host_;
  simnet::Address server_;
  UdpClientConfig config_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_retries_;
  obs::MetricId m_timeouts_;
  obs::Registry* bound_metrics_ = nullptr;
  simnet::UdpSocket* socket_;
  std::uint16_t next_dns_id_ = 1;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::map<std::uint16_t, Pending> pending_;  ///< keyed by DNS message ID
  std::vector<ResolutionResult> results_;     ///< indexed by query id
};

}  // namespace dohperf::core
