#include "core/tcp_dns_client.hpp"

namespace dohperf::core {

TcpDnsClient::TcpDnsClient(simnet::Host& host, simnet::Address server)
    : host_(host), server_(server) {}

void TcpDnsClient::ensure_connection() {
  if (stream_ && stream_->is_open()) return;
  if (tcp_ && (tcp_->state() == simnet::TcpState::kSynSent ||
               tcp_->established())) {
    return;  // still connecting or usable
  }
  tcp_ = host_.tcp_connect(server_);
  stream_ = std::make_unique<simnet::TcpByteStream>(tcp_);
  simnet::ByteStream::Handlers h;
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = [this]() { on_close(); };
  stream_->set_handlers(std::move(h));
  rx_.clear();
}

std::uint64_t TcpDnsClient::resolve(const dns::Name& name, dns::RType type,
                                    ResolveCallback callback) {
  ensure_connection();
  const std::uint64_t query_id = next_query_id_++;
  std::uint16_t dns_id = next_dns_id_++;
  while (pending_.count(dns_id) != 0 || dns_id == 0) dns_id = next_dns_id_++;

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));
  pending_.emplace(dns_id, std::make_pair(query_id, std::move(callback)));

  const dns::Message query = dns::Message::make_query(dns_id, name, type);
  const dns::Bytes wire = query.encode();
  results_[query_id].cost.dns_message_bytes = wire.size();
  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);
  stream_->send(framed.take());  // TCP queues until established
  return query_id;
}

void TcpDnsClient::on_data(std::span<const std::uint8_t> data) {
  rx_.insert(rx_.end(), data.begin(), data.end());
  while (rx_.size() >= 2) {
    const std::size_t len = (static_cast<std::size_t>(rx_[0]) << 8) | rx_[1];
    if (rx_.size() < 2 + len) break;
    dns::Bytes wire(rx_.begin() + 2,
                    rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message response;
    try {
      response = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      continue;
    }
    const auto it = pending_.find(response.id);
    if (it == pending_.end()) continue;
    auto [query_id, callback] = std::move(it->second);
    pending_.erase(it);

    ResolutionResult& result = results_[query_id];
    result.success = true;
    result.completed_at = host_.loop().now();
    result.cost.dns_message_bytes += wire.size();
    result.response = std::move(response);
    ++completed_;
    if (callback) callback(result);
  }
}

void TcpDnsClient::on_close() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [dns_id, entry] : pending) {
    auto& [query_id, callback] = entry;
    ResolutionResult& result = results_[query_id];
    result.success = false;
    result.completed_at = host_.loop().now();
    ++completed_;
    if (callback) callback(result);
  }
}

void TcpDnsClient::disconnect() {
  if (stream_) stream_->close();
}

bool TcpDnsClient::connected() const {
  return stream_ && stream_->is_open();
}

const simnet::TcpCounters* TcpDnsClient::tcp_counters() const {
  return tcp_ ? &tcp_->counters() : nullptr;
}

const ResolutionResult& TcpDnsClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
