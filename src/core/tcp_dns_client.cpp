#include "core/tcp_dns_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

TcpDnsClient::TcpDnsClient(simnet::Host& host, simnet::Address server,
                           obs::SpanContext obs)
    : TcpDnsClient(host, server, [&obs]() {
        TcpDnsClientConfig config;
        config.obs = obs;
        return config;
      }()) {}

TcpDnsClient::TcpDnsClient(simnet::Host& host, simnet::Address server,
                           TcpDnsClientConfig config)
    : host_(host),
      server_(server),
      migration_(config.migration),
      max_migration_reissues_(config.max_migration_reissues),
      obs_(config.obs) {
  if (migration_.enabled && migration_.react_to_host_events) {
    listener_id_ = host_.add_network_change_listener(
        [this](simnet::NetworkChangeKind kind) {
          begin_migration(simnet::to_string(kind));
        });
  }
}

TcpDnsClient::~TcpDnsClient() {
  host_.loop().cancel(stall_timer_);
  if (listener_id_ != 0) host_.remove_network_change_listener(listener_id_);
}

void TcpDnsClient::bind_obs_ids() {
  obs::Registry* r = obs_.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_conn_open_ = r->register_counter("client.tcp.conn_open");
  m_conn_reuse_ = r->register_counter("client.tcp.conn_reuse");
  m_migrations_ = r->register_counter("client.tcp.migrations");
}

void TcpDnsClient::ensure_connection(obs::SpanId parent) {
  if (stream_ && stream_->is_open()) {
    if (obs_.metrics != nullptr) obs_.metrics->add(m_conn_reuse_);
    return;
  }
  if (tcp_ && (tcp_->state() == simnet::TcpState::kSynSent ||
               tcp_->established())) {
    return;  // still connecting or usable
  }
  if (obs_.metrics != nullptr) obs_.metrics->add(m_conn_open_);
  if (obs_.tracer != nullptr) {
    connect_span_ = obs_.tracer->begin(parent, "connect");
    tcp_hs_span_ = obs_.tracer->begin(connect_span_, "tcp_handshake");
  }
  tcp_ = host_.tcp_connect(server_);
  stream_ = std::make_unique<simnet::TcpByteStream>(tcp_);
  simnet::ByteStream::Handlers h;
  h.on_open = [this]() {
    obs_.end(tcp_hs_span_);
    obs_.end(connect_span_);
    tcp_hs_span_ = 0;
    connect_span_ = 0;
  };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = [this]() { on_close(); };
  stream_->set_handlers(std::move(h));
  rx_.clear();
}

std::uint64_t TcpDnsClient::resolve(const dns::Name& name, dns::RType type,
                                    ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  std::uint16_t dns_id = next_dns_id_++;
  while (pending_.count(dns_id) != 0 || dns_id == 0) dns_id = next_dns_id_++;

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));
  Pending pending;
  pending.query_id = query_id;
  pending.callback = std::move(callback);
  pending.name = name;
  pending.type = type;
  pending.reissues_left = max_migration_reissues_;
  bind_obs_ids();
  pending.span = obs_begin_resolution(obs_, tmetrics_, "tcp", name, type);
  ensure_connection(pending.span);
  send_framed(dns_id, pending);
  pending_.emplace(dns_id, std::move(pending));
  arm_stall_timer();
  return query_id;
}

void TcpDnsClient::send_framed(std::uint16_t dns_id, const Pending& pending) {
  const dns::Message query =
      dns::Message::make_query(dns_id, pending.name, pending.type);
  const dns::Bytes wire = query.encode();
  results_[pending.query_id].cost.dns_message_bytes += wire.size();
  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);
  if (obs_.tracer != nullptr && pending.span != 0) {
    const obs::SpanId request = obs_.tracer->begin(pending.span, "request");
    obs_.end(request);  // framed write handed to TCP in one call
  }
  stream_->send(framed.take());  // TCP queues until established
}

void TcpDnsClient::on_data(std::span<const std::uint8_t> data) {
  // Bytes arriving means the path is alive: restart stall detection.
  host_.loop().cancel(stall_timer_);
  stall_timer_ = simnet::EventId{};
  rx_.insert(rx_.end(), data.begin(), data.end());
  while (rx_.size() >= 2) {
    const std::size_t len = (static_cast<std::size_t>(rx_[0]) << 8) | rx_[1];
    if (rx_.size() < 2 + len) break;
    dns::Bytes wire(rx_.begin() + 2,
                    rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message response;
    try {
      response = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      continue;
    }
    const auto it = pending_.find(response.id);
    if (it == pending_.end()) continue;
    Pending pending = std::move(it->second);
    pending_.erase(it);

    ResolutionResult& result = results_[pending.query_id];
    result.success = true;
    result.completed_at = host_.loop().now();
    result.cost.dns_message_bytes += wire.size();
    result.response = std::move(response);
    ++completed_;
    obs_span_cost(obs_, pending.span, result.cost);
    obs_count_cost(obs_, cmetrics_, result.cost);
    obs_finish_resolution(obs_, tmetrics_, pending.span, "tcp", result);
    if (pending.callback) pending.callback(result);
  }
  if (!pending_.empty()) arm_stall_timer();
}

void TcpDnsClient::on_close() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [dns_id, entry] : pending) {
    ResolutionResult& result = results_[entry.query_id];
    result.success = false;
    result.completed_at = host_.loop().now();
    ++completed_;
    obs_finish_resolution(obs_, tmetrics_, entry.span, "tcp", result);
    if (entry.callback) entry.callback(result);
  }
}

void TcpDnsClient::arm_stall_timer() {
  if (!migration_.enabled || migration_.stall_timeout <= 0) return;
  if (stall_timer_.valid) return;
  stall_timer_ = host_.loop().schedule_in(
      migration_.stall_timeout, [this]() {
        stall_timer_ = simnet::EventId{};
        on_stall();
      });
}

void TcpDnsClient::on_stall() {
  if (pending_.empty()) return;
  if (obs_.tracer != nullptr) {
    const obs::SpanId s = obs_.tracer->begin(0, "path_probe");
    obs_.set_attr(s, "transport", std::string("tcp"));
    obs_.end(s);
  }
  begin_migration("stall");
}

void TcpDnsClient::begin_migration(const char* reason) {
  if (!migration_.enabled) return;
  if (!tcp_ && pending_.empty()) return;  // nothing to migrate
  // No TLS state worth racing for: drop the suspect connection and re-send
  // every in-flight query on a fresh one from the (new) address.
  if (obs_.tracer != nullptr) {
    const obs::SpanId s = obs_.tracer->begin(0, "migrate");
    obs_.set_attr(s, "transport", std::string("tcp"));
    obs_.set_attr(s, "reason", std::string(reason));
    obs_.set_attr(s, "winner", std::string("fresh"));
    obs_.end(s);
  }
  if (tcp_) tcp_->abort();  // no local callbacks fire
  tcp_.reset();
  stream_.reset();
  rx_.clear();
  ++migration_stats_.migrations;
  if (obs_.metrics != nullptr) obs_.metrics->add(m_migrations_);
  reissue_all();
}

void TcpDnsClient::reissue_all() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [dns_id, entry] : pending) {
    if (entry.reissues_left <= 0) {
      // Re-issue budget spent: fail rather than chase a dead path forever.
      ResolutionResult& result = results_[entry.query_id];
      result.success = false;
      result.completed_at = host_.loop().now();
      ++completed_;
      obs_finish_resolution(obs_, tmetrics_, entry.span, "tcp", result);
      if (entry.callback) entry.callback(result);
      continue;
    }
    --entry.reissues_left;
    ensure_connection(entry.span);
    send_framed(dns_id, entry);
    pending_.emplace(dns_id, std::move(entry));
  }
  if (!pending_.empty()) arm_stall_timer();
}

void TcpDnsClient::disconnect() {
  if (stream_) stream_->close();
}

bool TcpDnsClient::connected() const {
  return stream_ && stream_->is_open();
}

const simnet::TcpCounters* TcpDnsClient::tcp_counters() const {
  return tcp_ ? &tcp_->counters() : nullptr;
}

const ResolutionResult& TcpDnsClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
