#include "core/tcp_dns_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

TcpDnsClient::TcpDnsClient(simnet::Host& host, simnet::Address server,
                           obs::SpanContext obs)
    : host_(host), server_(server), obs_(obs) {}

void TcpDnsClient::bind_obs_ids() {
  obs::Registry* r = obs_.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_conn_open_ = r->register_counter("client.tcp.conn_open");
  m_conn_reuse_ = r->register_counter("client.tcp.conn_reuse");
}

void TcpDnsClient::ensure_connection(obs::SpanId parent) {
  if (stream_ && stream_->is_open()) {
    if (obs_.metrics != nullptr) obs_.metrics->add(m_conn_reuse_);
    return;
  }
  if (tcp_ && (tcp_->state() == simnet::TcpState::kSynSent ||
               tcp_->established())) {
    return;  // still connecting or usable
  }
  if (obs_.metrics != nullptr) obs_.metrics->add(m_conn_open_);
  if (obs_.tracer != nullptr) {
    connect_span_ = obs_.tracer->begin(parent, "connect");
    tcp_hs_span_ = obs_.tracer->begin(connect_span_, "tcp_handshake");
  }
  tcp_ = host_.tcp_connect(server_);
  stream_ = std::make_unique<simnet::TcpByteStream>(tcp_);
  simnet::ByteStream::Handlers h;
  h.on_open = [this]() {
    obs_.end(tcp_hs_span_);
    obs_.end(connect_span_);
    tcp_hs_span_ = 0;
    connect_span_ = 0;
  };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = [this]() { on_close(); };
  stream_->set_handlers(std::move(h));
  rx_.clear();
}

std::uint64_t TcpDnsClient::resolve(const dns::Name& name, dns::RType type,
                                    ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  std::uint16_t dns_id = next_dns_id_++;
  while (pending_.count(dns_id) != 0 || dns_id == 0) dns_id = next_dns_id_++;

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));
  Pending pending;
  pending.query_id = query_id;
  pending.callback = std::move(callback);
  bind_obs_ids();
  pending.span = obs_begin_resolution(obs_, tmetrics_, "tcp", name, type);
  ensure_connection(pending.span);
  const obs::SpanId span = pending.span;
  pending_.emplace(dns_id, std::move(pending));

  const dns::Message query = dns::Message::make_query(dns_id, name, type);
  const dns::Bytes wire = query.encode();
  results_[query_id].cost.dns_message_bytes = wire.size();
  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);
  if (obs_.tracer != nullptr) {
    const obs::SpanId request = obs_.tracer->begin(span, "request");
    obs_.end(request);  // framed write handed to TCP in one call
  }
  stream_->send(framed.take());  // TCP queues until established
  return query_id;
}

void TcpDnsClient::on_data(std::span<const std::uint8_t> data) {
  rx_.insert(rx_.end(), data.begin(), data.end());
  while (rx_.size() >= 2) {
    const std::size_t len = (static_cast<std::size_t>(rx_[0]) << 8) | rx_[1];
    if (rx_.size() < 2 + len) break;
    dns::Bytes wire(rx_.begin() + 2,
                    rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message response;
    try {
      response = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      continue;
    }
    const auto it = pending_.find(response.id);
    if (it == pending_.end()) continue;
    Pending pending = std::move(it->second);
    pending_.erase(it);

    ResolutionResult& result = results_[pending.query_id];
    result.success = true;
    result.completed_at = host_.loop().now();
    result.cost.dns_message_bytes += wire.size();
    result.response = std::move(response);
    ++completed_;
    obs_span_cost(obs_, pending.span, result.cost);
    obs_count_cost(obs_, cmetrics_, result.cost);
    obs_finish_resolution(obs_, tmetrics_, pending.span, "tcp", result);
    if (pending.callback) pending.callback(result);
  }
}

void TcpDnsClient::on_close() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [dns_id, entry] : pending) {
    ResolutionResult& result = results_[entry.query_id];
    result.success = false;
    result.completed_at = host_.loop().now();
    ++completed_;
    obs_finish_resolution(obs_, tmetrics_, entry.span, "tcp", result);
    if (entry.callback) entry.callback(result);
  }
}

void TcpDnsClient::disconnect() {
  if (stream_) stream_->close();
}

bool TcpDnsClient::connected() const {
  return stream_ && stream_->is_open();
}

const simnet::TcpCounters* TcpDnsClient::tcp_counters() const {
  return tcp_ ? &tcp_->counters() : nullptr;
}

const ResolutionResult& TcpDnsClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
