// Shared observability glue for the resolver clients. The span and metric
// naming conventions live here so every transport reports the same way; the
// names are a stable contract documented in EXPERIMENTS.md ("Observability").
//
// All helpers are no-ops when the SpanContext carries no tracer/registry, so
// uninstrumented runs pay only a null-pointer check.
#pragma once

#include <string>

#include "core/client.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace dohperf::core {

/// Pre-registered handles for one transport's client.* metric family.
/// Clients keep one of these per instance; bind() is idempotent and
/// re-binds automatically when the registry changes (set_obs rebinding),
/// so the per-query path is pure dense-slot writes.
struct TransportMetrics {
  obs::Registry* registry = nullptr;
  obs::MetricId queries;
  obs::MetricId success;
  obs::MetricId failures;
  obs::MetricId servfail;
  obs::MetricId resolution_ms;

  void bind(obs::Registry* r, const std::string& transport) {
    registry = r;
    if (r == nullptr) return;
    const std::string prefix = "client." + transport;
    queries = r->register_counter(prefix + ".queries");
    success = r->register_counter(prefix + ".success");
    failures = r->register_counter(prefix + ".failures");
    servfail = r->register_counter(prefix + ".servfail");
    resolution_ms = r->register_histogram(prefix + ".resolution_ms");
  }
};

/// Pre-registered handles for the global bytes.* counters (obs_count_cost).
struct CostMetrics {
  obs::Registry* registry = nullptr;
  obs::MetricId wire;
  obs::MetricId dns;
  obs::MetricId tcp;
  obs::MetricId tls;
  obs::MetricId http_hdr;
  obs::MetricId http_body;
  obs::MetricId http_mgmt;

  void bind(obs::Registry* r) {
    registry = r;
    if (r == nullptr) return;
    wire = r->register_counter("bytes.wire");
    dns = r->register_counter("bytes.dns");
    tcp = r->register_counter("bytes.tcp");
    tls = r->register_counter("bytes.tls");
    http_hdr = r->register_counter("bytes.http_hdr");
    http_body = r->register_counter("bytes.http_body");
    http_mgmt = r->register_counter("bytes.http_mgmt");
  }
};

/// Open the root `resolution` span for one query and count it under
/// `client.<transport>.queries`. Returns 0 when tracing is off.
inline obs::SpanId obs_begin_resolution(const obs::SpanContext& obs,
                                        const std::string& transport,
                                        const dns::Name& name,
                                        dns::RType type) {
  if (obs.metrics != nullptr) {
    obs.metrics->add("client." + transport + ".queries");
  }
  const obs::SpanId span = obs.begin("resolution");
  if (span != 0) {
    obs.set_attr(span, "transport", transport);
    obs.set_attr(span, "query", name.to_string());
    obs.set_attr(span, "qtype", dns::to_string(type));
  }
  return span;
}

/// Copy a CostReport onto a span as the per-layer byte attributes behind the
/// fig5 breakdown. Safe on already-closed spans (attributes may arrive after
/// the span ends, e.g. when costs are finalized lazily at result() time).
inline void obs_span_cost(const obs::SpanContext& obs, obs::SpanId span,
                          const CostReport& cost) {
  if (span == 0) return;
  const auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs.set_attr(span, "bytes.wire", i64(cost.wire_bytes));
  obs.set_attr(span, "bytes.dns", i64(cost.dns_message_bytes));
  obs.set_attr(span, "bytes.tcp", i64(cost.tcp_overhead_bytes));
  obs.set_attr(span, "bytes.tls", i64(cost.tls_overhead_bytes));
  obs.set_attr(span, "bytes.http_hdr", i64(cost.http_header_bytes));
  obs.set_attr(span, "bytes.http_body", i64(cost.http_body_bytes));
  obs.set_attr(span, "bytes.http_mgmt", i64(cost.http_mgmt_bytes));
  obs.set_attr(span, "packets", i64(cost.packets));
}

/// Accumulate a CostReport into the global bytes.* counters.
inline void obs_count_cost(const obs::SpanContext& obs,
                           const CostReport& cost) {
  if (obs.metrics == nullptr) return;
  auto& m = *obs.metrics;
  m.add("bytes.wire", cost.wire_bytes);
  m.add("bytes.dns", cost.dns_message_bytes);
  m.add("bytes.tcp", cost.tcp_overhead_bytes);
  m.add("bytes.tls", cost.tls_overhead_bytes);
  m.add("bytes.http_hdr", cost.http_header_bytes);
  m.add("bytes.http_body", cost.http_body_bytes);
  m.add("bytes.http_mgmt", cost.http_mgmt_bytes);
}

/// Close the `resolution` span with its outcome and record the
/// success/failure/servfail counters plus the resolution-time histogram.
/// Byte attributes are NOT set here — clients with lazily finalized costs
/// attach them later via obs_span_cost().
inline void obs_finish_resolution(const obs::SpanContext& obs,
                                  obs::SpanId span,
                                  const std::string& transport,
                                  const ResolutionResult& result) {
  if (obs.metrics != nullptr) {
    auto& m = *obs.metrics;
    m.add("client." + transport +
          (result.success ? ".success" : ".failures"));
    if (result.success &&
        result.response.flags.rcode == dns::Rcode::kServFail) {
      m.add("client." + transport + ".servfail");
    }
    m.observe("client." + transport + ".resolution_ms",
              static_cast<double>(result.resolution_time()) / 1000.0);
  }
  if (span != 0) {
    obs.set_attr(span, "success", result.success);
    obs.end(span);
  }
}

// ---- Handle-cached fast-path overloads ------------------------------------
// Same behaviour and metric names as the name-keyed helpers above (the
// export is byte-identical either way); the per-query cost drops to dense
// slot writes after the first call binds the handles.

/// obs_begin_resolution via pre-registered handles.
inline obs::SpanId obs_begin_resolution(const obs::SpanContext& obs,
                                        TransportMetrics& m,
                                        const std::string& transport,
                                        const dns::Name& name,
                                        dns::RType type) {
  if (m.registry != obs.metrics) m.bind(obs.metrics, transport);
  if (obs.metrics != nullptr) obs.metrics->add(m.queries);
  const obs::SpanId span = obs.begin("resolution");
  if (span != 0) {
    obs.set_attr(span, "transport", transport);
    obs.set_attr(span, "query", name.to_string());
    obs.set_attr(span, "qtype", dns::to_string(type));
  }
  return span;
}

/// obs_count_cost via pre-registered handles.
inline void obs_count_cost(const obs::SpanContext& obs, CostMetrics& m,
                           const CostReport& cost) {
  if (obs.metrics == nullptr) return;
  if (m.registry != obs.metrics) m.bind(obs.metrics);
  auto& r = *obs.metrics;
  r.add(m.wire, cost.wire_bytes);
  r.add(m.dns, cost.dns_message_bytes);
  r.add(m.tcp, cost.tcp_overhead_bytes);
  r.add(m.tls, cost.tls_overhead_bytes);
  r.add(m.http_hdr, cost.http_header_bytes);
  r.add(m.http_body, cost.http_body_bytes);
  r.add(m.http_mgmt, cost.http_mgmt_bytes);
}

/// obs_finish_resolution via pre-registered handles.
inline void obs_finish_resolution(const obs::SpanContext& obs,
                                  TransportMetrics& m, obs::SpanId span,
                                  const std::string& transport,
                                  const ResolutionResult& result) {
  if (obs.metrics != nullptr) {
    if (m.registry != obs.metrics) m.bind(obs.metrics, transport);
    auto& r = *obs.metrics;
    r.add(result.success ? m.success : m.failures);
    if (result.success &&
        result.response.flags.rcode == dns::Rcode::kServFail) {
      r.add(m.servfail);
    }
    r.observe(m.resolution_ms,
              static_cast<double>(result.resolution_time()) / 1000.0);
  }
  if (span != 0) {
    obs.set_attr(span, "success", result.success);
    obs.end(span);
  }
}

}  // namespace dohperf::core
