// Shared observability glue for the resolver clients. The span and metric
// naming conventions live here so every transport reports the same way; the
// names are a stable contract documented in EXPERIMENTS.md ("Observability").
//
// All helpers are no-ops when the SpanContext carries no tracer/registry, so
// uninstrumented runs pay only a null-pointer check.
#pragma once

#include <string>

#include "core/client.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace dohperf::core {

/// Open the root `resolution` span for one query and count it under
/// `client.<transport>.queries`. Returns 0 when tracing is off.
inline obs::SpanId obs_begin_resolution(const obs::SpanContext& obs,
                                        const std::string& transport,
                                        const dns::Name& name,
                                        dns::RType type) {
  if (obs.metrics != nullptr) {
    obs.metrics->add("client." + transport + ".queries");
  }
  const obs::SpanId span = obs.begin("resolution");
  if (span != 0) {
    obs.set_attr(span, "transport", transport);
    obs.set_attr(span, "query", name.to_string());
    obs.set_attr(span, "qtype", dns::to_string(type));
  }
  return span;
}

/// Copy a CostReport onto a span as the per-layer byte attributes behind the
/// fig5 breakdown. Safe on already-closed spans (attributes may arrive after
/// the span ends, e.g. when costs are finalized lazily at result() time).
inline void obs_span_cost(const obs::SpanContext& obs, obs::SpanId span,
                          const CostReport& cost) {
  if (span == 0) return;
  const auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs.set_attr(span, "bytes.wire", i64(cost.wire_bytes));
  obs.set_attr(span, "bytes.dns", i64(cost.dns_message_bytes));
  obs.set_attr(span, "bytes.tcp", i64(cost.tcp_overhead_bytes));
  obs.set_attr(span, "bytes.tls", i64(cost.tls_overhead_bytes));
  obs.set_attr(span, "bytes.http_hdr", i64(cost.http_header_bytes));
  obs.set_attr(span, "bytes.http_body", i64(cost.http_body_bytes));
  obs.set_attr(span, "bytes.http_mgmt", i64(cost.http_mgmt_bytes));
  obs.set_attr(span, "packets", i64(cost.packets));
}

/// Accumulate a CostReport into the global bytes.* counters.
inline void obs_count_cost(const obs::SpanContext& obs,
                           const CostReport& cost) {
  if (obs.metrics == nullptr) return;
  auto& m = *obs.metrics;
  m.add("bytes.wire", cost.wire_bytes);
  m.add("bytes.dns", cost.dns_message_bytes);
  m.add("bytes.tcp", cost.tcp_overhead_bytes);
  m.add("bytes.tls", cost.tls_overhead_bytes);
  m.add("bytes.http_hdr", cost.http_header_bytes);
  m.add("bytes.http_body", cost.http_body_bytes);
  m.add("bytes.http_mgmt", cost.http_mgmt_bytes);
}

/// Close the `resolution` span with its outcome and record the
/// success/failure/servfail counters plus the resolution-time histogram.
/// Byte attributes are NOT set here — clients with lazily finalized costs
/// attach them later via obs_span_cost().
inline void obs_finish_resolution(const obs::SpanContext& obs,
                                  obs::SpanId span,
                                  const std::string& transport,
                                  const ResolutionResult& result) {
  if (obs.metrics != nullptr) {
    auto& m = *obs.metrics;
    m.add("client." + transport +
          (result.success ? ".success" : ".failures"));
    if (result.success &&
        result.response.flags.rcode == dns::Rcode::kServFail) {
      m.add("client." + transport + ".servfail");
    }
    m.observe("client." + transport + ".resolution_ms",
              static_cast<double>(result.resolution_time()) / 1000.0);
  }
  if (span != 0) {
    obs.set_attr(span, "success", result.success);
    obs.end(span);
  }
}

}  // namespace dohperf::core
