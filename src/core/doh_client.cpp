#include "core/doh_client.hpp"

#include <algorithm>

#include "core/obs_hooks.hpp"
#include "dns/base64url.hpp"
#include "dns/json.hpp"

namespace dohperf::core {

namespace {

constexpr std::string_view kDnsMessage = "application/dns-message";
constexpr std::string_view kDnsJson = "application/dns-json";
constexpr std::string_view kUserAgent =
    "Mozilla/5.0 (X11; Linux x86_64; rv:66.0) Gecko/20100101 Firefox/66.0";

}  // namespace

CostReport DohClient::Stack::snapshot() const {
  return core::snapshot(tcp ? &tcp->counters() : nullptr,
                        tls ? &tls->counters() : nullptr,
                        h1 ? &h1->counters() : nullptr,
                        h2 ? &h2->counters() : nullptr);
}

DohClient::DohClient(simnet::Host& host, simnet::Address server,
                     DohClientConfig config)
    : host_(host),
      server_(server),
      config_(std::move(config)),
      backoff_(config_.retry),
      metric_key_(config_.http_version == HttpVersion::kHttp2 ? "doh_h2"
                                                              : "doh_h1") {}

void DohClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  const std::string prefix = "client." + metric_key_;
  m_conn_open_ = r->register_counter(prefix + ".conn_open");
  m_conn_reuse_ = r->register_counter(prefix + ".conn_reuse");
  m_reconnects_ = r->register_counter(prefix + ".reconnects");
  m_retries_ = r->register_counter(prefix + ".retries");
  m_timeouts_ = r->register_counter(prefix + ".timeouts");
  m_hpack_dyn_hits_ = r->register_counter("client.doh.hpack_dyn_hits");
}

std::shared_ptr<DohClient::Stack> DohClient::make_stack(obs::SpanId parent) {
  auto stack = std::make_shared<Stack>();
  bind_obs_ids();
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  if (config_.obs.tracer != nullptr) {
    stack->connect_span = config_.obs.tracer->begin(parent, "connect");
    stack->tcp_hs_span =
        config_.obs.tracer->begin(stack->connect_span, "tcp_handshake");
  }
  stack->tcp = host_.tcp_connect(server_);

  tlssim::ClientConfig tls_config;
  tls_config.sni = config_.server_name;
  tls_config.min_version = config_.min_tls;
  tls_config.max_version = config_.max_tls;
  tls_config.session_cache = config_.session_cache;
  tls_config.alpn = {config_.http_version == HttpVersion::kHttp2
                         ? "h2"
                         : "http/1.1"};
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(stack->tcp),
      std::move(tls_config));
  stack->tls = tls.get();

  // One error handler per connection, not per query: a transport loss or
  // GOAWAY fails every query in flight on this stack at once.
  std::weak_ptr<Stack> weak = stack;
  auto on_error = [this, weak]() {
    if (auto s = weak.lock()) on_stack_error(s);
  };

  if (config_.obs.tracer != nullptr) {
    // Split connection setup into tcp_handshake / tls_handshake spans. The
    // hooks stay with us even though the HTTP layer owns the TLS handlers.
    tls->set_transport_open_hook([this, weak]() {
      auto s = weak.lock();
      if (!s) return;
      config_.obs.end(s->tcp_hs_span);
      s->tcp_hs_span = 0;
      s->tls_hs_span =
          config_.obs.tracer->begin(s->connect_span, "tls_handshake");
    });
    tls->set_established_hook([this, weak]() {
      auto s = weak.lock();
      if (!s) return;
      if (s->tls_hs_span != 0 && s->tls != nullptr) {
        config_.obs.set_attr(s->tls_hs_span, "tls_version",
                             tlssim::to_string(s->tls->version()));
        config_.obs.set_attr(s->tls_hs_span, "resumed", s->tls->resumed());
        config_.obs.set_attr(s->tls_hs_span, "alpn", s->tls->alpn());
      }
      config_.obs.end(s->tls_hs_span);
      config_.obs.end(s->connect_span);
      s->tls_hs_span = 0;
      s->connect_span = 0;
    });
  }

  if (config_.http_version == HttpVersion::kHttp2) {
    stack->h2 = std::make_unique<http2::Http2Connection>(
        std::move(tls), http2::Http2Connection::Role::kClient, config_.h2);
    stack->h2->set_error_handler(std::move(on_error));
    if (config_.obs.tracer != nullptr) {
      stack->h2->set_stream_observer(
          [this, weak](std::uint32_t stream_id, http2::StreamEvent event) {
            if (auto s = weak.lock()) on_stream_event(s, stream_id, event);
          });
    }
  } else {
    stack->h1 = std::make_unique<http1::Http1Client>(std::move(tls),
                                                     config_.h1_pipelining);
    stack->h1->set_error_handler(std::move(on_error));
  }
  return stack;
}

void DohClient::on_stream_event(const std::shared_ptr<Stack>& stack,
                                std::uint32_t stream_id,
                                http2::StreamEvent event) {
  switch (event) {
    case http2::StreamEvent::kRequestSent: {
      if (stack->awaiting_stream.empty()) return;
      const std::uint64_t query_id = stack->awaiting_stream.front();
      stack->awaiting_stream.pop_front();
      stack->stream_to_query.emplace(stream_id, query_id);
      QueryState& state = states_[query_id];
      config_.obs.set_attr(state.request_span, "stream_id",
                           static_cast<std::int64_t>(stream_id));
      config_.obs.end(state.request_span);
      return;
    }
    case http2::StreamEvent::kResponseBegan: {
      const auto it = stack->stream_to_query.find(stream_id);
      if (it == stack->stream_to_query.end()) return;
      QueryState& state = states_[it->second];
      if (state.done || state.span == 0) return;
      state.response_span = config_.obs.tracer->begin(state.span, "response");
      config_.obs.set_attr(state.response_span, "stream_id",
                           static_cast<std::int64_t>(stream_id));
      return;
    }
    case http2::StreamEvent::kStreamClosed: {
      const auto it = stack->stream_to_query.find(stream_id);
      if (it == stack->stream_to_query.end()) return;
      QueryState& state = states_[it->second];
      stack->stream_to_query.erase(it);
      config_.obs.end(state.response_span);
      state.response_span = 0;
      return;
    }
  }
}

std::shared_ptr<DohClient::Stack> DohClient::stack_for_query(
    obs::SpanId parent) {
  if (!config_.persistent) return make_stack(parent);
  // Reuse the stack while it is connecting or open; replace it once the
  // transport failed, closed, or the server announced shutdown (GOAWAY).
  const bool usable = persistent_stack_ && !persistent_stack_->broken &&
                      !persistent_stack_->tls->failed() &&
                      !persistent_stack_->tls->closed() &&
                      !(persistent_stack_->h2 &&
                        persistent_stack_->h2->goaway_received());
  if (!usable) {
    persistent_stack_ = make_stack(parent);
  } else if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_reuse_);
  }
  return persistent_stack_;
}

std::uint64_t DohClient::resolve(const dns::Name& name, dns::RType type,
                                 ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  bind_obs_ids();
  const obs::SpanId span =
      obs_begin_resolution(config_.obs, tmetrics_, metric_key_, name, type);
  auto stack = stack_for_query(span);

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));

  QueryState state;
  state.callback = std::move(callback);
  state.name = name;
  state.type = type;
  state.retries_left = config_.retry.max_retries;
  state.stack = stack;
  state.start = stack->snapshot();
  state.fresh_stack = !config_.persistent;
  state.span = span;
  states_.push_back(std::move(state));

  issue(stack, query_id, name, type);
  return query_id;
}

void DohClient::issue(const std::shared_ptr<Stack>& stack,
                      std::uint64_t query_id, const dns::Name& name,
                      dns::RType type) {
  // RFC 8484 §4.1: use DNS ID 0 for cache friendliness; correlation is via
  // the HTTP exchange itself.
  dns::Message query = dns::Message::make_query(0, name, type);
  if (config_.pad_queries_to > 0) {
    query.pad_to_multiple(config_.pad_queries_to);
  }
  dns::Bytes body;
  std::string target = config_.path;
  std::string method = "POST";
  std::string accept(kDnsMessage);
  std::string content_type(kDnsMessage);
  std::size_t query_dns_bytes = 0;

  switch (config_.method) {
    case DohMethod::kPost: {
      body = query.encode();
      query_dns_bytes = body.size();
      break;
    }
    case DohMethod::kGet: {
      const dns::Bytes wire = query.encode();
      query_dns_bytes = wire.size();
      target += "?dns=" + dns::base64url_encode(wire);
      method = "GET";
      content_type.clear();
      break;
    }
    case DohMethod::kJsonGet: {
      target += "?" + dns::dns_json_query_string(name, type);
      method = "GET";
      accept = kDnsJson;
      content_type.clear();
      break;
    }
  }
  results_[query_id].cost.dns_message_bytes += query_dns_bytes;

  ++states_[query_id].attempt;
  if (states_[query_id].span != 0) {
    QueryState& qstate = states_[query_id];
    qstate.request_span =
        config_.obs.tracer->begin(qstate.span, "request");
    config_.obs.set_attr(qstate.request_span, "attempt",
                         static_cast<std::int64_t>(qstate.attempt));
    // h2: the stream observer resolves this to a stream id once the
    // HEADERS actually leaves (possibly after the handshake).
    if (stack->h2) stack->awaiting_stream.push_back(query_id);
  }

  stack->outstanding.push_back(query_id);
  if (config_.retry.query_timeout > 0) {
    states_[query_id].timeout_timer = host_.loop().schedule_in(
        config_.retry.query_timeout,
        [this, query_id]() { on_query_timeout(query_id); });
  }

  const auto handle_body = [this, query_id](int status,
                                            const std::string& content_type,
                                            const dns::Bytes& payload) {
    if (status != 200) {
      complete(query_id, false, {}, 0);
      return;
    }
    try {
      if (content_type == kDnsJson) {
        dns::Message response =
            dns::from_dns_json(dns::to_string(payload));
        complete(query_id, true, std::move(response), payload.size());
      } else {
        dns::Message response = dns::Message::decode(payload);
        complete(query_id, true, std::move(response), payload.size());
      }
    } catch (const std::exception&) {
      complete(query_id, false, {}, 0);
    }
  };

  if (stack->h2) {
    http2::H2Message request;
    request.headers.push_back({":method", method});
    request.headers.push_back({":scheme", "https"});
    request.headers.push_back({":authority", config_.server_name});
    request.headers.push_back({":path", target});
    request.headers.push_back({"accept", accept});
    request.headers.push_back({"accept-encoding", "gzip, deflate, br"});
    request.headers.push_back({"accept-language", "en-US,en;q=0.5"});
    request.headers.push_back({"user-agent", std::string(kUserAgent)});
    if (!content_type.empty()) {
      request.headers.push_back({"content-type", content_type});
      request.headers.push_back(
          {"content-length", std::to_string(body.size())});
    }
    request.body = std::move(body);
    stack->h2->request(std::move(request),
                       [handle_body](const http2::H2Message& response) {
                         std::string status = "0";
                         std::string ct;
                         for (const auto& f : response.headers) {
                           if (f.name == ":status") status = f.value;
                           if (f.name == "content-type") ct = f.value;
                         }
                         handle_body(std::atoi(status.c_str()), ct,
                                     response.body);
                       });
  } else {
    http1::Request request;
    request.method = method;
    request.target = target;
    request.headers.add("Host", config_.server_name);
    request.headers.add("User-Agent", std::string(kUserAgent));
    request.headers.add("Accept", accept);
    if (!content_type.empty()) {
      request.headers.add("Content-Type", content_type);
    }
    if (!config_.persistent) {
      request.headers.add("Connection", "close");
    }
    request.body = std::move(body);
    stack->h1->request(std::move(request),
                       [handle_body](const http1::Response& response) {
                         handle_body(
                             response.status,
                             response.headers.get("content-type").value_or(""),
                             response.body);
                       });
  }
}

void DohClient::on_stack_error(const std::shared_ptr<Stack>& stack) {
  if (stack->broken) return;  // double report (close after reset etc.)
  stack->broken = true;
  if (persistent_stack_ == stack) persistent_stack_.reset();

  // Spans of a connection that died mid-handshake must not stay open.
  config_.obs.end(stack->tcp_hs_span);
  config_.obs.end(stack->tls_hs_span);
  config_.obs.end(stack->connect_span);
  stack->tcp_hs_span = stack->tls_hs_span = stack->connect_span = 0;

  std::vector<std::uint64_t> victims;
  victims.swap(stack->outstanding);
  if (victims.empty()) return;

  const bool can_retry = config_.retry.max_retries > 0;
  // One reconnect delay per connection failure; every surviving query
  // re-issues together on the replacement connection.
  simnet::TimeUs delay = 0;
  bool scheduled_any = false;
  for (const std::uint64_t query_id : victims) {
    QueryState& state = states_[query_id];
    if (state.done) continue;
    host_.loop().cancel(state.timeout_timer);
    config_.obs.end(state.request_span);
    config_.obs.end(state.response_span);
    state.request_span = state.response_span = 0;
    // A connection failure charges every query's retry budget (their
    // attempts died with the transport); a timeout teardown charges only
    // the suspect -- the rest were merely queued behind it.
    const bool charge = !timeout_teardown_ || query_id == suspect_query_id_;
    if (!can_retry || (charge && state.retries_left <= 0)) {
      if (can_retry) ++retry_stats_.budget_exhausted;
      complete(query_id, false, {}, 0);
      continue;
    }
    if (!scheduled_any) {
      delay = backoff_.next();
      ++retry_stats_.reconnects;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_reconnects_);
      }
      scheduled_any = true;
    }
    if (charge) --state.retries_left;
    ++retry_stats_.retried_queries;
    if (state.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(state.span, "retry");
      config_.obs.set_attr(
          retry, "reason",
          std::string(timeout_teardown_ ? "timeout_teardown"
                                        : "connection_loss"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(state.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    host_.loop().schedule_in(delay,
                             [this, query_id]() { reissue(query_id); });
  }
}

void DohClient::on_query_timeout(std::uint64_t query_id) {
  QueryState& state = states_[query_id];
  if (state.done) return;
  ++retry_stats_.query_timeouts;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_timeouts_);
  }
  const auto stack = state.stack;
  if (config_.retry.max_retries > 0 && state.retries_left > 0) {
    if (stack && stack->h1 && !stack->broken) {
      // HTTP/1.1 serializes responses on the connection, so a stalled
      // exchange blocks everything queued behind it; re-issuing here would
      // join the same blocked queue. Kill the suspect connection and let
      // the reconnect path re-issue every query in flight on it, this one
      // included.
      auto& out = stack->outstanding;
      out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
      out.push_back(query_id);  // re-issue the suspect last: a repeat stall
                                // then cannot block the rest of the batch
      suspect_query_id_ = query_id;
      timeout_teardown_ = true;
      if (stack->tcp) stack->tcp->abort();  // no local callbacks fire
      on_stack_error(stack);
      suspect_query_id_ = 0;
      timeout_teardown_ = false;
      return;
    }
    // HTTP/2 multiplexes streams independently: only this exchange is
    // stalled, so re-issue immediately — the elapsed timeout was the wait.
    if (stack) {
      auto& out = stack->outstanding;
      out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
    }
    --state.retries_left;
    ++retry_stats_.retried_queries;
    config_.obs.end(state.request_span);
    config_.obs.end(state.response_span);
    state.request_span = state.response_span = 0;
    if (state.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(state.span, "retry");
      config_.obs.set_attr(retry, "reason", std::string("timeout"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(state.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    reissue(query_id);
    return;
  }
  if (stack) {
    auto& out = stack->outstanding;
    out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
  }
  if (config_.retry.max_retries > 0) ++retry_stats_.budget_exhausted;
  complete(query_id, false, {}, 0);
}

void DohClient::reissue(std::uint64_t query_id) {
  QueryState& state = states_[query_id];
  if (state.done) return;
  auto stack = stack_for_query(state.span);
  state.stack = stack;
  state.start = stack->snapshot();
  issue(stack, query_id, state.name, state.type);
}

void DohClient::complete(std::uint64_t query_id, bool success,
                         dns::Message response, std::size_t dns_bytes) {
  QueryState& state = states_[query_id];
  if (state.done) return;  // error handler may race the response
  state.done = true;
  host_.loop().cancel(state.timeout_timer);
  if (state.stack) {
    auto& out = state.stack->outstanding;
    out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
  }
  if (success) backoff_.reset();
  if (!state.fresh_stack && state.stack) {
    // Persistent connection: freeze the counter window one event from now,
    // so the TCP ACK triggered by the response segment is still attributed
    // to this query, but later queries are not.
    host_.loop().schedule_in(0, [this, query_id]() {
      QueryState& s = states_[query_id];
      if (s.stack && !s.have_end) {
        s.end = s.stack->snapshot();
        s.have_end = true;
      }
    });
  }

  ResolutionResult& result = results_[query_id];
  result.success = success;
  result.completed_at = host_.loop().now();
  if (success) {
    result.cost.dns_message_bytes += dns_bytes;
    result.response = std::move(response);
  } else {
    ++failures_;
  }
  ++completed_;

  config_.obs.end(state.request_span);
  config_.obs.end(state.response_span);
  state.request_span = state.response_span = 0;
  if (state.stack && state.stack->h2 && config_.obs.metrics != nullptr) {
    // HPACK dynamic-table hits are per-connection cumulative; export the
    // delta since the last completion on this stack.
    const std::uint64_t hits = state.stack->h2->encoder_stats().indexed_dynamic;
    if (hits > state.stack->hpack_reported) {
      config_.obs.metrics->add(m_hpack_dyn_hits_,
                               hits - state.stack->hpack_reported);
      state.stack->hpack_reported = hits;
    }
  }
  obs_finish_resolution(config_.obs, tmetrics_, state.span, metric_key_,
                        result);

  if (!config_.persistent && state.stack) {
    // Tear the connection down; the remaining FIN/close-notify bytes are
    // captured when the cost is finalized in result().
    if (state.stack->h2) state.stack->h2->close();
    if (state.stack->h1) state.stack->h1->close();
  }
  // Move the callback out first: it may start new resolutions, which can
  // reallocate states_ and invalidate `state`.
  auto callback = std::move(state.callback);
  if (callback) callback(result);
}

const ResolutionResult& DohClient::result(std::uint64_t id) const {
  const QueryState& state = states_.at(id);
  ResolutionResult& result = results_.at(id);
  if (state.done && state.stack) {
    // Finalize the transport cost. Fresh stacks are read at call time so
    // the teardown packets are included (run the loop to idle first);
    // persistent stacks use the window frozen at completion.
    const std::size_t dns_bytes = result.cost.dns_message_bytes;
    const CostReport end =
        state.have_end ? state.end : state.stack->snapshot();
    result.cost = end - state.start;
    result.cost.dns_message_bytes = dns_bytes;
    if (!state.cost_observed) {
      // Attach the per-layer byte attributes the first time the finalized
      // cost is read — by construction they match this CostReport exactly.
      state.cost_observed = true;
      obs_span_cost(config_.obs, state.span, result.cost);
      obs_count_cost(config_.obs, cmetrics_, result.cost);
    }
  }
  return result;
}

void DohClient::disconnect() {
  if (!persistent_stack_) return;
  if (persistent_stack_->h2) persistent_stack_->h2->close();
  if (persistent_stack_->h1) persistent_stack_->h1->close();
  persistent_stack_.reset();
}

const simnet::TcpCounters* DohClient::tcp_counters() const {
  return persistent_stack_ ? &persistent_stack_->tcp->counters() : nullptr;
}

const tlssim::TlsCounters* DohClient::tls_counters() const {
  return persistent_stack_ && persistent_stack_->tls
             ? &persistent_stack_->tls->counters()
             : nullptr;
}

}  // namespace dohperf::core
