#include "core/doh_client.hpp"

#include <algorithm>

#include "core/obs_hooks.hpp"
#include "dns/base64url.hpp"
#include "dns/json.hpp"

namespace dohperf::core {

namespace {

constexpr std::string_view kDnsMessage = "application/dns-message";
constexpr std::string_view kDnsJson = "application/dns-json";
constexpr std::string_view kUserAgent =
    "Mozilla/5.0 (X11; Linux x86_64; rv:66.0) Gecko/20100101 Firefox/66.0";

}  // namespace

CostReport DohClient::Stack::snapshot() const {
  return core::snapshot(tcp ? &tcp->counters() : nullptr,
                        tls ? &tls->counters() : nullptr,
                        h1 ? &h1->counters() : nullptr,
                        h2 ? &h2->counters() : nullptr);
}

DohClient::DohClient(simnet::Host& host, simnet::Address server,
                     DohClientConfig config)
    : host_(host),
      server_(server),
      config_(std::move(config)),
      backoff_(config_.retry),
      metric_key_(config_.http_version == HttpVersion::kHttp2 ? "doh_h2"
                                                              : "doh_h1") {
  if (config_.migration.enabled && config_.migration.react_to_host_events) {
    listener_id_ = host_.add_network_change_listener(
        [this](simnet::NetworkChangeKind kind) {
          begin_migration(simnet::to_string(kind));
        });
  }
}

DohClient::~DohClient() {
  host_.loop().cancel(stall_timer_);
  if (listener_id_ != 0) host_.remove_network_change_listener(listener_id_);
}

void DohClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  const std::string prefix = "client." + metric_key_;
  m_conn_open_ = r->register_counter(prefix + ".conn_open");
  m_conn_reuse_ = r->register_counter(prefix + ".conn_reuse");
  m_reconnects_ = r->register_counter(prefix + ".reconnects");
  m_retries_ = r->register_counter(prefix + ".retries");
  m_timeouts_ = r->register_counter(prefix + ".timeouts");
  m_migrations_ = r->register_counter(prefix + ".migrations");
  m_migration_wasted_ =
      r->register_counter(prefix + ".migration_wasted_bytes");
  m_resumed_ = r->register_counter(prefix + ".resumed_handshakes");
  m_hpack_dyn_hits_ = r->register_counter("client.doh.hpack_dyn_hits");
}

std::shared_ptr<DohClient::Stack> DohClient::make_stack(obs::SpanId parent) {
  auto stack = std::make_shared<Stack>();
  bind_obs_ids();
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  if (config_.obs.tracer != nullptr) {
    stack->connect_span = config_.obs.tracer->begin(parent, "connect");
    stack->tcp_hs_span =
        config_.obs.tracer->begin(stack->connect_span, "tcp_handshake");
  }
  stack->tcp = host_.tcp_connect(server_);

  tlssim::ClientConfig tls_config;
  tls_config.sni = config_.server_name;
  tls_config.min_version = config_.min_tls;
  tls_config.max_version = config_.max_tls;
  tls_config.session_cache = config_.session_cache;
  tls_config.alpn = {config_.http_version == HttpVersion::kHttp2
                         ? "h2"
                         : "http/1.1"};
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(stack->tcp),
      std::move(tls_config));
  stack->tls = tls.get();

  // One error handler per connection, not per query: a transport loss or
  // GOAWAY fails every query in flight on this stack at once.
  std::weak_ptr<Stack> weak = stack;
  auto on_error = [this, weak]() {
    if (auto s = weak.lock()) on_stack_error(s);
  };

  if (config_.obs.tracer != nullptr) {
    // Split connection setup into tcp_handshake / tls_handshake spans. The
    // hooks stay with us even though the HTTP layer owns the TLS handlers.
    tls->set_transport_open_hook([this, weak]() {
      auto s = weak.lock();
      if (!s) return;
      config_.obs.end(s->tcp_hs_span);
      s->tcp_hs_span = 0;
      s->tls_hs_span =
          config_.obs.tracer->begin(s->connect_span, "tls_handshake");
    });
  }
  // Always installed (not only when tracing): this is where handshake and
  // resumption accounting happens, and where a winning migration racer gets
  // promoted.
  tls->set_established_hook([this, weak]() {
    auto s = weak.lock();
    if (!s) return;
    if (s->tls_hs_span != 0 && s->tls != nullptr) {
      config_.obs.set_attr(s->tls_hs_span, "tls_version",
                           tlssim::to_string(s->tls->version()));
      config_.obs.set_attr(s->tls_hs_span, "resumed", s->tls->resumed());
      config_.obs.set_attr(s->tls_hs_span, "alpn", s->tls->alpn());
    }
    config_.obs.end(s->tls_hs_span);
    config_.obs.end(s->connect_span);
    s->tls_hs_span = 0;
    s->connect_span = 0;
    account_established(s);
    if (s == racing_stack_) {
      // Defer one (zero-delay) event: promotion tears the old stack down
      // and must not run inside this stack's own TLS callback.
      host_.loop().schedule_in(0, [this]() { promote_racer(); });
    }
  });

  if (config_.http_version == HttpVersion::kHttp2) {
    stack->h2 = std::make_unique<http2::Http2Connection>(
        std::move(tls), http2::Http2Connection::Role::kClient, config_.h2);
    stack->h2->set_error_handler(std::move(on_error));
    if (config_.obs.tracer != nullptr) {
      stack->h2->set_stream_observer(
          [this, weak](std::uint32_t stream_id, http2::StreamEvent event) {
            if (auto s = weak.lock()) on_stream_event(s, stream_id, event);
          });
    }
  } else {
    stack->h1 = std::make_unique<http1::Http1Client>(std::move(tls),
                                                     config_.h1_pipelining);
    stack->h1->set_error_handler(std::move(on_error));
  }
  return stack;
}

void DohClient::on_stream_event(const std::shared_ptr<Stack>& stack,
                                std::uint32_t stream_id,
                                http2::StreamEvent event) {
  switch (event) {
    case http2::StreamEvent::kRequestSent: {
      if (stack->awaiting_stream.empty()) return;
      const std::uint64_t query_id = stack->awaiting_stream.front();
      stack->awaiting_stream.pop_front();
      stack->stream_to_query.emplace(stream_id, query_id);
      QueryState& state = states_[query_id];
      config_.obs.set_attr(state.request_span, "stream_id",
                           static_cast<std::int64_t>(stream_id));
      config_.obs.end(state.request_span);
      return;
    }
    case http2::StreamEvent::kResponseBegan: {
      const auto it = stack->stream_to_query.find(stream_id);
      if (it == stack->stream_to_query.end()) return;
      QueryState& state = states_[it->second];
      if (state.done || state.span == 0) return;
      state.response_span = config_.obs.tracer->begin(state.span, "response");
      config_.obs.set_attr(state.response_span, "stream_id",
                           static_cast<std::int64_t>(stream_id));
      return;
    }
    case http2::StreamEvent::kStreamClosed: {
      const auto it = stack->stream_to_query.find(stream_id);
      if (it == stack->stream_to_query.end()) return;
      QueryState& state = states_[it->second];
      stack->stream_to_query.erase(it);
      config_.obs.end(state.response_span);
      state.response_span = 0;
      return;
    }
  }
}

std::shared_ptr<DohClient::Stack> DohClient::stack_for_query(
    obs::SpanId parent) {
  if (!config_.persistent) return make_stack(parent);
  // Reuse the stack while it is connecting or open; replace it once the
  // transport failed, closed, or the server announced shutdown (GOAWAY).
  const bool usable = persistent_stack_ && !persistent_stack_->broken &&
                      !persistent_stack_->tls->failed() &&
                      !persistent_stack_->tls->closed() &&
                      !(persistent_stack_->h2 &&
                        persistent_stack_->h2->goaway_received());
  if (!usable) {
    // The main stack died while a migration race was still on: adopt the
    // racer (whose handshake, possibly resumed, is already paid for)
    // instead of opening yet another connection.
    if (racing_stack_ && !racing_stack_->broken &&
        !racing_stack_->tls->failed() && !racing_stack_->tls->closed()) {
      persistent_stack_ = std::move(racing_stack_);
    } else {
      persistent_stack_ = make_stack(parent);
    }
  } else if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_reuse_);
  }
  return persistent_stack_;
}

std::uint64_t DohClient::resolve(const dns::Name& name, dns::RType type,
                                 ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  bind_obs_ids();
  const obs::SpanId span =
      obs_begin_resolution(config_.obs, tmetrics_, metric_key_, name, type);
  auto stack = stack_for_query(span);

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));

  QueryState state;
  state.callback = std::move(callback);
  state.name = name;
  state.type = type;
  state.retries_left = config_.retry.max_retries;
  state.stack = stack;
  state.start = stack->snapshot();
  state.fresh_stack = !config_.persistent;
  state.span = span;
  states_.push_back(std::move(state));

  issue(stack, query_id, name, type);
  return query_id;
}

void DohClient::issue(const std::shared_ptr<Stack>& stack,
                      std::uint64_t query_id, const dns::Name& name,
                      dns::RType type) {
  // RFC 8484 §4.1: use DNS ID 0 for cache friendliness; correlation is via
  // the HTTP exchange itself.
  dns::Message query = dns::Message::make_query(0, name, type);
  if (config_.pad_queries_to > 0) {
    query.pad_to_multiple(config_.pad_queries_to);
  }
  dns::Bytes body;
  std::string target = config_.path;
  std::string method = "POST";
  std::string accept(kDnsMessage);
  std::string content_type(kDnsMessage);
  std::size_t query_dns_bytes = 0;

  switch (config_.method) {
    case DohMethod::kPost: {
      body = query.encode();
      query_dns_bytes = body.size();
      break;
    }
    case DohMethod::kGet: {
      const dns::Bytes wire = query.encode();
      query_dns_bytes = wire.size();
      target += "?dns=" + dns::base64url_encode(wire);
      method = "GET";
      content_type.clear();
      break;
    }
    case DohMethod::kJsonGet: {
      target += "?" + dns::dns_json_query_string(name, type);
      method = "GET";
      accept = kDnsJson;
      content_type.clear();
      break;
    }
  }
  results_[query_id].cost.dns_message_bytes += query_dns_bytes;

  ++states_[query_id].attempt;
  states_[query_id].rx_at_issue =
      stack->tcp ? stack->tcp->counters().wire_bytes_received : 0;
  if (states_[query_id].span != 0) {
    QueryState& qstate = states_[query_id];
    qstate.request_span =
        config_.obs.tracer->begin(qstate.span, "request");
    config_.obs.set_attr(qstate.request_span, "attempt",
                         static_cast<std::int64_t>(qstate.attempt));
    // h2: the stream observer resolves this to a stream id once the
    // HEADERS actually leaves (possibly after the handshake).
    if (stack->h2) stack->awaiting_stream.push_back(query_id);
  }

  stack->outstanding.push_back(query_id);
  arm_stall_timer();
  if (config_.retry.query_timeout > 0) {
    states_[query_id].timeout_timer = host_.loop().schedule_in(
        config_.retry.query_timeout,
        [this, query_id]() { on_query_timeout(query_id); });
  }

  const auto handle_body = [this, query_id](int status,
                                            const std::string& content_type,
                                            const dns::Bytes& payload) {
    if (status != 200) {
      complete(query_id, false, {}, 0);
      return;
    }
    try {
      if (content_type == kDnsJson) {
        dns::Message response =
            dns::from_dns_json(dns::to_string(payload));
        complete(query_id, true, std::move(response), payload.size());
      } else {
        dns::Message response = dns::Message::decode(payload);
        complete(query_id, true, std::move(response), payload.size());
      }
    } catch (const std::exception&) {
      complete(query_id, false, {}, 0);
    }
  };

  if (stack->h2) {
    http2::H2Message request;
    request.headers.push_back({":method", method});
    request.headers.push_back({":scheme", "https"});
    request.headers.push_back({":authority", config_.server_name});
    request.headers.push_back({":path", target});
    request.headers.push_back({"accept", accept});
    request.headers.push_back({"accept-encoding", "gzip, deflate, br"});
    request.headers.push_back({"accept-language", "en-US,en;q=0.5"});
    request.headers.push_back({"user-agent", std::string(kUserAgent)});
    if (!content_type.empty()) {
      request.headers.push_back({"content-type", content_type});
      request.headers.push_back(
          {"content-length", std::to_string(body.size())});
    }
    request.body = std::move(body);
    stack->h2->request(std::move(request),
                       [handle_body](const http2::H2Message& response) {
                         std::string status = "0";
                         std::string ct;
                         for (const auto& f : response.headers) {
                           if (f.name == ":status") status = f.value;
                           if (f.name == "content-type") ct = f.value;
                         }
                         handle_body(std::atoi(status.c_str()), ct,
                                     response.body);
                       });
  } else {
    http1::Request request;
    request.method = method;
    request.target = target;
    request.headers.add("Host", config_.server_name);
    request.headers.add("User-Agent", std::string(kUserAgent));
    request.headers.add("Accept", accept);
    if (!content_type.empty()) {
      request.headers.add("Content-Type", content_type);
    }
    if (!config_.persistent) {
      request.headers.add("Connection", "close");
    }
    request.body = std::move(body);
    stack->h1->request(std::move(request),
                       [handle_body](const http1::Response& response) {
                         handle_body(
                             response.status,
                             response.headers.get("content-type").value_or(""),
                             response.body);
                       });
  }
}

void DohClient::on_stack_error(const std::shared_ptr<Stack>& stack) {
  if (stack->broken) return;  // double report (close after reset etc.)
  if (stack == racing_stack_) {
    // The migration racer died: the old path keeps the race. Defer the
    // teardown one event — this may be running inside the racer's own
    // TLS/HTTP callbacks.
    stack->broken = true;
    host_.loop().schedule_in(0, [this, stack]() {
      if (stack == racing_stack_) teardown_racer();
    });
    return;
  }
  stack->broken = true;
  if (persistent_stack_ == stack) persistent_stack_.reset();

  // Spans of a connection that died mid-handshake must not stay open.
  config_.obs.end(stack->tcp_hs_span);
  config_.obs.end(stack->tls_hs_span);
  config_.obs.end(stack->connect_span);
  stack->tcp_hs_span = stack->tls_hs_span = stack->connect_span = 0;

  std::vector<std::uint64_t> victims;
  victims.swap(stack->outstanding);
  if (victims.empty()) return;

  const bool can_retry = config_.retry.max_retries > 0;
  // One reconnect delay per connection failure; every surviving query
  // re-issues together on the replacement connection.
  simnet::TimeUs delay = 0;
  bool scheduled_any = false;
  for (const std::uint64_t query_id : victims) {
    QueryState& state = states_[query_id];
    if (state.done) continue;
    host_.loop().cancel(state.timeout_timer);
    config_.obs.end(state.request_span);
    config_.obs.end(state.response_span);
    state.request_span = state.response_span = 0;
    // A connection failure charges every query's retry budget (their
    // attempts died with the transport); a timeout teardown charges only
    // the suspect -- the rest were merely queued behind it.
    const bool charge = !timeout_teardown_ || query_id == suspect_query_id_;
    if (!can_retry || (charge && state.retries_left <= 0)) {
      if (can_retry) ++retry_stats_.budget_exhausted;
      complete(query_id, false, {}, 0);
      continue;
    }
    if (!scheduled_any) {
      delay = backoff_.next();
      ++retry_stats_.reconnects;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_reconnects_);
      }
      scheduled_any = true;
    }
    if (charge) --state.retries_left;
    ++retry_stats_.retried_queries;
    if (state.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(state.span, "retry");
      config_.obs.set_attr(
          retry, "reason",
          std::string(timeout_teardown_ ? "timeout_teardown"
                                        : "connection_loss"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(state.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    host_.loop().schedule_in(delay,
                             [this, query_id]() { reissue(query_id); });
  }
}

void DohClient::on_query_timeout(std::uint64_t query_id) {
  QueryState& state = states_[query_id];
  if (state.done) return;
  ++retry_stats_.query_timeouts;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_timeouts_);
  }
  const auto stack = state.stack;
  // Zero bytes received on the connection across the whole timeout window
  // means the path, not the stream, is stalled (e.g. the 5-tuple died under
  // a silent NAT rebind) — the moral equivalent of an h2 PING timeout. An
  // h2 per-stream re-issue would just rejoin the dead connection.
  const bool conn_dead =
      stack && !stack->broken && stack->tcp &&
      stack->tcp->counters().wire_bytes_received == state.rx_at_issue;
  if (config_.retry.max_retries > 0 && state.retries_left > 0) {
    if (stack && !stack->broken && (stack->h1 || conn_dead)) {
      // HTTP/1.1 serializes responses on the connection, so a stalled
      // exchange blocks everything queued behind it; re-issuing here would
      // join the same blocked queue. Kill the suspect connection and let
      // the reconnect path re-issue every query in flight on it, this one
      // included.
      auto& out = stack->outstanding;
      out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
      out.push_back(query_id);  // re-issue the suspect last: a repeat stall
                                // then cannot block the rest of the batch
      suspect_query_id_ = query_id;
      timeout_teardown_ = true;
      if (stack->tcp) stack->tcp->abort();  // no local callbacks fire
      on_stack_error(stack);
      suspect_query_id_ = 0;
      timeout_teardown_ = false;
      return;
    }
    // HTTP/2 multiplexes streams independently: only this exchange is
    // stalled, so re-issue immediately — the elapsed timeout was the wait.
    if (stack) {
      auto& out = stack->outstanding;
      out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
    }
    --state.retries_left;
    ++retry_stats_.retried_queries;
    config_.obs.end(state.request_span);
    config_.obs.end(state.response_span);
    state.request_span = state.response_span = 0;
    if (state.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(state.span, "retry");
      config_.obs.set_attr(retry, "reason", std::string("timeout"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(state.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    reissue(query_id);
    return;
  }
  if (stack) {
    auto& out = stack->outstanding;
    out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
  }
  if (config_.retry.max_retries > 0) ++retry_stats_.budget_exhausted;
  complete(query_id, false, {}, 0);
}

void DohClient::reissue(std::uint64_t query_id) {
  QueryState& state = states_[query_id];
  if (state.done) return;
  auto stack = stack_for_query(state.span);
  state.stack = stack;
  state.start = stack->snapshot();
  issue(stack, query_id, state.name, state.type);
}

void DohClient::complete(std::uint64_t query_id, bool success,
                         dns::Message response, std::size_t dns_bytes) {
  QueryState& state = states_[query_id];
  if (state.done) return;  // error handler may race the response
  state.done = true;
  host_.loop().cancel(state.timeout_timer);
  host_.loop().cancel(stall_timer_);
  stall_timer_ = simnet::EventId{};
  if (state.stack) {
    auto& out = state.stack->outstanding;
    out.erase(std::remove(out.begin(), out.end(), query_id), out.end());
  }
  if (success) {
    backoff_.reset();
    // A full response on the old path while racing: the stall was
    // transient, keep the connection and drop the racer.
    teardown_racer();
  }
  if (!state.fresh_stack && state.stack) {
    // Persistent connection: freeze the counter window one event from now,
    // so the TCP ACK triggered by the response segment is still attributed
    // to this query, but later queries are not.
    host_.loop().schedule_in(0, [this, query_id]() {
      QueryState& s = states_[query_id];
      if (s.stack && !s.have_end) {
        s.end = s.stack->snapshot();
        s.have_end = true;
      }
    });
  }

  ResolutionResult& result = results_[query_id];
  result.success = success;
  result.completed_at = host_.loop().now();
  if (success) {
    result.cost.dns_message_bytes += dns_bytes;
    result.response = std::move(response);
  } else {
    ++failures_;
  }
  ++completed_;

  config_.obs.end(state.request_span);
  config_.obs.end(state.response_span);
  state.request_span = state.response_span = 0;
  if (state.stack && state.stack->h2 && config_.obs.metrics != nullptr) {
    // HPACK dynamic-table hits are per-connection cumulative; export the
    // delta since the last completion on this stack.
    const std::uint64_t hits = state.stack->h2->encoder_stats().indexed_dynamic;
    if (hits > state.stack->hpack_reported) {
      config_.obs.metrics->add(m_hpack_dyn_hits_,
                               hits - state.stack->hpack_reported);
      state.stack->hpack_reported = hits;
    }
  }
  obs_finish_resolution(config_.obs, tmetrics_, state.span, metric_key_,
                        result);

  if (!config_.persistent && state.stack) {
    // Tear the connection down; the remaining FIN/close-notify bytes are
    // captured when the cost is finalized in result().
    if (state.stack->h2) state.stack->h2->close();
    if (state.stack->h1) state.stack->h1->close();
  }
  // Move the callback out first: it may start new resolutions, which can
  // reallocate states_ and invalidate `state`.
  auto callback = std::move(state.callback);
  if (callback) callback(result);
  if (persistent_stack_ && !persistent_stack_->outstanding.empty()) {
    arm_stall_timer();
  }
}

const ResolutionResult& DohClient::result(std::uint64_t id) const {
  const QueryState& state = states_.at(id);
  ResolutionResult& result = results_.at(id);
  if (state.done && state.stack) {
    // Finalize the transport cost. Fresh stacks are read at call time so
    // the teardown packets are included (run the loop to idle first);
    // persistent stacks use the window frozen at completion.
    const std::size_t dns_bytes = result.cost.dns_message_bytes;
    const CostReport end =
        state.have_end ? state.end : state.stack->snapshot();
    result.cost = end - state.start;
    result.cost.dns_message_bytes = dns_bytes;
    if (!state.cost_observed) {
      // Attach the per-layer byte attributes the first time the finalized
      // cost is read — by construction they match this CostReport exactly.
      state.cost_observed = true;
      obs_span_cost(config_.obs, state.span, result.cost);
      obs_count_cost(config_.obs, cmetrics_, result.cost);
    }
  }
  return result;
}

void DohClient::account_established(const std::shared_ptr<Stack>& stack) {
  if (stack->tls == nullptr) return;
  const bool resumed = stack->tls->resumed();
  if (resumed) {
    ++migration_stats_.resumed_handshakes;
    if (config_.obs.metrics != nullptr) config_.obs.metrics->add(m_resumed_);
  } else {
    ++migration_stats_.full_handshakes;
  }
  const auto& c = stack->tls->counters();
  migration_stats_.handshake_bytes +=
      c.handshake_bytes_sent + c.handshake_bytes_received;
  migration_stats_.handshake_rtts +=
      1 + tls_handshake_rtts(stack->tls->version(), resumed);  // +1: TCP SYN
  if (ever_connected_ && resumed && config_.obs.tracer != nullptr) {
    // A reconnect that skipped the full handshake via the session ticket.
    const obs::SpanId s = config_.obs.tracer->begin(0, "reconnect_resume");
    config_.obs.set_attr(s, "transport", metric_key_);
    config_.obs.end(s);
  }
  ever_connected_ = true;
}

void DohClient::arm_stall_timer() {
  if (!config_.migration.enabled || config_.migration.stall_timeout <= 0) {
    return;
  }
  if (stall_timer_.valid) return;
  stall_timer_ = host_.loop().schedule_in(
      config_.migration.stall_timeout, [this]() {
        stall_timer_ = simnet::EventId{};
        on_stall();
      });
}

void DohClient::on_stall() {
  if (!persistent_stack_ || persistent_stack_->outstanding.empty()) return;
  if (config_.obs.tracer != nullptr) {
    // The probe that condemned the old path before we migrate away from it.
    const obs::SpanId s = config_.obs.tracer->begin(0, "path_probe");
    config_.obs.set_attr(s, "transport", metric_key_);
    config_.obs.end(s);
  }
  begin_migration("stall");
}

void DohClient::begin_migration(const char* reason) {
  if (!config_.migration.enabled || !config_.persistent) return;
  if (racing_stack_) return;  // a race is already deciding the new path
  if (!persistent_stack_) return;  // nothing to migrate; next query reconnects
  if (config_.obs.tracer != nullptr && migrate_span_ == 0) {
    migrate_span_ = config_.obs.tracer->begin(0, "migrate");
    config_.obs.set_attr(migrate_span_, "transport", metric_key_);
    config_.obs.set_attr(migrate_span_, "reason", std::string(reason));
  }
  const bool usable = !persistent_stack_->broken &&
                      !persistent_stack_->tls->failed() &&
                      !persistent_stack_->tls->closed() &&
                      !(persistent_stack_->h2 &&
                        persistent_stack_->h2->goaway_received());
  if (!usable || persistent_stack_->outstanding.empty() ||
      !config_.migration.race) {
    // Nothing worth racing against: drop the suspect connection so the next
    // attempt reconnects on the new path, resuming via the session cache
    // when one is configured.
    auto old = persistent_stack_;
    ++migration_stats_.migrations;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_migrations_);
    }
    if (migrate_span_ != 0) {
      config_.obs.set_attr(migrate_span_, "winner", std::string("fresh"));
      config_.obs.end(migrate_span_);
      migrate_span_ = 0;
    }
    if (old->tcp) old->tcp->abort();  // no local callbacks fire
    on_stack_error(old);  // clears persistent_stack_, re-issues in flight
    return;
  }
  // Happy-eyeballs: open a fresh stack and race it against the stalled one.
  // make_stack wires the promote/teardown plumbing via the established and
  // error hooks; whichever path proves itself first wins, and the loser's
  // bytes are charged to migration_wasted_bytes.
  const auto& tc = persistent_stack_->tcp->counters();
  race_baseline_bytes_ = tc.wire_bytes_sent + tc.wire_bytes_received;
  racing_stack_ = make_stack(migrate_span_);
}

void DohClient::promote_racer() {
  if (!racing_stack_ || racing_stack_->broken ||
      racing_stack_->tls == nullptr || !racing_stack_->tls->established() ||
      racing_stack_->tls->failed() || racing_stack_->tls->closed()) {
    return;  // adopted, torn down, or died before this event fired
  }
  // The fresh path won. Everything the stalled stack moved since the race
  // began bought nothing — charge it as migration waste.
  auto old = persistent_stack_;
  std::uint64_t wasted = 0;
  if (old && old->tcp) {
    const auto& c = old->tcp->counters();
    wasted = c.wire_bytes_sent + c.wire_bytes_received - race_baseline_bytes_;
  }
  migration_stats_.migration_wasted_bytes += wasted;
  ++migration_stats_.migrations;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_migrations_);
    config_.obs.metrics->add(m_migration_wasted_, wasted);
  }
  persistent_stack_ = std::move(racing_stack_);
  if (migrate_span_ != 0) {
    config_.obs.set_attr(migrate_span_, "winner", std::string("fresh"));
    config_.obs.end(migrate_span_);
    migrate_span_ = 0;
  }
  if (old) {
    // Abort the stalled transport and let the group-retry path re-issue its
    // in-flight queries — stack_for_query now hands out the promoted stack.
    if (old->tcp) old->tcp->abort();
    on_stack_error(old);
  }
}

void DohClient::teardown_racer() {
  if (!racing_stack_) return;
  auto racer = std::move(racing_stack_);
  racer->broken = true;
  if (racer->tcp) racer->tcp->abort();
  std::uint64_t wasted = 0;
  if (racer->tcp) {
    const auto& c = racer->tcp->counters();
    wasted = c.wire_bytes_sent + c.wire_bytes_received;
  }
  migration_stats_.migration_wasted_bytes += wasted;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_migration_wasted_, wasted);
  }
  // Dangling connect spans of the abandoned racer must not stay open.
  config_.obs.end(racer->tcp_hs_span);
  config_.obs.end(racer->tls_hs_span);
  config_.obs.end(racer->connect_span);
  racer->tcp_hs_span = racer->tls_hs_span = racer->connect_span = 0;
  if (migrate_span_ != 0) {
    config_.obs.set_attr(migrate_span_, "winner", std::string("old"));
    config_.obs.end(migrate_span_);
    migrate_span_ = 0;
  }
}

void DohClient::disconnect() {
  if (!persistent_stack_) return;
  if (persistent_stack_->h2) persistent_stack_->h2->close();
  if (persistent_stack_->h1) persistent_stack_->h1->close();
  persistent_stack_.reset();
}

const simnet::TcpCounters* DohClient::tcp_counters() const {
  return persistent_stack_ ? &persistent_stack_->tcp->counters() : nullptr;
}

const tlssim::TlsCounters* DohClient::tls_counters() const {
  return persistent_stack_ && persistent_stack_->tls
             ? &persistent_stack_->tls->counters()
             : nullptr;
}

}  // namespace dohperf::core
