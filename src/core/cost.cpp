#include "core/cost.hpp"

#include <sstream>

namespace dohperf::core {

CostReport CostReport::operator-(const CostReport& other) const {
  CostReport out;
  out.wire_bytes = wire_bytes - other.wire_bytes;
  out.packets = packets - other.packets;
  out.tcp_overhead_bytes = tcp_overhead_bytes - other.tcp_overhead_bytes;
  out.tls_overhead_bytes = tls_overhead_bytes - other.tls_overhead_bytes;
  out.http_header_bytes = http_header_bytes - other.http_header_bytes;
  out.http_body_bytes = http_body_bytes - other.http_body_bytes;
  out.http_mgmt_bytes = http_mgmt_bytes - other.http_mgmt_bytes;
  out.dns_message_bytes = dns_message_bytes - other.dns_message_bytes;
  return out;
}

CostReport& CostReport::operator+=(const CostReport& other) {
  wire_bytes += other.wire_bytes;
  packets += other.packets;
  tcp_overhead_bytes += other.tcp_overhead_bytes;
  tls_overhead_bytes += other.tls_overhead_bytes;
  http_header_bytes += other.http_header_bytes;
  http_body_bytes += other.http_body_bytes;
  http_mgmt_bytes += other.http_mgmt_bytes;
  dns_message_bytes += other.dns_message_bytes;
  return *this;
}

std::string CostReport::to_string() const {
  std::ostringstream os;
  os << "wire=" << wire_bytes << "B pkts=" << packets
     << " tcp=" << tcp_overhead_bytes << " tls=" << tls_overhead_bytes
     << " hdr=" << http_header_bytes << " body=" << http_body_bytes
     << " mgmt=" << http_mgmt_bytes << " dns=" << dns_message_bytes;
  return os.str();
}

CostReport snapshot(const simnet::TcpCounters* tcp,
                    const tlssim::TlsCounters* tls,
                    const http1::HttpCounters* h1,
                    const http2::H2Counters* h2) {
  CostReport r;
  if (tcp != nullptr) {
    r.wire_bytes = tcp->total_wire_bytes();
    r.packets = tcp->total_packets();
    r.tcp_overhead_bytes = tcp->overhead_bytes();
  }
  if (tls != nullptr) {
    r.tls_overhead_bytes = tls->overhead_bytes();
  }
  if (h1 != nullptr) {
    r.http_header_bytes =
        h1->header_bytes_sent + h1->header_bytes_received;
    r.http_body_bytes = h1->body_bytes_sent + h1->body_bytes_received;
  }
  if (h2 != nullptr) {
    r.http_header_bytes +=
        h2->header_bytes_sent + h2->header_bytes_received;
    r.http_body_bytes += h2->body_bytes_sent + h2->body_bytes_received;
    r.http_mgmt_bytes += h2->mgmt_bytes_sent + h2->mgmt_bytes_received;
  }
  return r;
}

}  // namespace dohperf::core
