// Multi-resolver selector with per-resolver circuit breakers.
//
// Browsers shipping DoH configure several trusted resolvers and steer
// queries away from one that misbehaves rather than timing out on it
// repeatedly (Mozilla's TRR keeps a confirmation state machine; Chrome
// rotates within its list). This client reproduces that policy over any set
// of ResolverClients: each upstream carries a classic circuit breaker —
// closed while healthy, open for a cool-down after `failure_threshold`
// consecutive failures, half-open afterwards so a single probe query can
// close it again. Queries go to the first available resolver in preference
// order; a failure is retried on the next available one within the same
// resolve() call.
#pragma once

#include <vector>

#include "core/client.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::core {

struct HealthConfig {
  /// Consecutive failures that trip a resolver's breaker.
  int failure_threshold = 3;
  /// How long a tripped breaker stays open before a probe is allowed.
  simnet::TimeUs open_duration = simnet::seconds(5);
  /// Treat SERVFAIL/REFUSED answers as failures for breaker accounting
  /// (the transport worked, the service did not).
  bool rcode_failures = true;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct ResolverHealth {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  simnet::TimeUs open_until = 0;
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  std::uint64_t breaker_trips = 0;
};

class HealthTrackingClient final : public ResolverClient {
 public:
  /// Resolvers are tried in the given preference order; all must outlive
  /// this client.
  HealthTrackingClient(simnet::EventLoop& loop,
                       std::vector<ResolverClient*> resolvers,
                       HealthConfig config = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  const ResolverHealth& health(std::size_t resolver) const {
    return health_.at(resolver);
  }
  std::uint64_t failovers() const noexcept { return failovers_; }
  /// Queries that failed on every available resolver.
  std::uint64_t exhausted() const noexcept { return exhausted_; }

 private:
  struct Pending {
    ResolveCallback callback;
    dns::Name name;
    dns::RType type = dns::RType::kA;
    std::vector<bool> tried;  ///< one flag per resolver
    bool done = false;
  };

  /// Preferred resolver currently willing to accept a query that has not
  /// yet tried it; -1 when none remain.
  int pick(const Pending& pending) const;
  void dispatch(std::uint64_t id, std::size_t resolver);
  void on_result(std::uint64_t id, std::size_t resolver,
                 const ResolutionResult& r);
  void record_success(std::size_t resolver);
  void record_failure(std::size_t resolver);
  /// Mirror a breaker's state into the `breaker.state.<i>` gauge
  /// (0 closed, 1 open, 2 half-open).
  void export_state(std::size_t resolver);

  simnet::EventLoop& loop_;
  std::vector<ResolverClient*> resolvers_;
  HealthConfig config_;
  std::vector<ResolverHealth> health_;
  std::uint64_t completed_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t exhausted_ = 0;
  std::vector<ResolutionResult> results_;
  std::vector<Pending> pending_;
};

}  // namespace dohperf::core
