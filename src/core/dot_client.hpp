// DNS-over-TLS client (RFC 7858): TLS to port 853, two-byte length framing,
// multiple outstanding queries matched by DNS message ID.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::core {

struct DotClientConfig {
  std::string server_name = "dot.example";  ///< SNI
  tlssim::TlsVersion min_tls = tlssim::TlsVersion::kTls12;
  tlssim::TlsVersion max_tls = tlssim::TlsVersion::kTls13;
  tlssim::SessionCache* session_cache = nullptr;
};

class DotClient final : public ResolverClient {
 public:
  DotClient(simnet::Host& host, simnet::Address server,
            DotClientConfig config = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  /// Close the TLS connection (a new one is opened on the next resolve).
  void disconnect();
  bool connected() const;

  /// Connection-level counters of the current connection (null when none).
  const tlssim::TlsCounters* tls_counters() const;
  const simnet::TcpCounters* tcp_counters() const;

 private:
  void ensure_connection();
  void on_data(std::span<const std::uint8_t> data);
  void on_close();

  simnet::Host& host_;
  simnet::Address server_;
  DotClientConfig config_;

  std::shared_ptr<simnet::TcpConnection> tcp_;
  std::unique_ptr<tlssim::TlsConnection> tls_;
  dns::Bytes rx_;

  std::uint16_t next_dns_id_ = 1;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint16_t, std::pair<std::uint64_t, ResolveCallback>> pending_;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
