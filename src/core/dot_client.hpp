// DNS-over-TLS client (RFC 7858): TLS to port 853, two-byte length framing,
// multiple outstanding queries matched by DNS message ID.
//
// With a RetryPolicy (config.retry.max_retries > 0) the client reconnects
// after transport loss with exponential backoff and re-issues the queries
// that were in flight, each under its own retry budget; a per-query timeout
// optionally covers servers that accept but never answer.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/migration.hpp"
#include "core/retry.hpp"
#include "core/obs_hooks.hpp"
#include "obs/span.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::core {

struct DotClientConfig {
  std::string server_name = "dot.example";  ///< SNI
  tlssim::TlsVersion min_tls = tlssim::TlsVersion::kTls12;
  tlssim::TlsVersion max_tls = tlssim::TlsVersion::kTls13;
  tlssim::SessionCache* session_cache = nullptr;
  /// Reconnection + per-query retry behaviour; default is fail-fast.
  RetryPolicy retry;
  /// Network-churn handling (stall detection, connection racing).
  MigrationConfig migration;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

class DotClient final : public ResolverClient {
 public:
  DotClient(simnet::Host& host, simnet::Address server,
            DotClientConfig config = {});
  ~DotClient() override;

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }
  const MigrationStats& migration_stats() const noexcept {
    return migration_stats_;
  }

  /// Close the TLS connection (a new one is opened on the next resolve).
  /// Outstanding queries fail without retry — the close was deliberate.
  void disconnect();
  bool connected() const;

  /// Connection-level counters of the current connection (null when none).
  const tlssim::TlsCounters* tls_counters() const;
  const simnet::TcpCounters* tcp_counters() const;

 private:
  /// Everything needed to answer — or re-issue — one query.
  struct Pending {
    std::uint64_t query_id = 0;
    ResolveCallback callback;
    dns::Name name;
    dns::RType type = dns::RType::kA;
    int retries_left = 0;
    simnet::EventId timeout_timer;
    obs::SpanId span = 0;          ///< the resolution span
    obs::SpanId request_span = 0;  ///< current attempt
    int attempt = 0;
  };

  void ensure_connection(obs::SpanId parent);
  /// Re-register the client.dot.* handles when the registry changes.
  void bind_obs_ids();
  void send_query(std::uint16_t dns_id, Pending pending);
  void on_data(std::span<const std::uint8_t> data);
  void on_close();
  void on_query_timeout(std::uint16_t dns_id);
  void fail_query(Pending pending);
  std::uint16_t allocate_dns_id();
  void install_handlers();
  /// Handshake/resumption accounting at establishment (always on, unlike
  /// the tracer-gated spans).
  void account_established();
  void arm_stall_timer();
  void on_stall();
  void begin_migration(const char* reason);
  void promote_racer();
  void teardown_racer();
  void reissue_after_migration();

  simnet::Host& host_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::MetricId m_reconnects_;
  obs::MetricId m_retries_;
  obs::MetricId m_timeouts_;
  obs::MetricId m_migrations_;
  obs::MetricId m_migration_wasted_;
  obs::MetricId m_resumed_;
  obs::Registry* bound_metrics_ = nullptr;
  simnet::Address server_;
  DotClientConfig config_;
  Backoff backoff_;
  RetryStats retry_stats_;
  MigrationStats migration_stats_;

  std::shared_ptr<simnet::TcpConnection> tcp_;
  std::unique_ptr<tlssim::TlsConnection> tls_;
  dns::Bytes rx_;

  // Migration machinery: the fresh connection racing the stalled one, the
  // stalled side's byte counts at race start (everything it moves after
  // that is wasted if it loses), and churn-detection state.
  std::shared_ptr<simnet::TcpConnection> racing_tcp_;
  std::unique_ptr<tlssim::TlsConnection> racing_tls_;
  std::uint64_t race_baseline_bytes_ = 0;
  simnet::EventId stall_timer_;
  std::uint64_t listener_id_ = 0;
  bool ever_connected_ = false;
  obs::SpanId migrate_span_ = 0;
  obs::SpanId connect_span_ = 0;
  obs::SpanId tcp_hs_span_ = 0;
  obs::SpanId tls_hs_span_ = 0;
  bool closing_ = false;  ///< disconnect() in progress: do not retry
  /// DNS ID of a query whose timeout triggered the current connection
  /// teardown. The reconnect path re-issues it after everything else so a
  /// repeat stall cannot head-of-line-block the rest of the batch again,
  /// and charges only its retry budget: the other in-flight queries did
  /// not fail, the client preempted them.
  std::uint16_t suspect_dns_id_ = 0;
  bool timeout_teardown_ = false;

  std::uint16_t next_dns_id_ = 1;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint16_t, Pending> pending_;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
