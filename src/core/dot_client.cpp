#include "core/dot_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

DotClient::DotClient(simnet::Host& host, simnet::Address server,
                     DotClientConfig config)
    : host_(host),
      server_(server),
      config_(std::move(config)),
      backoff_(config_.retry) {
  if (config_.migration.enabled && config_.migration.react_to_host_events) {
    listener_id_ = host_.add_network_change_listener(
        [this](simnet::NetworkChangeKind kind) {
          begin_migration(simnet::to_string(kind));
        });
  }
}

DotClient::~DotClient() {
  host_.loop().cancel(stall_timer_);
  if (listener_id_ != 0) host_.remove_network_change_listener(listener_id_);
}

void DotClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_conn_open_ = r->register_counter("client.dot.conn_open");
  m_conn_reuse_ = r->register_counter("client.dot.conn_reuse");
  m_reconnects_ = r->register_counter("client.dot.reconnects");
  m_retries_ = r->register_counter("client.dot.retries");
  m_timeouts_ = r->register_counter("client.dot.timeouts");
  m_migrations_ = r->register_counter("client.dot.migrations");
  m_migration_wasted_ =
      r->register_counter("client.dot.migration_wasted_bytes");
  m_resumed_ = r->register_counter("client.dot.resumed_handshakes");
}

void DotClient::install_handlers() {
  tlssim::TlsConnection::Handlers h;
  h.on_open = [this]() {
    if (tls_hs_span_ != 0 && tls_) {
      config_.obs.set_attr(tls_hs_span_, "tls_version",
                           tlssim::to_string(tls_->version()));
      config_.obs.set_attr(tls_hs_span_, "resumed", tls_->resumed());
    }
    config_.obs.end(tls_hs_span_);
    config_.obs.end(connect_span_);
    tls_hs_span_ = 0;
    connect_span_ = 0;
    account_established();
  };
  h.on_data = [this](std::span<const std::uint8_t> d) { on_data(d); };
  h.on_close = [this]() { on_close(); };
  tls_->set_handlers(std::move(h));
}

void DotClient::account_established() {
  if (!tls_) return;
  const bool resumed = tls_->resumed();
  if (resumed) {
    ++migration_stats_.resumed_handshakes;
    if (config_.obs.metrics != nullptr) config_.obs.metrics->add(m_resumed_);
  } else {
    ++migration_stats_.full_handshakes;
  }
  const auto& c = tls_->counters();
  migration_stats_.handshake_bytes +=
      c.handshake_bytes_sent + c.handshake_bytes_received;
  migration_stats_.handshake_rtts +=
      1 + tls_handshake_rtts(tls_->version(), resumed);  // +1: TCP SYN
  if (ever_connected_ && resumed && config_.obs.tracer != nullptr) {
    // A reconnect that skipped the full handshake via the session ticket.
    const obs::SpanId s =
        config_.obs.tracer->begin(0, "reconnect_resume");
    config_.obs.set_attr(s, "transport", std::string("dot"));
    config_.obs.end(s);
  }
  ever_connected_ = true;
}

void DotClient::ensure_connection(obs::SpanId parent) {
  // A connection is reusable while it is open or still handshaking; one
  // that failed or whose transport closed (including RST mid-handshake)
  // must be replaced.
  if (tls_ && !tls_->failed() && !tls_->closed()) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_conn_reuse_);
    }
    return;
  }
  // The main connection died while a migration race was still on: adopt
  // the racer instead of opening yet another connection.
  if (racing_tls_ && !racing_tls_->failed() && !racing_tls_->closed()) {
    tcp_ = std::move(racing_tcp_);
    tls_ = std::move(racing_tls_);
    racing_tcp_.reset();
    rx_.clear();
    const bool already_open = tls_->established();
    install_handlers();
    if (already_open) account_established();
    return;
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  if (config_.obs.tracer != nullptr) {
    connect_span_ = config_.obs.tracer->begin(parent, "connect");
    tcp_hs_span_ = config_.obs.tracer->begin(connect_span_, "tcp_handshake");
  }
  tcp_ = host_.tcp_connect(server_);
  tlssim::ClientConfig tls_config;
  tls_config.sni = config_.server_name;
  tls_config.min_version = config_.min_tls;
  tls_config.max_version = config_.max_tls;
  tls_config.session_cache = config_.session_cache;
  // RFC 7858 defines no mandatory ALPN token; offer none.
  tls_ = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(tcp_), std::move(tls_config));
  if (config_.obs.tracer != nullptr) {
    tls_->set_transport_open_hook([this]() {
      config_.obs.end(tcp_hs_span_);
      tcp_hs_span_ = 0;
      tls_hs_span_ =
          config_.obs.tracer->begin(connect_span_, "tls_handshake");
    });
  }
  install_handlers();
  rx_.clear();
}

std::uint16_t DotClient::allocate_dns_id() {
  std::uint16_t dns_id = next_dns_id_++;
  while (pending_.count(dns_id) != 0 || dns_id == 0) dns_id = next_dns_id_++;
  return dns_id;
}

std::uint64_t DotClient::resolve(const dns::Name& name, dns::RType type,
                                 ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;

  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));

  Pending pending;
  pending.query_id = query_id;
  pending.callback = std::move(callback);
  pending.name = name;
  pending.type = type;
  pending.retries_left = config_.retry.max_retries;
  bind_obs_ids();
  pending.span =
      obs_begin_resolution(config_.obs, tmetrics_, "dot", name, type);
  send_query(allocate_dns_id(), std::move(pending));
  return query_id;
}

void DotClient::send_query(std::uint16_t dns_id, Pending pending) {
  ensure_connection(pending.span);
  const std::uint64_t query_id = pending.query_id;
  ++pending.attempt;
  if (pending.span != 0) {
    pending.request_span =
        config_.obs.tracer->begin(pending.span, "request");
    config_.obs.set_attr(pending.request_span, "attempt",
                         static_cast<std::int64_t>(pending.attempt));
  }

  const dns::Message query =
      dns::Message::make_query(dns_id, pending.name, pending.type);
  const dns::Bytes wire = query.encode();
  results_[query_id].cost.dns_message_bytes += wire.size();

  if (config_.retry.query_timeout > 0) {
    pending.timeout_timer = host_.loop().schedule_in(
        config_.retry.query_timeout,
        [this, dns_id]() { on_query_timeout(dns_id); });
  }
  pending_.emplace(dns_id, std::move(pending));

  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);
  arm_stall_timer();
  tls_->send(framed.take());  // queued internally until the handshake ends
}

void DotClient::on_data(std::span<const std::uint8_t> data) {
  // Bytes arriving means the path is alive: restart stall detection.
  host_.loop().cancel(stall_timer_);
  stall_timer_ = simnet::EventId{};
  rx_.insert(rx_.end(), data.begin(), data.end());
  while (rx_.size() >= 2) {
    const std::size_t len = (static_cast<std::size_t>(rx_[0]) << 8) | rx_[1];
    if (rx_.size() < 2 + len) break;
    dns::Bytes wire(rx_.begin() + 2,
                    rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(2 + len));

    dns::Message response;
    try {
      response = dns::Message::decode(wire);
    } catch (const dns::WireError&) {
      continue;
    }
    const auto it = pending_.find(response.id);
    if (it == pending_.end()) continue;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    host_.loop().cancel(pending.timeout_timer);
    backoff_.reset();

    ResolutionResult& result = results_[pending.query_id];
    result.success = true;
    result.completed_at = host_.loop().now();
    result.cost.dns_message_bytes += wire.size();
    result.response = std::move(response);
    ++completed_;
    config_.obs.end(pending.request_span);
    obs_span_cost(config_.obs, pending.span, result.cost);
    obs_count_cost(config_.obs, cmetrics_, result.cost);
    obs_finish_resolution(config_.obs, tmetrics_, pending.span, "dot", result);
    if (pending.callback) pending.callback(result);
    // A full response on the old path while racing: the stall was
    // transient, keep the connection and drop the racer.
    teardown_racer();
  }
  if (!pending_.empty()) arm_stall_timer();
}

void DotClient::on_close() {
  // Spans of a connection that died mid-handshake must not stay open.
  config_.obs.end(tcp_hs_span_);
  config_.obs.end(tls_hs_span_);
  config_.obs.end(connect_span_);
  tcp_hs_span_ = tls_hs_span_ = connect_span_ = 0;
  auto pending = std::move(pending_);
  pending_.clear();
  const bool can_retry = !closing_ && config_.retry.max_retries > 0;

  // Re-issue in issue order, except that the query whose timeout caused
  // this teardown (if any) goes last: the server answers in order, so a
  // repeat stall at the back cannot block anyone else.
  std::vector<std::pair<bool, Pending>> order;  // (is_suspect, query)
  order.reserve(pending.size());
  for (auto& [dns_id, entry] : pending) {
    if (dns_id == suspect_dns_id_) continue;
    order.emplace_back(false, std::move(entry));
  }
  if (const auto it = pending.find(suspect_dns_id_); it != pending.end()) {
    order.emplace_back(true, std::move(it->second));
  }

  // One reconnect delay per connection loss; all surviving queries re-issue
  // together on the replacement connection. A connection failure charges
  // every query's retry budget (their attempts died with the transport); a
  // timeout teardown charges only the suspect -- the rest were merely
  // queued behind it and are re-issued for free.
  simnet::TimeUs delay = 0;
  bool scheduled_any = false;
  for (auto& [is_suspect, entry] : order) {
    host_.loop().cancel(entry.timeout_timer);
    const bool charge = !timeout_teardown_ || is_suspect;
    config_.obs.end(entry.request_span);
    entry.request_span = 0;
    if (!can_retry || (charge && entry.retries_left <= 0)) {
      if (can_retry) ++retry_stats_.budget_exhausted;
      fail_query(std::move(entry));
      continue;
    }
    if (!scheduled_any) {
      delay = backoff_.next();
      ++retry_stats_.reconnects;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_reconnects_);
      }
      scheduled_any = true;
    }
    if (charge) --entry.retries_left;
    ++retry_stats_.retried_queries;
    if (entry.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(entry.span, "retry");
      config_.obs.set_attr(
          retry, "reason",
          std::string(timeout_teardown_ ? "timeout_teardown"
                                        : "connection_loss"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(entry.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    host_.loop().schedule_in(
        delay, [this, p = std::move(entry)]() mutable {
          send_query(allocate_dns_id(), std::move(p));
        });
  }
}

void DotClient::on_query_timeout(std::uint16_t dns_id) {
  const auto it = pending_.find(dns_id);
  if (it == pending_.end()) return;
  ++retry_stats_.query_timeouts;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_timeouts_);
  }
  if (config_.retry.max_retries > 0 && it->second.retries_left > 0) {
    // DoT serializes responses on one TLS stream (the resolver answers in
    // order), so a stalled exchange at the head of the line blocks every
    // response behind it and re-issuing on the same session cannot recover.
    // Discard the suspect connection -- as real stub resolvers discard
    // suspect TCP sessions -- and let the reconnect path re-issue every
    // pending query, this one included.
    suspect_dns_id_ = dns_id;
    timeout_teardown_ = true;
    if (tcp_) tcp_->abort();  // no local callbacks fire; notify ourselves
    tls_.reset();
    rx_.clear();
    on_close();
    suspect_dns_id_ = 0;
    timeout_teardown_ = false;
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (config_.retry.max_retries > 0) ++retry_stats_.budget_exhausted;
  fail_query(std::move(pending));
}

void DotClient::fail_query(Pending pending) {
  ResolutionResult& result = results_[pending.query_id];
  result.success = false;
  result.completed_at = host_.loop().now();
  ++completed_;
  config_.obs.end(pending.request_span);
  obs_span_cost(config_.obs, pending.span, result.cost);
  obs_count_cost(config_.obs, cmetrics_, result.cost);
  obs_finish_resolution(config_.obs, tmetrics_, pending.span, "dot", result);
  if (pending.callback) pending.callback(result);
}

void DotClient::arm_stall_timer() {
  if (!config_.migration.enabled || config_.migration.stall_timeout <= 0) {
    return;
  }
  if (stall_timer_.valid) return;
  stall_timer_ = host_.loop().schedule_in(
      config_.migration.stall_timeout, [this]() {
        stall_timer_ = simnet::EventId{};
        on_stall();
      });
}

void DotClient::on_stall() {
  if (pending_.empty()) return;
  if (config_.obs.tracer != nullptr) {
    // The probe that condemned the old path before we migrate away from it.
    const obs::SpanId s = config_.obs.tracer->begin(0, "path_probe");
    config_.obs.set_attr(s, "transport", std::string("dot"));
    config_.obs.end(s);
  }
  begin_migration("stall");
}

void DotClient::begin_migration(const char* reason) {
  if (!config_.migration.enabled || closing_) return;
  if (racing_tls_) return;  // a race is already deciding the new path
  if (!tls_ && pending_.empty()) return;  // nothing to migrate
  if (config_.obs.tracer != nullptr && migrate_span_ == 0) {
    migrate_span_ = config_.obs.tracer->begin(0, "migrate");
    config_.obs.set_attr(migrate_span_, "transport", std::string("dot"));
    config_.obs.set_attr(migrate_span_, "reason", std::string(reason));
  }
  const bool usable = tls_ && !tls_->failed() && !tls_->closed();
  if (!usable || pending_.empty() || !config_.migration.race) {
    // Nothing worth racing against: drop the (suspect or already dead)
    // connection so the next attempt reconnects on the new path, resuming
    // via the session cache when one is configured.
    if (tcp_) tcp_->abort();
    tls_.reset();
    rx_.clear();
    ++migration_stats_.migrations;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_migrations_);
    }
    if (migrate_span_ != 0) {
      config_.obs.set_attr(migrate_span_, "winner", std::string("fresh"));
      config_.obs.end(migrate_span_);
      migrate_span_ = 0;
    }
    if (!pending_.empty()) on_close();  // reconnect + re-issue in flight
    return;
  }
  // Happy-eyeballs: open a fresh connection and race it against the
  // stalled one. Whichever proves the path first wins; the loser's bytes
  // are charged to migration_wasted_bytes.
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  const auto& tc = tcp_->counters();
  race_baseline_bytes_ = tc.wire_bytes_sent + tc.wire_bytes_received;
  racing_tcp_ = host_.tcp_connect(server_);
  tlssim::ClientConfig tls_config;
  tls_config.sni = config_.server_name;
  tls_config.min_version = config_.min_tls;
  tls_config.max_version = config_.max_tls;
  tls_config.session_cache = config_.session_cache;
  racing_tls_ = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(racing_tcp_),
      std::move(tls_config));
  tlssim::TlsConnection::Handlers rh;
  // Both outcomes defer one (zero-delay) event: the handlers below must
  // not destroy the std::function currently executing.
  rh.on_open = [this]() {
    host_.loop().schedule_in(0, [this]() { promote_racer(); });
  };
  rh.on_close = [this]() {
    host_.loop().schedule_in(0, [this]() {
      if (racing_tls_ && (racing_tls_->failed() || racing_tls_->closed())) {
        teardown_racer();
      }
    });
  };
  racing_tls_->set_handlers(std::move(rh));
}

void DotClient::promote_racer() {
  if (!racing_tls_ || !racing_tls_->established() || racing_tls_->failed() ||
      racing_tls_->closed()) {
    return;  // adopted, torn down, or died before this event fired
  }
  // The fresh path won. Everything the stalled connection moved since the
  // race began bought nothing — charge it as migration waste.
  std::uint64_t wasted = 0;
  if (tcp_) {
    const auto& c = tcp_->counters();
    wasted = c.wire_bytes_sent + c.wire_bytes_received - race_baseline_bytes_;
  }
  migration_stats_.migration_wasted_bytes += wasted;
  ++migration_stats_.migrations;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_migrations_);
    config_.obs.metrics->add(m_migration_wasted_, wasted);
  }
  if (tcp_) tcp_->abort();
  tls_.reset();
  tcp_ = std::move(racing_tcp_);
  tls_ = std::move(racing_tls_);
  racing_tcp_.reset();
  rx_.clear();
  install_handlers();
  account_established();
  if (migrate_span_ != 0) {
    config_.obs.set_attr(migrate_span_, "winner", std::string("fresh"));
    config_.obs.end(migrate_span_);
    migrate_span_ = 0;
  }
  reissue_after_migration();
}

void DotClient::teardown_racer() {
  if (!racing_tls_) return;
  if (racing_tcp_) racing_tcp_->abort();
  std::uint64_t wasted = 0;
  if (racing_tcp_) {
    const auto& c = racing_tcp_->counters();
    wasted = c.wire_bytes_sent + c.wire_bytes_received;
  }
  migration_stats_.migration_wasted_bytes += wasted;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_migration_wasted_, wasted);
  }
  racing_tls_.reset();
  racing_tcp_.reset();
  if (migrate_span_ != 0) {
    config_.obs.set_attr(migrate_span_, "winner", std::string("old"));
    config_.obs.end(migrate_span_);
    migrate_span_ = 0;
  }
}

void DotClient::reissue_after_migration() {
  // In-flight queries move to the validated new path immediately — no
  // backoff, the path is known good — each charged one retry.
  auto pending = std::move(pending_);
  pending_.clear();
  const bool can_retry = config_.retry.max_retries > 0;
  for (auto& [dns_id, entry] : pending) {
    host_.loop().cancel(entry.timeout_timer);
    config_.obs.end(entry.request_span);
    entry.request_span = 0;
    if (!can_retry || entry.retries_left <= 0) {
      if (can_retry) ++retry_stats_.budget_exhausted;
      fail_query(std::move(entry));
      continue;
    }
    --entry.retries_left;
    ++retry_stats_.retried_queries;
    if (entry.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(entry.span, "retry");
      config_.obs.set_attr(retry, "reason", std::string("migration"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(entry.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    send_query(allocate_dns_id(), std::move(entry));
  }
}

void DotClient::disconnect() {
  if (!tls_) return;
  closing_ = true;
  tls_->close();
  closing_ = false;
}

bool DotClient::connected() const { return tls_ && tls_->is_open(); }

const tlssim::TlsCounters* DotClient::tls_counters() const {
  return tls_ ? &tls_->counters() : nullptr;
}

const simnet::TcpCounters* DotClient::tcp_counters() const {
  return tcp_ ? &tcp_->counters() : nullptr;
}

const ResolutionResult& DotClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
