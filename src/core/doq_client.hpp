// DNS-over-QUIC client (RFC 9250) — EXTENSION beyond the paper's
// transports. Each query travels on its own bidirectional QUIC stream
// (2-byte length prefix + DNS message, then FIN), so queries are as
// independent as DoH/2 streams but without TCP's loss-induced head-of-line
// blocking underneath.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/obs_hooks.hpp"
#include "obs/span.hpp"
#include "quicsim/endpoint.hpp"

namespace dohperf::core {

struct DoqClientConfig {
  std::string server_name = "doq.example";
  quicsim::QuicConnectionConfig quic;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

class DoqClient final : public ResolverClient {
 public:
  DoqClient(simnet::Host& host, simnet::Address server,
            DoqClientConfig config = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  void disconnect();
  bool connected() const;
  const quicsim::QuicCounters* quic_counters() const;

 private:
  void ensure_connection(obs::SpanId parent);
  /// Re-register the client.doq.* handles when the registry changes.
  void bind_obs_ids();
  void on_stream_data(std::uint64_t stream_id,
                      std::span<const std::uint8_t> data, bool fin);
  void on_closed();

  simnet::Host& host_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::Registry* bound_metrics_ = nullptr;
  simnet::Address server_;
  DoqClientConfig config_;
  std::unique_ptr<quicsim::QuicClientEndpoint> endpoint_;
  obs::SpanId connect_span_ = 0;
  obs::SpanId quic_hs_span_ = 0;

  struct PendingQuery {
    std::uint64_t query_id;
    ResolveCallback callback;
    dns::Bytes rx;
    obs::SpanId span = 0;
    obs::SpanId request_span = 0;
  };
  std::map<std::uint64_t, PendingQuery> pending_;  ///< keyed by stream id
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
