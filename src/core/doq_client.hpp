// DNS-over-QUIC client (RFC 9250) — EXTENSION beyond the paper's
// transports. Each query travels on its own bidirectional QUIC stream
// (2-byte length prefix + DNS message, then FIN), so queries are as
// independent as DoH/2 streams but without TCP's loss-induced head-of-line
// blocking underneath.
//
// Resilience: with a RetryPolicy the client replaces a dead connection and
// re-issues in-flight queries under their budgets. With MigrationConfig the
// client reacts to network churn the QUIC way — the connection itself
// migrates: a PATH_CHALLENGE probes the (possibly re-addressed) path and,
// when the server permits migration, the connection survives without a new
// handshake.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/migration.hpp"
#include "core/obs_hooks.hpp"
#include "core/retry.hpp"
#include "obs/span.hpp"
#include "quicsim/endpoint.hpp"

namespace dohperf::core {

struct DoqClientConfig {
  std::string server_name = "doq.example";
  quicsim::QuicConnectionConfig quic;
  /// Reconnection + per-query retry behaviour; default is fail-fast.
  RetryPolicy retry;
  /// Network-churn handling: probe the path instead of reconnecting.
  MigrationConfig migration;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

class DoqClient final : public ResolverClient {
 public:
  DoqClient(simnet::Host& host, simnet::Address server,
            DoqClientConfig config = {});
  ~DoqClient() override;

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }
  const MigrationStats& migration_stats() const noexcept {
    return migration_stats_;
  }

  void disconnect();
  bool connected() const;
  const quicsim::QuicCounters* quic_counters() const;

 private:
  struct PendingQuery {
    std::uint64_t query_id = 0;
    ResolveCallback callback;
    dns::Bytes rx;
    dns::Name name;  ///< kept for re-issue
    dns::RType type = dns::RType::kA;
    int retries_left = 0;
    simnet::EventId timeout_timer;
    obs::SpanId span = 0;
    obs::SpanId request_span = 0;
    int attempt = 0;
  };

  void ensure_connection(obs::SpanId parent);
  /// Re-register the client.doq.* handles when the registry changes.
  void bind_obs_ids();
  void issue(PendingQuery pq);
  void on_stream_data(std::uint64_t stream_id,
                      std::span<const std::uint8_t> data, bool fin);
  void on_closed();
  void on_query_timeout(std::uint64_t stream_id);
  /// Fail or (budget permitting) re-issue every query in flight after the
  /// connection died or was condemned by a query timeout.
  void group_reissue();
  void fail_query(PendingQuery pq);
  void account_established();
  void arm_stall_timer();
  void on_stall();
  /// QUIC migration: validate the current path with a PATH_CHALLENGE. The
  /// connection — handshake included — survives the address change.
  void begin_migration(const char* reason);

  simnet::Host& host_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::MetricId m_reconnects_;
  obs::MetricId m_retries_;
  obs::MetricId m_timeouts_;
  obs::MetricId m_migrations_;
  obs::MetricId m_migration_wasted_;
  obs::MetricId m_resumed_;
  obs::Registry* bound_metrics_ = nullptr;
  simnet::Address server_;
  DoqClientConfig config_;
  Backoff backoff_;
  RetryStats retry_stats_;
  MigrationStats migration_stats_;
  std::unique_ptr<quicsim::QuicClientEndpoint> endpoint_;
  obs::SpanId connect_span_ = 0;
  obs::SpanId quic_hs_span_ = 0;
  obs::SpanId migrate_span_ = 0;
  simnet::EventId stall_timer_;
  std::uint64_t listener_id_ = 0;
  /// Stream whose query timeout condemned the connection (re-issued last,
  /// sole budget charge of the teardown).
  std::uint64_t suspect_stream_id_ = 0;
  bool timeout_teardown_ = false;
  bool closing_ = false;  ///< disconnect() in progress: do not retry

  std::map<std::uint64_t, PendingQuery> pending_;  ///< keyed by stream id
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
