// DNS-over-HTTPS client (RFC 8484).
//
// Supports the full configuration space the paper explores:
//   * HTTP/2 (recommended by the RFC) or HTTP/1.1 with pipelining (§3)
//   * persistent connections vs one fresh connection per query (§4, the
//     H vs HP scenarios of Figs 3-4)
//   * POST with application/dns-message, GET with ?dns=<base64url>, or the
//     JSON API (?name=&type= with application/dns-json)
//   * TLS version bounds and session resumption
//
// Cost accounting: every resolution records a CostReport. On persistent
// connections it is the counter delta while the query was outstanding, so
// the first resolution carries the TCP/TLS/SETTINGS setup, matching how
// the paper's whiskers show the one-off costs. On non-persistent
// connections the cost is the entire connection including teardown, and is
// finalized once the connection has fully closed (run the event loop to
// idle before reading it).
//
// Resilience: with a RetryPolicy (config.retry.max_retries > 0) the client
// survives transport loss, server restarts and GOAWAY — a failed connection
// is replaced after an exponentially backed-off, jittered delay and every
// in-flight query is re-issued on the new connection until its per-query
// retry budget runs out. An optional per-query timeout additionally covers
// accept-then-never-answer stalls. For a retried query the recorded cost
// window covers its final attempt (dns_message_bytes accumulates across
// attempts — retransmitted queries do cost bytes).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/migration.hpp"
#include "core/obs_hooks.hpp"
#include "core/retry.hpp"
#include "http1/client.hpp"
#include "http2/connection.hpp"
#include "obs/span.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::core {

enum class HttpVersion { kHttp1, kHttp2 };
enum class DohMethod {
  kPost,     ///< RFC 8484 POST, application/dns-message
  kGet,      ///< RFC 8484 GET, ?dns=<base64url>
  kJsonGet,  ///< JSON API, ?name=&type=, application/dns-json
};

struct DohClientConfig {
  std::string server_name = "doh.example";  ///< SNI, Host/:authority
  std::string path = "/dns-query";
  HttpVersion http_version = HttpVersion::kHttp2;
  DohMethod method = DohMethod::kPost;
  bool persistent = true;
  bool h1_pipelining = true;
  tlssim::TlsVersion min_tls = tlssim::TlsVersion::kTls12;
  tlssim::TlsVersion max_tls = tlssim::TlsVersion::kTls13;
  tlssim::SessionCache* session_cache = nullptr;
  http2::Http2Config h2;  ///< HPACK table size etc. (fig5 ablation knob)
  /// EDNS0 padding block size for queries (RFC 8467 recommends 128 for
  /// clients; 0 disables). Uniform sizes close the length side channel.
  std::size_t pad_queries_to = 0;
  /// Reconnection + per-query retry behaviour; default is fail-fast.
  RetryPolicy retry;
  /// Network-churn handling (stall detection, connection racing). Only
  /// meaningful with persistent connections.
  MigrationConfig migration;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

class DohClient final : public ResolverClient {
 public:
  DohClient(simnet::Host& host, simnet::Address server,
            DohClientConfig config = {});
  ~DohClient() override;

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  /// Lazily finalizes the cost if the stack has quiesced.
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }
  std::uint64_t failures() const noexcept { return failures_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }
  const MigrationStats& migration_stats() const noexcept {
    return migration_stats_;
  }

  /// Close the persistent connection (if any).
  void disconnect();

  /// Rebind the tracing/metrics sink (per-query sampling hands each query
  /// a different context; metric handles re-bind automatically).
  void set_obs(const obs::SpanContext& obs) noexcept { config_.obs = obs; }

  /// Counters of the current persistent stack (null when none / fresh mode).
  const simnet::TcpCounters* tcp_counters() const;
  const tlssim::TlsCounters* tls_counters() const;

 private:
  /// One TCP+TLS+HTTP pile. Kept alive after close so late counter reads
  /// (teardown packets) still work.
  struct Stack {
    std::shared_ptr<simnet::TcpConnection> tcp;
    tlssim::TlsConnection* tls = nullptr;  ///< owned by the HTTP layer
    std::unique_ptr<http1::Http1Client> h1;
    std::unique_ptr<http2::Http2Connection> h2;
    std::vector<std::uint64_t> outstanding;  ///< query ids in flight here
    bool broken = false;  ///< transport failed; never reuse

    // Observability state (all unused when tracing is off).
    obs::SpanId connect_span = 0;
    obs::SpanId tcp_hs_span = 0;
    obs::SpanId tls_hs_span = 0;
    /// Query ids whose h2 HEADERS has not left yet, in request() order —
    /// the stream observer pops these to learn each stream's query.
    std::deque<std::uint64_t> awaiting_stream;
    std::map<std::uint32_t, std::uint64_t> stream_to_query;
    std::uint64_t hpack_reported = 0;  ///< dyn-table hits already counted

    CostReport snapshot() const;
  };

  std::shared_ptr<Stack> make_stack(obs::SpanId parent);
  std::shared_ptr<Stack> stack_for_query(obs::SpanId parent);
  void on_stream_event(const std::shared_ptr<Stack>& stack,
                       std::uint32_t stream_id, http2::StreamEvent event);
  void issue(const std::shared_ptr<Stack>& stack, std::uint64_t query_id,
             const dns::Name& name, dns::RType type);
  void complete(std::uint64_t query_id, bool success, dns::Message response,
                std::size_t dns_bytes);
  /// Transport-level failure (close/reset/GOAWAY/protocol error): retry or
  /// fail every query that was in flight on `stack`.
  void on_stack_error(const std::shared_ptr<Stack>& stack);
  void on_query_timeout(std::uint64_t query_id);
  /// Re-issue a query on a (possibly fresh) connection.
  void reissue(std::uint64_t query_id);
  /// Re-register the client.<key>.* handles when the registry changes.
  void bind_obs_ids();
  /// Handshake/resumption accounting when a stack establishes (always on).
  void account_established(const std::shared_ptr<Stack>& stack);
  void arm_stall_timer();
  void on_stall();
  void begin_migration(const char* reason);
  void promote_racer();
  void teardown_racer();

  simnet::Host& host_;
  simnet::Address server_;
  DohClientConfig config_;
  Backoff backoff_;
  RetryStats retry_stats_;
  std::string metric_key_;  ///< "doh_h2" or "doh_h1"
  mutable TransportMetrics tmetrics_;  ///< mutable: result() is const
  mutable CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::MetricId m_reconnects_;
  obs::MetricId m_retries_;
  obs::MetricId m_timeouts_;
  obs::MetricId m_hpack_dyn_hits_;
  obs::MetricId m_migrations_;
  obs::MetricId m_migration_wasted_;
  obs::MetricId m_resumed_;
  obs::Registry* bound_metrics_ = nullptr;
  MigrationStats migration_stats_;

  /// Query whose timeout triggered the current connection teardown: the
  /// group-retry charges only its budget and re-issues it last.
  std::uint64_t suspect_query_id_ = 0;
  bool timeout_teardown_ = false;
  std::shared_ptr<Stack> persistent_stack_;
  /// Migration race: a fresh stack racing the stalled persistent one.
  std::shared_ptr<Stack> racing_stack_;
  std::uint64_t race_baseline_bytes_ = 0;
  simnet::EventId stall_timer_;
  std::uint64_t listener_id_ = 0;
  bool ever_connected_ = false;
  obs::SpanId migrate_span_ = 0;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failures_ = 0;

  struct QueryState {
    ResolveCallback callback;
    dns::Name name;                ///< kept for re-issue
    dns::RType type = dns::RType::kA;
    int retries_left = 0;
    std::shared_ptr<Stack> stack;  ///< stack this query ran on
    CostReport start;              ///< stack snapshot at issue time
    CostReport end;                ///< snapshot at completion (persistent)
    /// Stack's TCP wire_bytes_received when this attempt was issued; if it
    /// has not advanced by the query timeout, the connection (not just the
    /// stream) is stalled.
    std::uint64_t rx_at_issue = 0;
    simnet::EventId timeout_timer;
    bool have_end = false;
    bool fresh_stack = false;      ///< cost = whole stack incl. teardown
    bool done = false;
    obs::SpanId span = 0;           ///< the resolution span
    obs::SpanId request_span = 0;   ///< current attempt
    obs::SpanId response_span = 0;  ///< h2: kResponseBegan..kStreamClosed
    int attempt = 0;
    /// Span byte attrs / bytes.* counters recorded (result() is const and
    /// may be called repeatedly; the first finalized read wins).
    mutable bool cost_observed = false;
  };
  mutable std::vector<ResolutionResult> results_;
  std::vector<QueryState> states_;
};

}  // namespace dohperf::core
