// A TTL-honouring client-side DNS cache, layered over any ResolverClient —
// the browser-side cache that the paper's methodology explicitly disables
// ("caches of both Firefox and the DNS stub resolver were emptied"). Having
// it lets experiments quantify exactly what that choice removes: with the
// cache on, repeated names cost zero network traffic until their TTL runs
// out, shrinking DoH's per-query penalty dramatically.
#pragma once

#include <map>
#include <vector>

#include "core/client.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::core {

struct CacheConfig {
  std::size_t max_entries = 10000;
  simnet::TimeUs max_ttl = simnet::seconds(3600);  ///< TTL clamp
  simnet::TimeUs min_ttl = 0;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;

  double hit_ratio() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

class CachingResolverClient final : public ResolverClient {
 public:
  /// `upstream` must outlive this client.
  CachingResolverClient(simnet::EventLoop& loop, ResolverClient& upstream,
                        CacheConfig config = {});

  /// Cache hits complete synchronously with zero resolution time and a
  /// zero-byte CostReport (nothing touched the network).
  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  const CacheStats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Key {
    dns::Name name;
    dns::RType type;
    bool operator<(const Key& o) const noexcept {
      if (name != o.name) return name < o.name;
      return type < o.type;
    }
  };
  struct Entry {
    dns::Message response;
    simnet::TimeUs expires_at = 0;
    std::uint64_t inserted_seq = 0;  ///< FIFO eviction order
  };

  void insert(const Key& key, const dns::Message& response);
  void evict_if_needed();

  simnet::EventLoop& loop_;
  ResolverClient& upstream_;
  CacheConfig config_;
  CacheStats stats_;
  std::map<Key, Entry> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
