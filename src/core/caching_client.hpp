// A graceful-degradation DNS cache, layered over any ResolverClient. Beyond
// the plain TTL cache the paper's methodology disables ("caches of both
// Firefox and the DNS stub resolver were emptied"), this is the resilience
// layer a real stub uses to keep answers flowing while its resolver is down:
//
//   * RFC 2308 negative caching — NXDOMAIN and NODATA responses are cached
//     with a TTL of min(SOA TTL, SOA MINIMUM) taken from the authority
//     section (responses without an SOA are not cached).
//   * RFC 8767 serve-stale — an expired entry stays usable for `max_stale`
//     past its TTL. A lookup that finds one launches an upstream refresh
//     and answers from the stale copy as soon as the refresh fails or
//     `stale_serve_delay` passes, whichever is first; the refresh keeps
//     running in the background and repairs the entry when the resolver
//     recovers (stale-while-revalidate).
//   * In-flight coalescing — concurrent resolves for the same (name, type)
//     share one upstream query, so an outage window closing does not turn
//     a pile of waiters into a thundering herd.
//   * Proactive refresh — a hit on an entry about to expire (within
//     `refresh_ahead` of its TTL) triggers a background refresh, keeping
//     hot names from ever going stale under active use.
//
// Eviction is by (expiry, least-recently-used): the entry closest to death
// goes first, LRU breaking ties. clear() also resets the internal use
// sequence, so a cleared cache behaves byte-identically to a fresh one in
// seeded runs. Everything runs on the virtual clock with no hidden
// randomness — same-seed simulations are byte-identical.
#pragma once

#include <map>
#include <vector>

#include "core/client.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::core {

struct CacheConfig {
  std::size_t max_entries = 10000;
  simnet::TimeUs max_ttl = simnet::seconds(3600);  ///< positive TTL clamp
  simnet::TimeUs min_ttl = 0;
  /// RFC 2308 §5 cap on the SOA-derived negative TTL (the RFC recommends
  /// at most three hours).
  simnet::TimeUs max_negative_ttl = simnet::seconds(3 * 3600);
  /// RFC 8767 stale lifetime: how long past expiry an entry may still be
  /// served while revalidation fails. 0 disables serve-stale entirely.
  simnet::TimeUs max_stale = 0;
  /// How long a refresh may keep a waiter hanging before the stale answer
  /// is served anyway (RFC 8767's "client response timeout").
  simnet::TimeUs stale_serve_delay = simnet::ms(500);
  /// Proactive-refresh window: a hit on an entry expiring within this
  /// window starts a background refresh. 0 disables.
  simnet::TimeUs refresh_ahead = 0;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct CacheStats {
  std::uint64_t hits = 0;         ///< fresh answers (includes negative_hits)
  std::uint64_t misses = 0;       ///< lookups that needed the upstream
  std::uint64_t evictions = 0;    ///< capacity evictions
  std::uint64_t expirations = 0;  ///< entries dropped past TTL (+ stale window)
  std::uint64_t negative_entries = 0;  ///< RFC 2308 insertions
  std::uint64_t negative_hits = 0;     ///< fresh hits on negative entries
  std::uint64_t stale_serves = 0;      ///< RFC 8767 answers from expired data
  std::uint64_t coalesced = 0;         ///< resolves joined onto an in-flight query
  std::uint64_t proactive_refreshes = 0;  ///< refreshes started ahead of TTL
  std::uint64_t revalidations = 0;  ///< refreshes that repaired a stale-served entry
  std::uint64_t upstream_queries = 0;  ///< actual resolves sent upstream

  double hit_ratio() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

class CachingResolverClient final : public ResolverClient {
 public:
  /// `upstream` must outlive this client.
  CachingResolverClient(simnet::EventLoop& loop, ResolverClient& upstream,
                        CacheConfig config = {});

  /// Cache hits complete synchronously with zero resolution time and a
  /// zero-byte CostReport (nothing touched the network). Stale serves
  /// complete asynchronously once the refresh fails or the stale-serve
  /// delay passes.
  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  /// How far past its TTL the answer for `id` was when served; 0 for
  /// fresh hits and upstream answers (the per-answer staleness age).
  simnet::TimeUs staleness_age(std::uint64_t id) const {
    return staleness_.at(id);
  }

  const CacheStats& stats() const noexcept { return stats_; }
  /// Rebind the tracing/metrics sink (per-query sampling hands each query
  /// a different context; metric handles re-bind automatically).
  void set_obs(const obs::SpanContext& obs) noexcept { config_.obs = obs; }

  std::size_t size() const noexcept { return entries_.size(); }
  /// Drop every entry and reset the LRU sequence: a cleared cache is
  /// byte-identical to a freshly constructed one in seeded runs.
  /// In-flight upstream queries are unaffected.
  void clear() {
    entries_.clear();
    next_seq_ = 0;
  }

 private:
  struct Key {
    dns::Name name;
    dns::RType type;
    bool operator<(const Key& o) const noexcept {
      if (name != o.name) return name < o.name;
      return type < o.type;
    }
  };
  struct Entry {
    dns::Message response;
    simnet::TimeUs expires_at = 0;
    bool negative = false;          ///< RFC 2308 NXDOMAIN/NODATA entry
    std::uint64_t last_used_seq = 0;  ///< LRU tie-break within equal expiry
  };
  /// One resolve() waiting on an in-flight upstream query.
  struct Waiter {
    std::uint64_t id = 0;
    ResolveCallback callback;
    simnet::TimeUs asked_at = 0;
    simnet::EventId stale_timer;  ///< pending stale-serve deadline
    bool answered = false;        ///< already served stale
  };
  struct InFlight {
    std::vector<Waiter> waiters;  ///< empty for background refreshes
  };

  /// True for answers worth acting on: transport success with NOERROR or
  /// NXDOMAIN. SERVFAIL/REFUSED count as resolver failure (and trigger
  /// serve-stale) per RFC 8767 §4.
  static bool usable(const ResolutionResult& r);

  /// Re-register the cache.* handles when the registry changes.
  void bind_obs_ids();

  void insert(const Key& key, const dns::Message& response);
  void evict_if_needed();
  void touch(Entry& entry) { entry.last_used_seq = next_seq_++; }
  void start_upstream(const Key& key);
  void maybe_refresh_ahead(const Key& key, const Entry& entry);
  void on_upstream_done(const Key& key, const ResolutionResult& r);
  void on_stale_deadline(const Key& key, std::uint64_t id);
  /// Serve `waiter` from the (expired) entry for `key`, if one is still
  /// within its stale window. Returns false when nothing stale remains.
  bool serve_stale(const Key& key, Waiter& waiter, const char* reason);
  void deliver(Waiter& waiter, const ResolutionResult& r);

  simnet::EventLoop& loop_;
  ResolverClient& upstream_;
  CacheConfig config_;
  CacheStats stats_;
  obs::MetricId m_hits_;
  obs::MetricId m_negative_hits_;
  obs::MetricId m_expirations_;
  obs::MetricId m_misses_;
  obs::MetricId m_coalesced_;
  obs::MetricId m_upstream_queries_;
  obs::MetricId m_proactive_refreshes_;
  obs::MetricId m_revalidations_;
  obs::MetricId m_stale_serves_;
  obs::MetricId m_staleness_age_ms_;
  obs::MetricId m_negative_entries_;
  obs::MetricId m_evictions_;
  obs::Registry* bound_metrics_ = nullptr;
  std::map<Key, Entry> entries_;
  std::map<Key, InFlight> inflight_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
  std::vector<simnet::TimeUs> staleness_;  ///< parallel to results_
};

}  // namespace dohperf::core
