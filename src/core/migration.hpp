// Connection migration for the stateful DNS transports.
//
// The paper's cost finding is that DoH/DoT amortize their connection-setup
// tax over a long-lived connection — which network churn (NAT rebind,
// Wi-Fi -> LTE handover, interface flap) cuts short. This header holds the
// shared policy knobs and accounting for the clients' migration machinery:
//   * detection — OS-visible change notifications (Host listeners) plus a
//     stall timer for the silent NAT rebinds the OS never reports;
//   * recovery  — happy-eyeballs racing of a fresh connection against the
//     stalled one (loser's bytes charged to migration_wasted_bytes), with
//     the TLS session cache making the re-handshake a 1-RTT resumption;
//   * re-issue  — in-flight queries move to the winning connection under
//     their existing RetryPolicy budgets.
#pragma once

#include <cstdint>

#include "simnet/time.hpp"
#include "tlssim/types.hpp"

namespace dohperf::core {

struct MigrationConfig {
  /// Master switch: off keeps the legacy behaviour byte-for-byte (churn is
  /// only ever discovered through query timeouts).
  bool enabled = false;
  /// Subscribe to the host's OS-visible change events (profile swap, flap).
  /// Silent NAT rebinds are never delivered this way; the stall timer is
  /// what catches those.
  bool react_to_host_events = true;
  /// With queries in flight and no response for this long, treat the path
  /// as suspect and start a migration. 0 disables stall detection.
  simnet::TimeUs stall_timeout = simnet::ms(400);
  /// Race a fresh connection against the stalled one (loser torn down and
  /// charged to migration_wasted_bytes). When false, migration tears the
  /// old connection down immediately and reconnects — simpler, but a false
  /// stall alarm then kills a healthy connection.
  bool race = true;
};

/// Per-client migration and handshake-amortization accounting. Mirrored
/// into the metric contract as client.<t>.migrations /
/// client.<t>.migration_wasted_bytes / client.<t>.resumed_handshakes.
struct MigrationStats {
  std::uint64_t migrations = 0;             ///< completed path switches
  std::uint64_t migration_wasted_bytes = 0; ///< loser-side race traffic
  std::uint64_t resumed_handshakes = 0;     ///< ticket/PSK resumptions
  std::uint64_t full_handshakes = 0;
  std::uint64_t handshake_bytes = 0;  ///< handshake wire bytes, both dirs
  std::uint64_t handshake_rtts = 0;   ///< modelled round trips paid
};

/// Modelled TLS handshake round trips (on top of the transport's own):
/// TLS 1.3 is 1-RTT either way; TLS 1.2 is 2-RTT full, 1-RTT resumed.
inline std::uint64_t tls_handshake_rtts(tlssim::TlsVersion version,
                                        bool resumed) noexcept {
  if (version == tlssim::TlsVersion::kTls13) return 1;
  return resumed ? 1 : 2;
}

}  // namespace dohperf::core
