#include "core/doq_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

DoqClient::DoqClient(simnet::Host& host, simnet::Address server,
                     DoqClientConfig config)
    : host_(host),
      server_(server),
      config_(std::move(config)),
      backoff_(config_.retry) {
  if (config_.migration.enabled && config_.migration.react_to_host_events) {
    listener_id_ = host_.add_network_change_listener(
        [this](simnet::NetworkChangeKind kind) {
          begin_migration(simnet::to_string(kind));
        });
  }
}

DoqClient::~DoqClient() {
  host_.loop().cancel(stall_timer_);
  if (listener_id_ != 0) host_.remove_network_change_listener(listener_id_);
}

void DoqClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_conn_open_ = r->register_counter("client.doq.conn_open");
  m_conn_reuse_ = r->register_counter("client.doq.conn_reuse");
  m_reconnects_ = r->register_counter("client.doq.reconnects");
  m_retries_ = r->register_counter("client.doq.retries");
  m_timeouts_ = r->register_counter("client.doq.timeouts");
  m_migrations_ = r->register_counter("client.doq.migrations");
  m_migration_wasted_ =
      r->register_counter("client.doq.migration_wasted_bytes");
  m_resumed_ = r->register_counter("client.doq.resumed_handshakes");
}

void DoqClient::ensure_connection(obs::SpanId parent) {
  if (endpoint_ && !endpoint_->connection().closed()) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_conn_reuse_);
    }
    return;
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  if (config_.obs.tracer != nullptr) {
    connect_span_ = config_.obs.tracer->begin(parent, "connect");
    quic_hs_span_ =
        config_.obs.tracer->begin(connect_span_, "quic_handshake");
  }
  tlssim::ClientConfig tls;
  tls.sni = config_.server_name;
  tls.alpn = {"doq"};
  endpoint_ = std::make_unique<quicsim::QuicClientEndpoint>(
      host_, server_, std::move(tls), config_.quic);
  endpoint_->connection().set_on_established([this]() {
    config_.obs.end(quic_hs_span_);
    config_.obs.end(connect_span_);
    quic_hs_span_ = 0;
    connect_span_ = 0;
    account_established();
  });
  endpoint_->connection().set_on_stream_data(
      [this](std::uint64_t stream_id, std::span<const std::uint8_t> data,
             bool fin) { on_stream_data(stream_id, data, fin); });
  endpoint_->connection().set_on_closed([this]() { on_closed(); });
  endpoint_->connection().set_on_path_validated([this]() {
    // The path survived the address change: migration complete, no new
    // handshake paid.
    ++migration_stats_.migrations;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_migrations_);
    }
    if (migrate_span_ != 0) {
      config_.obs.set_attr(migrate_span_, "winner",
                           std::string("same_connection"));
      config_.obs.end(migrate_span_);
      migrate_span_ = 0;
    }
  });
}

void DoqClient::account_established() {
  if (!endpoint_) return;
  // quicsim models no 0-RTT resumption: every handshake is a full one, one
  // combined transport+crypto round trip (QUIC's selling point).
  ++migration_stats_.full_handshakes;
  migration_stats_.handshake_bytes +=
      endpoint_->connection().counters().handshake_bytes;
  migration_stats_.handshake_rtts += 1;
}

std::uint64_t DoqClient::resolve(const dns::Name& name, dns::RType type,
                                 ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  bind_obs_ids();
  const obs::SpanId span =
      obs_begin_resolution(config_.obs, tmetrics_, "doq", name, type);
  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));

  PendingQuery pq;
  pq.query_id = query_id;
  pq.callback = std::move(callback);
  pq.name = name;
  pq.type = type;
  pq.retries_left = config_.retry.max_retries;
  pq.span = span;
  issue(std::move(pq));
  return query_id;
}

void DoqClient::issue(PendingQuery pq) {
  ensure_connection(pq.span);
  // RFC 9250 §4.2: queries use DNS message ID 0; the stream correlates.
  const dns::Message query = dns::Message::make_query(0, pq.name, pq.type);
  const dns::Bytes wire = query.encode();
  results_[pq.query_id].cost.dns_message_bytes += wire.size();

  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);

  auto& conn = endpoint_->connection();
  const std::uint64_t stream_id = conn.open_stream();
  ++pq.attempt;
  if (pq.span != 0) {
    pq.request_span = config_.obs.tracer->begin(pq.span, "request");
    config_.obs.set_attr(pq.request_span, "stream_id",
                         static_cast<std::int64_t>(stream_id));
    config_.obs.set_attr(pq.request_span, "attempt",
                         static_cast<std::int64_t>(pq.attempt));
  }
  pq.rx.clear();
  if (config_.retry.query_timeout > 0) {
    pq.timeout_timer = host_.loop().schedule_in(
        config_.retry.query_timeout,
        [this, stream_id]() { on_query_timeout(stream_id); });
  }
  pending_.emplace(stream_id, std::move(pq));
  arm_stall_timer();
  conn.send_stream(stream_id, framed.take(), /*fin=*/true);
}

void DoqClient::on_stream_data(std::uint64_t stream_id,
                               std::span<const std::uint8_t> data, bool fin) {
  // Bytes arriving means the path is alive: restart stall detection.
  host_.loop().cancel(stall_timer_);
  stall_timer_ = simnet::EventId{};
  const auto it = pending_.find(stream_id);
  if (it == pending_.end()) return;
  PendingQuery& pq = it->second;
  pq.rx.insert(pq.rx.end(), data.begin(), data.end());
  if (!fin) {  // the response ends with the stream
    if (!pending_.empty()) arm_stall_timer();
    return;
  }

  host_.loop().cancel(pq.timeout_timer);
  backoff_.reset();
  ResolutionResult& result = results_[pq.query_id];
  result.completed_at = host_.loop().now();
  if (pq.rx.size() >= 2) {
    const std::size_t len =
        (static_cast<std::size_t>(pq.rx[0]) << 8) | pq.rx[1];
    if (pq.rx.size() >= 2 + len) {
      try {
        result.response = dns::Message::decode(
            std::span(pq.rx.data() + 2, len));
        result.success = true;
        result.cost.dns_message_bytes += len;
      } catch (const dns::WireError&) {
        result.success = false;
      }
    }
  }
  ++completed_;
  auto callback = std::move(pq.callback);
  config_.obs.end(pq.request_span);
  obs_span_cost(config_.obs, pq.span, result.cost);
  obs_count_cost(config_.obs, cmetrics_, result.cost);
  obs_finish_resolution(config_.obs, tmetrics_, pq.span, "doq", result);
  pending_.erase(it);
  if (callback) callback(result);
  if (!pending_.empty()) arm_stall_timer();
}

void DoqClient::on_closed() {
  config_.obs.end(quic_hs_span_);
  config_.obs.end(connect_span_);
  quic_hs_span_ = connect_span_ = 0;
  // Re-issues are deferred behind a backoff delay, so the replacement
  // endpoint is never built inside this (dying) connection's callback.
  group_reissue();
}

void DoqClient::on_query_timeout(std::uint64_t stream_id) {
  const auto it = pending_.find(stream_id);
  if (it == pending_.end()) return;
  ++retry_stats_.query_timeouts;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_timeouts_);
  }
  if (config_.retry.max_retries > 0 && it->second.retries_left > 0) {
    // QUIC's PTO machinery already retries within the connection, so a
    // query timeout means the path (or the server's view of our address)
    // is dead. Discard the endpoint and re-issue everything in flight; the
    // suspect is charged and goes last.
    suspect_stream_id_ = stream_id;
    timeout_teardown_ = true;
    endpoint_.reset();  // dropped, not closed: the path may be dead anyway
    group_reissue();
    suspect_stream_id_ = 0;
    timeout_teardown_ = false;
    return;
  }
  PendingQuery pq = std::move(it->second);
  pending_.erase(it);
  if (config_.retry.max_retries > 0) ++retry_stats_.budget_exhausted;
  fail_query(std::move(pq));
}

void DoqClient::group_reissue() {
  host_.loop().cancel(stall_timer_);
  stall_timer_ = simnet::EventId{};
  auto pending = std::move(pending_);
  pending_.clear();
  const bool can_retry = !closing_ && config_.retry.max_retries > 0;

  // Re-issue in stream order, suspect (if any) last, so a repeat stall
  // cannot head-of-line-block the rest of the batch again.
  std::vector<std::pair<bool, PendingQuery>> order;
  order.reserve(pending.size());
  for (auto& [stream_id, pq] : pending) {
    if (timeout_teardown_ && stream_id == suspect_stream_id_) continue;
    order.emplace_back(false, std::move(pq));
  }
  if (timeout_teardown_) {
    if (const auto it = pending.find(suspect_stream_id_);
        it != pending.end()) {
      order.emplace_back(true, std::move(it->second));
    }
  }

  simnet::TimeUs delay = 0;
  bool scheduled_any = false;
  for (auto& [is_suspect, pq] : order) {
    host_.loop().cancel(pq.timeout_timer);
    config_.obs.end(pq.request_span);
    pq.request_span = 0;
    const bool charge = !timeout_teardown_ || is_suspect;
    if (!can_retry || (charge && pq.retries_left <= 0)) {
      if (can_retry) ++retry_stats_.budget_exhausted;
      fail_query(std::move(pq));
      continue;
    }
    if (!scheduled_any) {
      delay = backoff_.next();
      ++retry_stats_.reconnects;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add(m_reconnects_);
      }
      scheduled_any = true;
    }
    if (charge) --pq.retries_left;
    ++retry_stats_.retried_queries;
    if (pq.span != 0) {
      const obs::SpanId retry =
          config_.obs.tracer->begin(pq.span, "retry");
      config_.obs.set_attr(
          retry, "reason",
          std::string(timeout_teardown_ ? "timeout_teardown"
                                        : "connection_loss"));
      config_.obs.set_attr(retry, "attempt",
                           static_cast<std::int64_t>(pq.attempt));
      config_.obs.end(retry);
    }
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_retries_);
    }
    host_.loop().schedule_in(delay, [this, p = std::move(pq)]() mutable {
      issue(std::move(p));
    });
  }
}

void DoqClient::fail_query(PendingQuery pq) {
  ResolutionResult& result = results_[pq.query_id];
  result.success = false;
  result.completed_at = host_.loop().now();
  ++completed_;
  config_.obs.end(pq.request_span);
  obs_finish_resolution(config_.obs, tmetrics_, pq.span, "doq", result);
  if (pq.callback) pq.callback(result);
}

void DoqClient::arm_stall_timer() {
  if (!config_.migration.enabled || config_.migration.stall_timeout <= 0) {
    return;
  }
  if (stall_timer_.valid) return;
  stall_timer_ = host_.loop().schedule_in(
      config_.migration.stall_timeout, [this]() {
        stall_timer_ = simnet::EventId{};
        on_stall();
      });
}

void DoqClient::on_stall() {
  if (pending_.empty()) return;
  if (config_.obs.tracer != nullptr) {
    const obs::SpanId s = config_.obs.tracer->begin(0, "path_probe");
    config_.obs.set_attr(s, "transport", std::string("doq"));
    config_.obs.end(s);
  }
  begin_migration("stall");
}

void DoqClient::begin_migration(const char* reason) {
  if (!config_.migration.enabled) return;
  if (!endpoint_ || endpoint_->connection().closed() ||
      !endpoint_->connection().established()) {
    return;  // nothing to migrate; the retry path handles reconnects
  }
  if (config_.obs.tracer != nullptr && migrate_span_ == 0) {
    migrate_span_ = config_.obs.tracer->begin(0, "migrate");
    config_.obs.set_attr(migrate_span_, "transport", std::string("doq"));
    config_.obs.set_attr(migrate_span_, "reason", std::string(reason));
  }
  // QUIC migrates in place: probe the path from the (new) address. The
  // probe datagram itself teaches a migration-capable server our new
  // address; the matching PATH_RESPONSE completes the migration.
  endpoint_->connection().probe_path();
}

void DoqClient::disconnect() {
  if (!endpoint_) return;
  closing_ = true;
  endpoint_->connection().close();
  closing_ = false;
}

bool DoqClient::connected() const {
  return endpoint_ && endpoint_->connection().established() &&
         !endpoint_->connection().closed();
}

const quicsim::QuicCounters* DoqClient::quic_counters() const {
  return endpoint_ ? &endpoint_->connection().counters() : nullptr;
}

const ResolutionResult& DoqClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
