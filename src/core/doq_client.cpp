#include "core/doq_client.hpp"

#include "core/obs_hooks.hpp"

namespace dohperf::core {

DoqClient::DoqClient(simnet::Host& host, simnet::Address server,
                     DoqClientConfig config)
    : host_(host), server_(server), config_(std::move(config)) {}

void DoqClient::bind_obs_ids() {
  obs::Registry* r = config_.obs.metrics;
  if (r == bound_metrics_) return;
  bound_metrics_ = r;
  if (r == nullptr) return;
  m_conn_open_ = r->register_counter("client.doq.conn_open");
  m_conn_reuse_ = r->register_counter("client.doq.conn_reuse");
}

void DoqClient::ensure_connection(obs::SpanId parent) {
  if (endpoint_ && !endpoint_->connection().closed()) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add(m_conn_reuse_);
    }
    return;
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->add(m_conn_open_);
  }
  if (config_.obs.tracer != nullptr) {
    connect_span_ = config_.obs.tracer->begin(parent, "connect");
    quic_hs_span_ =
        config_.obs.tracer->begin(connect_span_, "quic_handshake");
  }
  tlssim::ClientConfig tls;
  tls.sni = config_.server_name;
  tls.alpn = {"doq"};
  endpoint_ = std::make_unique<quicsim::QuicClientEndpoint>(
      host_, server_, std::move(tls), config_.quic);
  endpoint_->connection().set_on_established([this]() {
    config_.obs.end(quic_hs_span_);
    config_.obs.end(connect_span_);
    quic_hs_span_ = 0;
    connect_span_ = 0;
  });
  endpoint_->connection().set_on_stream_data(
      [this](std::uint64_t stream_id, std::span<const std::uint8_t> data,
             bool fin) { on_stream_data(stream_id, data, fin); });
  endpoint_->connection().set_on_closed([this]() { on_closed(); });
}

std::uint64_t DoqClient::resolve(const dns::Name& name, dns::RType type,
                                 ResolveCallback callback) {
  const std::uint64_t query_id = next_query_id_++;
  bind_obs_ids();
  const obs::SpanId span =
      obs_begin_resolution(config_.obs, tmetrics_, "doq", name, type);
  ensure_connection(span);
  ResolutionResult result;
  result.sent_at = host_.loop().now();
  results_.push_back(std::move(result));

  // RFC 9250 §4.2: queries use DNS message ID 0; the stream correlates.
  const dns::Message query = dns::Message::make_query(0, name, type);
  const dns::Bytes wire = query.encode();
  results_[query_id].cost.dns_message_bytes = wire.size();

  dns::ByteWriter framed;
  framed.u16(static_cast<std::uint16_t>(wire.size()));
  framed.bytes(wire);

  auto& conn = endpoint_->connection();
  const std::uint64_t stream_id = conn.open_stream();
  PendingQuery pq{query_id, std::move(callback), {}, span, 0};
  if (span != 0) {
    pq.request_span = config_.obs.tracer->begin(span, "request");
    config_.obs.set_attr(pq.request_span, "stream_id",
                         static_cast<std::int64_t>(stream_id));
  }
  pending_.emplace(stream_id, std::move(pq));
  conn.send_stream(stream_id, framed.take(), /*fin=*/true);
  return query_id;
}

void DoqClient::on_stream_data(std::uint64_t stream_id,
                               std::span<const std::uint8_t> data, bool fin) {
  const auto it = pending_.find(stream_id);
  if (it == pending_.end()) return;
  PendingQuery& pq = it->second;
  pq.rx.insert(pq.rx.end(), data.begin(), data.end());
  if (!fin) return;  // the response ends with the stream

  ResolutionResult& result = results_[pq.query_id];
  result.completed_at = host_.loop().now();
  if (pq.rx.size() >= 2) {
    const std::size_t len =
        (static_cast<std::size_t>(pq.rx[0]) << 8) | pq.rx[1];
    if (pq.rx.size() >= 2 + len) {
      try {
        result.response = dns::Message::decode(
            std::span(pq.rx.data() + 2, len));
        result.success = true;
        result.cost.dns_message_bytes += len;
      } catch (const dns::WireError&) {
        result.success = false;
      }
    }
  }
  ++completed_;
  auto callback = std::move(pq.callback);
  config_.obs.end(pq.request_span);
  obs_span_cost(config_.obs, pq.span, result.cost);
  obs_count_cost(config_.obs, cmetrics_, result.cost);
  obs_finish_resolution(config_.obs, tmetrics_, pq.span, "doq", result);
  pending_.erase(it);
  if (callback) callback(result);
}

void DoqClient::on_closed() {
  config_.obs.end(quic_hs_span_);
  config_.obs.end(connect_span_);
  quic_hs_span_ = connect_span_ = 0;
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [stream_id, pq] : pending) {
    ResolutionResult& result = results_[pq.query_id];
    result.success = false;
    result.completed_at = host_.loop().now();
    ++completed_;
    config_.obs.end(pq.request_span);
    obs_finish_resolution(config_.obs, tmetrics_, pq.span, "doq", result);
    if (pq.callback) pq.callback(result);
  }
}

void DoqClient::disconnect() {
  if (endpoint_) endpoint_->connection().close();
}

bool DoqClient::connected() const {
  return endpoint_ && endpoint_->connection().established() &&
         !endpoint_->connection().closed();
}

const quicsim::QuicCounters* DoqClient::quic_counters() const {
  return endpoint_ ? &endpoint_->connection().counters() : nullptr;
}

const ResolutionResult& DoqClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
