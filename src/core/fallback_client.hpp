// TRR-style fallback resolution: try the secure (DoH) resolver first and
// fall back to classic UDP when it fails or exceeds a deadline — the policy
// Firefox shipped for its DoH rollout ("TRR first" mode), referenced by the
// paper's related-work discussion of Mozilla's experiment. It bounds the
// user-visible cost of a misbehaving DoH service at the fallback deadline.
#pragma once

#include <map>
#include <vector>

#include "core/client.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::core {

struct FallbackConfig {
  /// How long to wait for the primary before also asking the fallback.
  simnet::TimeUs primary_deadline = simnet::ms(1500);
  /// Treat a transport-successful primary answer carrying SERVFAIL/REFUSED
  /// as a failure: an overloaded tier sheds with REFUSED, and surfacing
  /// that as the resolution would turn server load-shedding into client
  /// outage. Matches HealthTrackingClient's rcode_failures semantics.
  bool rcode_failures = true;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

struct FallbackStats {
  std::uint64_t primary_wins = 0;    ///< primary answered in time
  std::uint64_t fallback_used = 0;   ///< deadline hit or primary failed
  std::uint64_t both_failed = 0;
  /// Primary answered with SERVFAIL/REFUSED (server-side shedding): the
  /// fallback was started instead of surfacing the shed answer.
  std::uint64_t primary_shed = 0;
  std::uint64_t fallback_started = 0;  ///< fallback launched (won or not)
  /// Primary reported failure only after the fallback was already racing —
  /// the slow-failure path where the deadline, not the error, decided.
  std::uint64_t primary_late_failures = 0;
  /// Primary answered successfully after the fallback had already won: the
  /// late resolution is torn down and accounted here (never surfaced), so
  /// wasted primary work is visible instead of silently dropped.
  std::uint64_t primary_wasted = 0;
  /// Time from resolve() to the decision to start the fallback, summed /
  /// maxed over fallback_started decisions. The mean bounds how much a
  /// misbehaving primary delays the user before the rescue begins.
  simnet::TimeUs decision_latency_total = 0;
  simnet::TimeUs decision_latency_max = 0;

  double mean_decision_latency_us() const {
    return fallback_started == 0
               ? 0.0
               : static_cast<double>(decision_latency_total) /
                     static_cast<double>(fallback_started);
  }
};

class FallbackResolverClient final : public ResolverClient {
 public:
  /// Both clients must outlive this one.
  FallbackResolverClient(simnet::EventLoop& loop, ResolverClient& primary,
                         ResolverClient& fallback,
                         FallbackConfig config = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  const FallbackStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    ResolveCallback callback;
    dns::Name name;
    dns::RType type = dns::RType::kA;
    simnet::EventId deadline;
    bool fallback_started = false;
    bool done = false;
    bool primary_done = false;  ///< primary callback has fired
    obs::SpanId fallback_span = 0;  ///< open while the fallback races
  };

  void finish(std::uint64_t id, const ResolutionResult& r, bool from_primary);
  void start_fallback(std::uint64_t id, const char* reason);
  /// Transport success that isn't a shed rcode (see rcode_failures).
  bool usable(const ResolutionResult& r) const;
  /// Drop the pending entry once it is finished *and* the primary has
  /// reported — the retention that lets a late primary answer be charged
  /// to primary_wasted instead of vanishing.
  void maybe_erase(std::uint64_t id);

  simnet::EventLoop& loop_;
  ResolverClient& primary_;
  ResolverClient& fallback_;
  FallbackConfig config_;
  FallbackStats stats_;
  std::uint64_t completed_ = 0;
  std::vector<ResolutionResult> results_;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace dohperf::core
