// Plain DNS-over-TCP client (RFC 7766): persistent TCP connection, two-byte
// length framing, multiple outstanding queries matched by DNS message ID —
// connection-oriented DNS without encryption (the paper's reference [26]).
//
// With MigrationConfig enabled the client handles network churn the simple
// way (no TLS state worth racing for): drop the suspect connection,
// reconnect, and re-send every query that was in flight.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/migration.hpp"
#include "core/obs_hooks.hpp"
#include "obs/span.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"

namespace dohperf::core {

struct TcpDnsClientConfig {
  /// Network-churn handling (stall detection + reconnect-and-reissue).
  MigrationConfig migration;
  /// Per-query cap on migration re-sends (the client has no RetryPolicy);
  /// without it a permanently dead path would stall-migrate-reissue forever
  /// and the event loop would never drain.
  int max_migration_reissues = 2;
  obs::SpanContext obs;  ///< tracing/metrics sink (default: off)
};

class TcpDnsClient final : public ResolverClient {
 public:
  TcpDnsClient(simnet::Host& host, simnet::Address server,
               obs::SpanContext obs = {});
  TcpDnsClient(simnet::Host& host, simnet::Address server,
               TcpDnsClientConfig config);
  ~TcpDnsClient() override;

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }
  const MigrationStats& migration_stats() const noexcept {
    return migration_stats_;
  }

  void disconnect();
  bool connected() const;
  const simnet::TcpCounters* tcp_counters() const;

 private:
  struct Pending {
    std::uint64_t query_id;
    ResolveCallback callback;
    dns::Name name;  ///< kept for re-issue after migration
    dns::RType type = dns::RType::kA;
    int reissues_left = 0;
    obs::SpanId span = 0;
  };

  void ensure_connection(obs::SpanId parent);
  /// Re-register the client.tcp.* handles when the registry changes.
  void bind_obs_ids();
  void on_data(std::span<const std::uint8_t> data);
  void on_close();
  void send_framed(std::uint16_t dns_id, const Pending& pending);
  void arm_stall_timer();
  void on_stall();
  void begin_migration(const char* reason);
  void reissue_all();

  simnet::Host& host_;
  simnet::Address server_;
  MigrationConfig migration_;
  int max_migration_reissues_ = 2;
  obs::SpanContext obs_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::MetricId m_migrations_;
  obs::Registry* bound_metrics_ = nullptr;
  MigrationStats migration_stats_;
  std::shared_ptr<simnet::TcpConnection> tcp_;
  std::unique_ptr<simnet::TcpByteStream> stream_;
  dns::Bytes rx_;
  obs::SpanId connect_span_ = 0;
  obs::SpanId tcp_hs_span_ = 0;
  simnet::EventId stall_timer_;
  std::uint64_t listener_id_ = 0;

  std::uint16_t next_dns_id_ = 1;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint16_t, Pending> pending_;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
