// Plain DNS-over-TCP client (RFC 7766): persistent TCP connection, two-byte
// length framing, multiple outstanding queries matched by DNS message ID —
// connection-oriented DNS without encryption (the paper's reference [26]).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/obs_hooks.hpp"
#include "obs/span.hpp"
#include "simnet/host.hpp"
#include "simnet/stream.hpp"

namespace dohperf::core {

class TcpDnsClient final : public ResolverClient {
 public:
  TcpDnsClient(simnet::Host& host, simnet::Address server,
               obs::SpanContext obs = {});

  std::uint64_t resolve(const dns::Name& name, dns::RType type,
                        ResolveCallback callback) override;
  const ResolutionResult& result(std::uint64_t id) const override;
  std::size_t completed() const override { return completed_; }

  void disconnect();
  bool connected() const;
  const simnet::TcpCounters* tcp_counters() const;

 private:
  struct Pending {
    std::uint64_t query_id;
    ResolveCallback callback;
    obs::SpanId span = 0;
  };

  void ensure_connection(obs::SpanId parent);
  /// Re-register the client.tcp.* handles when the registry changes.
  void bind_obs_ids();
  void on_data(std::span<const std::uint8_t> data);
  void on_close();

  simnet::Host& host_;
  simnet::Address server_;
  obs::SpanContext obs_;
  TransportMetrics tmetrics_;
  CostMetrics cmetrics_;
  obs::MetricId m_conn_open_;
  obs::MetricId m_conn_reuse_;
  obs::Registry* bound_metrics_ = nullptr;
  std::shared_ptr<simnet::TcpConnection> tcp_;
  std::unique_ptr<simnet::TcpByteStream> stream_;
  dns::Bytes rx_;
  obs::SpanId connect_span_ = 0;
  obs::SpanId tcp_hs_span_ = 0;

  std::uint16_t next_dns_id_ = 1;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint16_t, Pending> pending_;
  std::vector<ResolutionResult> results_;
};

}  // namespace dohperf::core
