#include "core/health_client.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace dohperf::core {

HealthTrackingClient::HealthTrackingClient(
    simnet::EventLoop& loop, std::vector<ResolverClient*> resolvers,
    HealthConfig config)
    : loop_(loop),
      resolvers_(std::move(resolvers)),
      config_(config),
      health_(resolvers_.size()) {
  if (resolvers_.empty()) {
    throw std::logic_error("HealthTrackingClient needs >= 1 resolver");
  }
}

int HealthTrackingClient::pick(const Pending& pending) const {
  // First pass: closed (or cooled-down) breakers in preference order.
  for (std::size_t i = 0; i < resolvers_.size(); ++i) {
    if (pending.tried[i]) continue;
    const ResolverHealth& h = health_[i];
    if (h.state != BreakerState::kOpen || loop_.now() >= h.open_until) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::uint64_t HealthTrackingClient::resolve(const dns::Name& name,
                                            dns::RType type,
                                            ResolveCallback callback) {
  const std::uint64_t id = results_.size();
  ResolutionResult placeholder;
  placeholder.sent_at = loop_.now();
  results_.push_back(placeholder);

  Pending pending;
  pending.callback = std::move(callback);
  pending.name = name;
  pending.type = type;
  pending.tried.assign(resolvers_.size(), false);
  pending_.push_back(std::move(pending));

  int resolver = pick(pending_[id]);
  if (resolver < 0) {
    // Every breaker open: desperation probe on the preferred resolver
    // rather than failing without sending anything.
    resolver = 0;
  }
  dispatch(id, static_cast<std::size_t>(resolver));
  return id;
}

void HealthTrackingClient::dispatch(std::uint64_t id, std::size_t resolver) {
  pending_[id].tried[resolver] = true;
  ResolverHealth& h = health_[resolver];
  if (h.state == BreakerState::kOpen && loop_.now() >= h.open_until) {
    h.state = BreakerState::kHalfOpen;  // this query is the probe
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("breaker.probes");
    }
    export_state(resolver);
  }
  ++h.queries;
  resolvers_[resolver]->resolve(
      pending_[id].name, pending_[id].type,
      [this, id, resolver](const ResolutionResult& r) {
        on_result(id, resolver, r);
      });
}

void HealthTrackingClient::on_result(std::uint64_t id, std::size_t resolver,
                                     const ResolutionResult& r) {
  Pending& pending = pending_[id];
  if (pending.done) return;

  bool ok = r.success;
  if (ok && config_.rcode_failures) {
    const auto rcode = r.response.flags.rcode;
    if (rcode == dns::Rcode::kServFail || rcode == dns::Rcode::kRefused) {
      ok = false;
    }
  }

  if (ok) {
    record_success(resolver);
  } else {
    record_failure(resolver);
    const int next = pick(pending);
    if (next >= 0) {
      ++failovers_;
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics->add("health.failovers");
      }
      dispatch(id, static_cast<std::size_t>(next));
      return;
    }
    ++exhausted_;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("health.exhausted");
    }
  }

  pending.done = true;
  ResolutionResult& out = results_[id];
  const auto sent_at = out.sent_at;
  out = r;
  out.sent_at = sent_at;  // latency from when *we* were asked
  out.completed_at = loop_.now();
  out.success = ok;
  ++completed_;
  auto callback = std::move(pending.callback);
  if (callback) callback(out);
}

void HealthTrackingClient::record_success(std::size_t resolver) {
  ResolverHealth& h = health_[resolver];
  h.consecutive_failures = 0;
  if (h.state != BreakerState::kClosed) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("breaker.closes");
    }
    h.state = BreakerState::kClosed;  // probe success closes the breaker
    export_state(resolver);
  }
}

void HealthTrackingClient::record_failure(std::size_t resolver) {
  ResolverHealth& h = health_[resolver];
  ++h.failures;
  ++h.consecutive_failures;
  if (h.state == BreakerState::kHalfOpen ||
      h.consecutive_failures >= config_.failure_threshold) {
    // A failed probe re-opens immediately; repeated failures trip it.
    h.state = BreakerState::kOpen;
    h.open_until = loop_.now() + config_.open_duration;
    h.consecutive_failures = 0;
    ++h.breaker_trips;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->add("breaker.trips");
    }
    export_state(resolver);
  }
}

void HealthTrackingClient::export_state(std::size_t resolver) {
  if (config_.obs.metrics == nullptr) return;
  const ResolverHealth& h = health_[resolver];
  std::int64_t value = 0;
  if (h.state == BreakerState::kOpen) value = 1;
  if (h.state == BreakerState::kHalfOpen) value = 2;
  config_.obs.metrics->set_gauge(
      "breaker.state." + std::to_string(resolver), value);
}

const ResolutionResult& HealthTrackingClient::result(std::uint64_t id) const {
  return results_.at(id);
}

}  // namespace dohperf::core
