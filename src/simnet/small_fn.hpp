// A move-only type-erased callable with inline small-object storage, used
// by the event loop so the common simulation events — protocol timers
// capturing a weak_ptr, packet deliveries capturing a Packet whose payload
// is a ref-counted BufferSlice — are stored without any heap allocation.
//
// Callables larger than the inline buffer (or with throwing moves) are
// boxed behind a unique_ptr, which itself fits inline; correctness never
// depends on the size threshold, only speed does.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dohperf::simnet {

class SmallFn {
 public:
  /// Inline capacity. Sized so the network's packet-delivery closure
  /// (this-pointer + Packet with slice payload) and every protocol timer
  /// stay inline; see the static_assert in network.cpp.
  static constexpr std::size_t kInlineSize = 80;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      emplace<D>(std::forward<F>(fn));
    } else {
      emplace<Boxed<D>>(Boxed<D>{std::make_unique<D>(std::forward<F>(fn))});
    }
  }

  SmallFn(SmallFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      relocate_from(other);
      other.vtable_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        relocate_from(other);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// True when callables of type D are stored inline (no allocation).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  /// Relocation fast-path cutoff: trivially copyable callables up to this
  /// size (the typical timer closure captures one or two pointers) move as
  /// one fixed-size inline copy instead of an indirect vtable call.
  static constexpr std::size_t kTrivialCopySize = 16;

  using RelocateFn = void (*)(void* src, void* dst) noexcept;
  using DestroyFn = void (*)(void* p) noexcept;

  struct VTable {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    /// Null for trivially copyable callables <= kTrivialCopySize.
    RelocateFn relocate;
    /// Null for trivially destructible callables: destruction is a no-op.
    DestroyFn destroy;
  };

  /// Heap fallback for oversized callables; the box itself is inline-sized.
  template <typename D>
  struct Boxed {
    std::unique_ptr<D> ptr;
    void operator()() { (*ptr)(); }
  };

  template <typename D>
  static constexpr VTable kVTable{
      [](void* p) { (*static_cast<D*>(p))(); },
      std::is_trivially_copyable_v<D> && sizeof(D) <= kTrivialCopySize
          ? RelocateFn{nullptr}
          : RelocateFn{[](void* src, void* dst) noexcept {
              // detlint: allow(HYG002) placement new into inline SBO storage
              ::new (dst) D(std::move(*static_cast<D*>(src)));
              static_cast<D*>(src)->~D();
            }},
      std::is_trivially_destructible_v<D>
          ? DestroyFn{nullptr}
          : DestroyFn{[](void* p) noexcept { static_cast<D*>(p)->~D(); }},
  };

  template <typename D, typename F>
  void emplace(F&& fn) {
    static_assert(fits_inline<D>());
    // detlint: allow(HYG002) placement new into inline SBO storage
    ::new (storage_) D(std::forward<F>(fn));
    vtable_ = &kVTable<D>;
  }

  void relocate_from(SmallFn& other) noexcept {
    if (vtable_->relocate != nullptr) {
      vtable_->relocate(other.storage_, storage_);
    } else {
      // Trivially copyable and small: a fixed-size inline copy beats an
      // indirect call, and the moved-from bytes need no destruction.
      // (Copying the full 16 bytes of a smaller callable is harmless —
      // the storage array is always readable.)
      std::memcpy(storage_, other.storage_, kTrivialCopySize);
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace dohperf::simnet
