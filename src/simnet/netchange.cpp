#include "simnet/netchange.hpp"

#include <memory>

#include "simnet/host.hpp"

namespace dohperf::simnet {

const char* to_string(NetworkChangeKind kind) noexcept {
  switch (kind) {
    case NetworkChangeKind::kRebind:
      return "rebind";
    case NetworkChangeKind::kProfileSwap:
      return "profile_swap";
    case NetworkChangeKind::kFlap:
      return "flap";
  }
  return "?";
}

void NetworkChangeSchedule::add(NetworkChange change) {
  changes_.push_back(std::move(change));
}

void NetworkChangeSchedule::add_rebind(TimeUs at, bool rst_old_flows) {
  NetworkChange c;
  c.kind = NetworkChangeKind::kRebind;
  c.at = at;
  c.rst_old_flows = rst_old_flows;
  add(c);
}

void NetworkChangeSchedule::add_profile_swap(TimeUs at,
                                             const LinkConfig& profile) {
  NetworkChange c;
  c.kind = NetworkChangeKind::kProfileSwap;
  c.at = at;
  c.profile = profile;
  add(c);
}

void NetworkChangeSchedule::add_flap(TimeUs at, TimeUs down_for) {
  NetworkChange c;
  c.kind = NetworkChangeKind::kFlap;
  c.at = at;
  c.down_for = down_for;
  add(c);
}

NetworkChangeSchedule NetworkChangeSchedule::periodic_handover(
    TimeUs first, TimeUs interval, TimeUs horizon, const LinkConfig& profile_a,
    const LinkConfig& profile_b) {
  NetworkChangeSchedule schedule;
  bool to_b = true;  // the host starts on profile_a
  for (TimeUs at = first; at < horizon; at += interval) {
    // Rebind first: both land on the same instant, and anything a change
    // listener does in response to the (OS-visible) profile swap — like
    // racing a fresh connection — must already originate from the new
    // address, not a 5-tuple the handover is about to black-hole.
    schedule.add_rebind(at, /*rst_old_flows=*/false);
    schedule.add_profile_swap(at, to_b ? profile_b : profile_a);
    to_b = !to_b;
  }
  return schedule;
}

void apply_network_changes(Host& host, NodeId peer,
                           const NetworkChangeSchedule& schedule) {
  // The schedule outlives the call via a shared copy; each event captures
  // {owner, index} which fits EventLoop's inline SmallFn storage.
  auto shared =
      std::make_shared<const NetworkChangeSchedule>(schedule);
  Host* h = &host;
  for (std::size_t i = 0; i < shared->changes().size(); ++i) {
    const NetworkChange& change = shared->changes()[i];
    switch (change.kind) {
      case NetworkChangeKind::kRebind:
        host.loop().schedule_at(change.at, [h, shared, i] {
          h->rebind(shared->changes()[i].rst_old_flows);
        });
        break;
      case NetworkChangeKind::kProfileSwap:
        host.loop().schedule_at(change.at, [h, shared, i, peer] {
          h->network().reconfigure(h->id(), peer, shared->changes()[i].profile);
          h->notify_network_change(NetworkChangeKind::kProfileSwap);
        });
        break;
      case NetworkChangeKind::kFlap:
        host.loop().schedule_at(change.at, [h] { h->interface_down(); });
        host.loop().schedule_at(change.at + change.down_for,
                                [h] { h->interface_up(); });
        break;
    }
  }
}

}  // namespace dohperf::simnet
