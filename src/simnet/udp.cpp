#include "simnet/udp.hpp"

#include <stdexcept>

#include "simnet/host.hpp"

namespace dohperf::simnet {

namespace {
constexpr std::size_t kMaxUdpPayload = 65507;
}

UdpSocket::UdpSocket(Host& host, std::uint16_t port)
    : host_(host), port_(port) {}

Address UdpSocket::local() const noexcept {
  return Address{host_.id(), port_};
}

void UdpSocket::send_to(const Address& dst, Bytes payload) {
  if (payload.size() > kMaxUdpPayload) {
    throw std::length_error("UDP payload exceeds 65507 bytes");
  }
  UdpDatagram dgram;
  dgram.src_port = port_;
  dgram.dst_port = dst.port;
  dgram.payload = std::move(payload);

  ++counters_.datagrams_sent;
  counters_.wire_bytes_sent += dgram.wire_size();
  counters_.payload_bytes_sent += dgram.payload.size();

  Packet packet;
  packet.src_node = host_.id();
  packet.dst_node = dst.node;
  packet.body = std::move(dgram);
  host_.send_gated(std::move(packet));
}

void UdpSocket::deliver(const UdpDatagram& dgram, NodeId from_node) {
  ++counters_.datagrams_received;
  counters_.wire_bytes_received += dgram.wire_size();
  counters_.payload_bytes_received += dgram.payload.size();
  if (receiver_) {
    receiver_(dgram.payload, Address{from_node, dgram.src_port});
  }
}

}  // namespace dohperf::simnet
