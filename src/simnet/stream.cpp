#include "simnet/stream.hpp"

namespace dohperf::simnet {

TcpByteStream::TcpByteStream(std::shared_ptr<TcpConnection> connection)
    : connection_(std::move(connection)) {}

TcpByteStream::~TcpByteStream() {
  // Detach callbacks: the TcpConnection may outlive this adapter inside the
  // host's connection table while the FIN exchange completes.
  if (connection_) connection_->set_callbacks({});
}

void TcpByteStream::set_handlers(Handlers handlers) {
  handlers_ = std::move(handlers);
  TcpCallbacks cbs;
  cbs.on_connected = [this]() {
    if (!open_reported_) {
      open_reported_ = true;
      if (handlers_.on_open) handlers_.on_open();
    }
  };
  cbs.on_data = [this](std::span<const std::uint8_t> data) {
    if (handlers_.on_data) handlers_.on_data(data);
  };
  const auto report_close = [this]() {
    if (!close_reported_) {
      close_reported_ = true;
      if (handlers_.on_close) handlers_.on_close();
    }
  };
  // Half-close from the peer ends the byte stream for our purposes.
  cbs.on_remote_closed = report_close;
  cbs.on_closed = report_close;
  cbs.on_reset = report_close;
  connection_->set_callbacks(std::move(cbs));
  // Server-accepted connections are already established.
  if (connection_->established() && !open_reported_) {
    open_reported_ = true;
    if (handlers_.on_open) handlers_.on_open();
  }
}

void ByteStream::send_chain(std::span<const BufferSlice> chain) {
  // Generic fallback: flatten to one buffer so the logical-write contract
  // holds for any transport. Transports that can do better override this.
  send(BufferSlice{coalesce(chain)});
}

void TcpByteStream::send(BufferSlice data) {
  connection_->send(std::move(data));
}

void TcpByteStream::send_chain(std::span<const BufferSlice> chain) {
  connection_->send_chain(chain);
}

void TcpByteStream::close() {
  if (connection_->state() != TcpState::kClosed) connection_->close();
}

bool TcpByteStream::is_open() const {
  return connection_->established() ||
         connection_->state() == TcpState::kCloseWait;
}

}  // namespace dohperf::simnet
