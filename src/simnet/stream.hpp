// ByteStream: the layering interface between transports.  TCP exposes one,
// TLS consumes one and exposes another, HTTP/1.1 and HTTP/2 consume one.
// This is what lets the experiments swap DNS-over-TLS for DNS-over-HTTPS
// over the same simulated TCP.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "simnet/tcp.hpp"

namespace dohperf::simnet {

class ByteStream {
 public:
  struct Handlers {
    std::function<void()> on_open;  ///< stream ready for send()
    std::function<void(std::span<const std::uint8_t>)> on_data;
    std::function<void()> on_close;  ///< closed (orderly or reset)
  };

  virtual ~ByteStream() = default;

  virtual void set_handlers(Handlers handlers) = 0;
  /// Send one logical write. The slice is referenced, not copied; a Bytes
  /// argument converts implicitly (materializing the shared buffer once).
  virtual void send(BufferSlice data) = 0;
  /// Send several slices as ONE logical write: framing/segmentation below
  /// must be identical to sending the concatenated bytes in one send().
  /// The default coalesces (copies); transports override for zero-copy.
  virtual void send_chain(std::span<const BufferSlice> chain);
  virtual void close() = 0;
  virtual bool is_open() const = 0;
};

/// Adapts a TcpConnection to the ByteStream interface.
class TcpByteStream final : public ByteStream {
 public:
  /// `connection` may be freshly connecting (client) or already established
  /// (server accept); on_open fires accordingly.
  explicit TcpByteStream(std::shared_ptr<TcpConnection> connection);
  ~TcpByteStream() override;

  void set_handlers(Handlers handlers) override;
  void send(BufferSlice data) override;
  void send_chain(std::span<const BufferSlice> chain) override;
  void close() override;
  bool is_open() const override;

  TcpConnection& tcp() noexcept { return *connection_; }
  const TcpConnection& tcp() const noexcept { return *connection_; }

 private:
  std::shared_ptr<TcpConnection> connection_;
  Handlers handlers_;
  bool open_reported_ = false;
  bool close_reported_ = false;
};

}  // namespace dohperf::simnet
